"""Repo-level pytest configuration: a hang ceiling for every test.

PR 6's supervision layer guarantees the sharded coordinator never
blocks forever on a dead worker; the suite enforces the same property
on itself so a reintroduced deadlock fails fast instead of hanging CI.

Two mechanisms, picked at collection time:

* when ``pytest-timeout`` is installed (the ``[dev]`` extra pulls it
  in; CI uses it), every test gets its per-test ceiling unless the
  command line overrides ``--timeout``;
* otherwise a POSIX ``SIGALRM`` fallback fixture arms the same ceiling
  per test (main thread only — which is where pytest runs tests), so
  environments without the plugin keep the no-hang guarantee.

``REPRO_TEST_TIMEOUT`` (seconds) overrides the default ceiling.
"""

import os
import signal
import threading

import pytest

TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running scale tests (deselect with -m 'not slow')"
    )
    if config.pluginmanager.hasplugin("timeout"):
        if not getattr(config.option, "timeout", None):
            config.option.timeout = TEST_TIMEOUT_SECONDS


@pytest.fixture(autouse=True)
def _hang_ceiling(request):
    """SIGALRM fallback when pytest-timeout is absent."""
    if (
        request.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _abort(signum, frame):
        pytest.fail(
            f"test exceeded the {TEST_TIMEOUT_SECONDS:.0f}s hang ceiling "
            f"(REPRO_TEST_TIMEOUT to raise)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
