#!/usr/bin/env python
"""Standalone entry point for the scaling benchmark harness.

Equivalent to ``python -m repro.cli bench``; kept next to the
pytest-benchmark suites so both perf tools live in one place.  Writes a
``BENCH_<date>.json`` trajectory file into the current directory (or
``--output-dir``).  ``--quick --check`` runs the small-universe smoke
subset with mask-vs-reference cross-validation (non-zero exit on any
disagreement) — the mode the tier-1 suite exercises.
"""

import sys

if __name__ == "__main__":
    from repro.bench import main

    sys.exit(main())
