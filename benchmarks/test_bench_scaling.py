"""E13 — scalability and ablations of the machinery itself.

* configuration-canonical exploration vs linearization counting (the
  state-space reduction DESIGN.md's §5 calls out);
* layered chain detection vs the naive oracle;
* simulator throughput on leader-election rings.
"""

from repro.causality.chains import has_process_chain, has_process_chain_naive
from repro.causality.order import CausalOrder
from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe


def count_linearizations(universe) -> int:
    """Number of linear computations the universe's configurations stand
    for (the size a linearization-based explorer would have to visit).

    Counted exactly per configuration by dynamic programming over
    consistent cuts is expensive; we use the standard upper-bound-free
    measure: sum over maximal configurations of multinomial interleavings
    is loose, so instead count linear *prefixes* reachable by DFS over
    enabled events, capped for tractability.
    """
    seen = 0
    stack = [tuple()]
    protocol = universe.protocol
    visited: set[tuple] = set()
    while stack:
        sequence = stack.pop()
        if sequence in visited:
            continue
        visited.add(sequence)
        seen += 1
        configuration = Configuration.from_computation(Computation(sequence))
        for event in protocol.enabled_events(configuration):
            stack.append(sequence + (event,))
    return seen


def test_bench_configuration_canonicalisation(benchmark):
    """Concurrency is what canonicalisation collapses: sequential
    protocols (ping-pong) have ratio 1, concurrent fan-outs grow the gap
    exponentially."""
    from repro.protocols.broadcast import BroadcastProtocol, star_topology

    cases = [
        ("pingpong r=2 (seq.)", PingPongProtocol(rounds=2)),
        (
            "star broadcast n=3",
            BroadcastProtocol(star_topology("hub", ("x", "y")), "hub"),
        ),
        (
            "star broadcast n=4",
            BroadcastProtocol(star_topology("hub", ("x", "y", "z")), "hub"),
        ),
        (
            "star broadcast n=5",
            BroadcastProtocol(star_topology("hub", ("w", "x", "y", "z")), "hub"),
        ),
    ]
    print("\n[E13] configurations vs linear computations (state-space ablation):")
    print(f"{'protocol':>22} {'configs':>8} {'linear prefixes':>15} {'ratio':>7}")
    ratios = []
    for label, protocol in cases:
        universe = Universe(protocol)
        linear = count_linearizations(universe)
        ratio = linear / len(universe)
        ratios.append(ratio)
        print(f"{label:>22} {len(universe):>8} {linear:>15} {ratio:>7.2f}")
    assert ratios[0] == 1.0  # sequential: nothing to collapse
    assert ratios[1] < ratios[2] < ratios[3]  # concurrency widens the gap

    benchmark(lambda: Universe(TokenBusProtocol(max_hops=4)))


def test_bench_chain_detection_ablation(benchmark):
    ring = tuple(f"n{i}" for i in range(8))
    trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(0))
    order = CausalOrder(trace.computation)
    chain = [frozenset({name}) for name in ring[:4]]
    assert has_process_chain(order, chain) == has_process_chain_naive(order, chain)

    print(
        f"\n[E13] chain detection on a {len(trace.computation)}-event "
        "leader-election trace: layered DP vs naive oracle agree"
    )

    benchmark(has_process_chain, order, chain)


def test_bench_chain_detection_naive(benchmark):
    ring = tuple(f"n{i}" for i in range(6))
    trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(0))
    order = CausalOrder(trace.computation)
    chain = [frozenset({name}) for name in ring[:3]]
    benchmark(has_process_chain_naive, order, chain)


def test_bench_simulator_throughput(benchmark):
    ring = tuple(f"n{i}" for i in range(24))
    # Descending ranks: worst-case O(n^2) messages.
    ranks = {name: len(ring) - index for index, name in enumerate(ring)}

    def run():
        protocol = ChangRobertsProtocol(ring, ranks=ranks)
        return simulate(protocol, RandomScheduler(1), max_steps=500_000)

    trace = run()
    expected = len(ring) * (len(ring) + 1) // 2
    protocol = ChangRobertsProtocol(ring, ranks=ranks)
    assert protocol.message_count(trace.final_configuration) == expected
    print(
        f"\n[E13] simulator throughput: {len(trace.computation)} events for "
        f"the O(n^2) election on n={len(ring)} "
        f"({expected} candidate messages)"
    )

    benchmark(run)
