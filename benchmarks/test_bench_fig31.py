"""E1 — Figure 3-1: the paper's isomorphism diagram, regenerated.

Asserts every relation the paper reads off the diagram, prints the full
edge list, and benchmarks diagram construction.
"""

from repro.isomorphism.diagram import IsomorphismDiagram
from repro.isomorphism.relation import isomorphic
from repro.universe.builder import figure_3_1_computations


def build_diagram() -> IsomorphismDiagram:
    comps = figure_3_1_computations()
    return IsomorphismDiagram(
        comps.values(), {"p", "q"}, names={k: v for k, v in comps.items()}
    )


def test_bench_figure_3_1(benchmark):
    comps = figure_3_1_computations()

    # --- reproduction assertions (the relations stated in Example 1) ---
    assert isomorphic(comps["x"], comps["y"], "p")
    assert not isomorphic(comps["x"], comps["y"], "q")
    assert comps["x"].is_permutation_of(comps["z"])
    assert isomorphic(comps["z"], comps["w"], "q")
    assert not isomorphic(comps["y"], comps["w"], "p")
    assert not isomorphic(comps["y"], comps["w"], "q")

    diagram = build_diagram()
    assert diagram.label(comps["x"], comps["y"]) == {"p"}
    assert diagram.label(comps["x"], comps["z"]) == {"p", "q"}
    assert diagram.label(comps["z"], comps["w"]) == {"q"}
    assert diagram.label(comps["y"], comps["w"]) is None
    assert diagram.has_labelled_path(comps["y"], ["p", "q"], comps["w"])

    print("\n[E1] Figure 3-1 isomorphism diagram:")
    print(diagram.render())

    # --- timing: diagram construction ---
    benchmark(build_diagram)
