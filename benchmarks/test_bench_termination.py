"""E12 — §5(c): the termination-detection message lower bound.

Prints the overhead-vs-underlying table (Dijkstra–Scholten meets the
bound exactly; polling exceeds it), the step-1 spontaneous-overhead
scenario, and the step-2 ambiguity census over a small exhaustive
detector universe.  Benchmarks a full DS detection run.
"""

from repro.applications.termination_bounds import (
    detector_ambiguity,
    overhead_table,
    run_dijkstra_scholten,
    spontaneous_ds_workload,
    spontaneous_overhead_after_termination,
)
from repro.protocols.polling_detector import PollingDetectorProtocol
from repro.protocols.termination import (
    Activation,
    TerminationWorkload,
    generate_workload,
)
from repro.simulation.scheduler import RandomScheduler
from repro.universe.explorer import Universe


def test_bench_overhead_table(benchmark):
    rows = overhead_table(process_counts=(3, 4, 5, 6), seeds=(0, 1))
    print("\n[E12] overhead vs underlying messages:")
    print(f"{'procs':>5} {'seed':>4} {'underlying':>10} {'DS':>6} "
          f"{'polling':>8} {'DS meets bound':>14}")
    for row in rows:
        assert row.ds_overhead == row.underlying
        assert row.ds_meets_bound
        print(
            f"{row.processes:>5} {row.seed:>4} {row.underlying:>10} "
            f"{row.ds_overhead:>6} {row.polling_overhead:>8} "
            f"{str(row.ds_meets_bound):>14}"
        )

    workload = generate_workload(("a", "b", "c", "d"), seed=0)
    benchmark(run_dijkstra_scholten, workload, RandomScheduler(0))


def test_bench_lower_bound_arguments(benchmark):
    # Step 1: spontaneous overhead after termination.
    scenario = spontaneous_ds_workload()
    run, trace = run_dijkstra_scholten(scenario, RandomScheduler(0))
    spontaneous = spontaneous_overhead_after_termination(
        trace, run.termination_index
    )
    assert spontaneous >= 1
    print(
        "\n[E12] step 1: constructed scenario has "
        f"{spontaneous} spontaneous overhead message(s) after termination "
        f"(termination at event {run.termination_index}, detection at "
        f"{run.detection_index})"
    )

    # Step 2: the detector cannot distinguish running from terminated.
    workload = TerminationWorkload(
        processes=("a", "b"), root="a", plans={"a": (Activation(("b",)),)}
    )
    protocol = PollingDetectorProtocol(workload, max_waves=1)
    universe = Universe(protocol, max_configurations=2_000_000)
    census = detector_ambiguity(universe)
    assert census["ambiguous"] == census["not_terminated"]
    print(
        "[E12] step 2: over a complete detector universe of "
        f"{census['universe']} computations, {census['ambiguous']} of "
        f"{census['not_terminated']} non-terminated configurations are "
        "detector-isomorphic to a terminated one (100%)"
    )

    def ds_run():
        return run_dijkstra_scholten(scenario, RandomScheduler(0))

    benchmark(ds_run)
