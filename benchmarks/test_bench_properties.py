"""E2 — the ten algebraic properties of isomorphism (§3), exhaustively.

Verifies all properties over two complete universes and prints the
verdict table; benchmarks the full property sweep on the ping-pong
universe.
"""

from repro.isomorphism.algebra import check_all_properties


def test_bench_properties_pingpong(benchmark, pingpong_universe):
    results = check_all_properties(pingpong_universe)
    assert all(results.values()), results

    print("\n[E2] isomorphism properties over the ping-pong universe "
          f"({len(pingpong_universe)} computations):")
    for name in sorted(results):
        print(f"  property {name:22} {'holds' if results[name] else 'FAILS'}")

    benchmark(check_all_properties, pingpong_universe)


def test_bench_properties_broadcast(benchmark, broadcast_universe):
    results = check_all_properties(broadcast_universe, max_sets=6)
    assert all(results.values()), results

    print("\n[E2] isomorphism properties over the broadcast universe "
          f"({len(broadcast_universe)} computations): all hold")

    benchmark(check_all_properties, broadcast_universe, max_sets=4)
