"""E7 — §4.1 token-bus nested knowledge.

Model-checks the paper's two-level knowledge formula over token-bus
universes of growing depth, prints the series (universe size, number of
r-holding configurations, verdict), and benchmarks the model-check.
"""

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.protocols.token_bus import TokenBusProtocol, check_paper_example
from repro.universe.explorer import Universe


def test_bench_token_bus_nested_knowledge(benchmark, token_bus_universe):
    result = check_paper_example(token_bus_universe)
    assert result["valid"]
    assert result["r_holds_count"] > 0

    print("\n[E7] token-bus nested knowledge (r holds =>")
    print("      r knows (q knows ¬p-holds ∧ s knows ¬t-holds)):")
    print(f"{'max_hops':>8} {'universe':>9} {'r holds':>8} {'valid':>6}")
    for hops in (2, 3, 4):
        universe = Universe(TokenBusProtocol(max_hops=hops))
        row = check_paper_example(universe)
        print(
            f"{hops:>8} {row['universe_size']:>9} {row['r_holds_count']:>8} "
            f"{str(row['valid']):>6}"
        )
        assert row["valid"]

    def check():
        evaluator = KnowledgeEvaluator(token_bus_universe)
        return check_paper_example(token_bus_universe, evaluator=evaluator)

    benchmark(check)
