"""E10 — §5(a): tracking a remote local predicate is impossible.

Prints the sureness window (fraction of configurations where the
observer is sure, by configuration size) and the flip-point analysis;
benchmarks the analysis.
"""

from repro.applications.tracking import analyse_tracking, tracking_error_window
from repro.knowledge.evaluator import KnowledgeEvaluator


def test_bench_tracking(benchmark, toggle_universe):
    evaluator = KnowledgeEvaluator(toggle_universe)
    report = analyse_tracking(toggle_universe, evaluator=evaluator)
    assert report.flip_transitions > 0
    assert report.observer_unsure_at_every_flip
    assert report.owner_knows_observer_unsure
    assert report.tracking_impossible

    print("\n[E10] tracking impossibility over the toggle universe:")
    print(f"  flip transitions:                  {report.flip_transitions}")
    print(f"  observer unsure at every flip:     {report.observer_unsure_at_every_flip}")
    print(f"  owner knows observer unsure:       {report.owner_knows_observer_unsure}")
    print(f"  observer always sure (tracking):   {report.observer_always_sure}")

    window = tracking_error_window(toggle_universe, evaluator=evaluator)
    print("  sureness by configuration size (sure/total):")
    for size, (sure, total) in window.items():
        print(f"    size {size}: {sure}/{total}")

    def analyse():
        fresh = KnowledgeEvaluator(toggle_universe)
        return analyse_tracking(toggle_universe, evaluator=fresh)

    benchmark(analyse)
