"""E5 — Theorem 3: receives shrink, sends grow, internal events preserve
the ``[P P̄]``-related set.

Prints the average related-set size before/after each event kind — the
quantitative shape behind the theorem — and benchmarks the exhaustive
check.
"""

from repro.isomorphism.extension import (
    check_extension_principle_part1,
    check_extension_principle_part2,
    check_theorem_3,
    extension_event,
    related_set,
)


def size_deltas(universe):
    deltas = {"receive": [], "send": [], "internal": []}
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None:
                continue
            p_set = frozenset((event.process,))
            before = len(related_set(universe, x, p_set))
            after = len(related_set(universe, extended, p_set))
            deltas[event.kind.value].append((before, after))
    return deltas


def test_bench_event_semantics(benchmark, broadcast_universe):
    counts = check_theorem_3(broadcast_universe)
    assert counts["receive"] > 0 and counts["send"] > 0 and counts["internal"] > 0
    assert check_extension_principle_part1(broadcast_universe) > 0
    assert check_extension_principle_part2(broadcast_universe) > 0

    deltas = size_deltas(broadcast_universe)
    print("\n[E5] Theorem 3 over broadcast — |{z : x [P P̄] z}| before -> after:")
    for kind, pairs in deltas.items():
        if not pairs:
            continue
        avg_before = sum(before for before, _ in pairs) / len(pairs)
        avg_after = sum(after for _, after in pairs) / len(pairs)
        print(
            f"  {kind:>8}: n={len(pairs):>3}  avg {avg_before:6.2f} -> "
            f"{avg_after:6.2f}"
        )
    receive_pairs = deltas["receive"]
    assert all(after <= before for before, after in receive_pairs)
    assert all(before <= after for before, after in deltas["send"])
    assert all(before == after for before, after in deltas["internal"])

    benchmark(check_theorem_3, broadcast_universe)
