"""E14 — the §6 generalisations, measured.

The paper's closing section names two generalisations: isomorphism over
*states* (most results survive) and *belief* (they do not).  This bench
quantifies both, plus the epistemic mutual-exclusion corollary:

* the state-knowledge gap (knowledge retained vs forgotten) for
  abstractions of decreasing fidelity;
* the false-belief census under optimistic plausibility;
* safety-as-knowledge on the token-ring mutex.
"""

from repro.isomorphism.state_based import (
    StateAbstraction,
    check_state_knowledge_facts,
    counting_abstraction,
    knowledge_gap,
    length_abstraction,
)
from repro.knowledge.belief import false_belief_census
from repro.knowledge.formula import Not
from repro.protocols.commit import TwoPhaseCommitProtocol
from repro.protocols.failure_monitor import AsyncFailureMonitorProtocol
from repro.protocols.mutex import TokenRingMutexProtocol, check_mutual_exclusion
from repro.universe.explorer import Universe


def test_bench_state_knowledge_gap(benchmark):
    protocol = TwoPhaseCommitProtocol(("p1", "p2"))
    universe = Universe(protocol)
    unanimous = protocol.all_voted_yes()
    abstractions = [
        ("identity (= computations)", StateAbstraction()),
        ("per-tag counters", StateAbstraction(default=counting_abstraction())),
        ("history length only", StateAbstraction(default=length_abstraction())),
    ]
    print(
        "\n[E14] state-based isomorphism: p1's knowledge of 'all voted "
        f"yes' over 2PC ({len(universe)} computations):"
    )
    print(f"{'abstraction':>26} {'retained':>9} {'forgotten':>10} {'invalid':>8}")
    previous_retained = None
    for label, abstraction in abstractions:
        gap = knowledge_gap(universe, abstraction, {"p1"}, unanimous)
        assert gap["impossible"] == 0  # state knowledge is never stronger
        print(
            f"{label:>26} {gap['retained']:>9} {gap['forgotten']:>10} "
            f"{gap['impossible']:>8}"
        )
        if previous_retained is not None:
            assert gap["retained"] <= previous_retained
        previous_retained = gap["retained"]
        facts = check_state_knowledge_facts(
            universe, abstraction, unanimous, {"p1"}
        )
        assert all(facts.values()), facts
    print("  (surviving §4.1 facts verified for every abstraction)")

    benchmark(
        knowledge_gap,
        universe,
        StateAbstraction(default=length_abstraction()),
        {"p1"},
        unanimous,
    )


def test_bench_belief_non_veridicality(benchmark):
    protocol = AsyncFailureMonitorProtocol(heartbeats=2)
    universe = Universe(protocol)
    crashed = protocol.crashed_atom()

    def census():
        return false_belief_census(
            universe, lambda c: not crashed.fn(c), {"m"}, Not(crashed)
        )

    result = census()
    assert result["false_beliefs"] > 0
    print(
        "\n[E14] belief under 'no crash' plausibility "
        f"({result['plausible']}/{result['universe']} plausible):"
    )
    print(
        f"  monitor believes 'worker alive' at {result['believes']} "
        f"computations, falsely at {result['false_beliefs']} — belief is "
        "not veridical (knowledge is)"
    )

    benchmark(census)


def test_bench_epistemic_mutex(benchmark):
    universe = Universe(TokenRingMutexProtocol(max_hops=3, max_sessions=1))
    result = check_mutual_exclusion(universe)
    assert result["safe"] and result["epistemic"]
    print(
        "\n[E14] token-ring mutex over "
        f"{len(universe)} computations: safe={result['safe']}, "
        f"epistemic (CS-holder KNOWS it is alone)={result['epistemic']}, "
        f"{result['sessions']} critical-section configurations"
    )

    benchmark(check_mutual_exclusion, universe)
