"""E15 — knowledge-extension computation on the bitmask evaluator.

Tracks evaluator performance directly (exploration is covered by E13):
each benchmark constructs a *fresh* :class:`KnowledgeEvaluator` per
round so formula memoisation does not trivialise the measurement, while
the universe (and its dense-id projection indexes) is shared — the
production shape for repeated queries over one explored universe.
"""

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, CommonKnowledge, Knows, knows
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.universe.explorer import Universe


@pytest.fixture(scope="module")
def star_universe() -> Universe:
    return Universe(
        BroadcastProtocol(star_topology("hub", ("v", "w", "x", "y", "z")), "hub")
    )


def receiver_got_it() -> Atom:
    return Atom(
        "x_got_it",
        lambda configuration: any(
            event.is_receive for event in configuration.history("x")
        ),
    )


def test_bench_knows_extension(benchmark, star_universe):
    body = receiver_got_it()
    formula = Knows(frozenset({"hub"}), body)

    def run():
        return KnowledgeEvaluator(star_universe).extension(formula)

    extension = run()
    # The hub cannot know x received: deliveries are indistinguishable.
    assert extension == frozenset()
    print(
        f"\n[E15] knows over {len(star_universe)} configurations: "
        f"|extension| = {len(extension)}"
    )
    benchmark(run)


def test_bench_common_knowledge_extension(benchmark, star_universe):
    body = receiver_got_it()
    formula = CommonKnowledge(frozenset({"hub", "x"}), body)

    def run():
        return KnowledgeEvaluator(star_universe).extension(formula)

    extension = run()
    assert extension == frozenset()  # no common knowledge without acks
    benchmark(run)


def test_bench_nested_knowledge_extension(benchmark, star_universe):
    """Nested ``x knows hub knows …`` exercises chained class scans."""
    hub_sent = Atom(
        "hub_sent",
        lambda configuration: any(
            event.is_send for event in configuration.history("hub")
        ),
    )
    formula = knows("x", "hub", hub_sent)

    def run():
        return KnowledgeEvaluator(star_universe).extension(formula)

    extension = run()
    evaluator = KnowledgeEvaluator(star_universe)
    # Sanity: nested knowledge is contained in the body's extension.
    assert extension <= evaluator.extension(hub_sent)
    benchmark(run)


def test_bench_extension_masks_agree_with_views(benchmark, star_universe):
    """The mask representation and the frozenset view must coincide."""
    body = receiver_got_it()
    formula = Knows(frozenset({"x"}), body)
    evaluator = KnowledgeEvaluator(star_universe)
    mask = evaluator.extension_mask(formula)
    view = evaluator.extension(formula)
    assert view == frozenset(star_universe.configurations_in_mask(mask))
    assert len(view) == mask.bit_count()

    benchmark(lambda: KnowledgeEvaluator(star_universe).extension_mask(formula))
