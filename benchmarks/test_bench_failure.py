"""E11 — §5(b): failure detection impossible without timeouts.

Prints the async/sync comparison table across heartbeat/round budgets
and benchmarks the asynchronous impossibility analysis.
"""

from repro.applications.failure_detection import analyse_async, analyse_sync
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.universe.explorer import Universe


def test_bench_failure_detection(benchmark):
    print("\n[E11] failure detection with and without timeouts:")
    print(f"{'model':>6} {'budget':>6} {'universe':>9} {'crashes':>8} "
          f"{'detectable':>10}")
    for heartbeats in (1, 2, 3):
        universe = Universe(AsyncFailureMonitorProtocol(heartbeats=heartbeats))
        report = analyse_async(universe)
        assert report.impossibility_holds
        print(
            f"{'async':>6} {heartbeats:>6} {report.universe_size:>9} "
            f"{report.crash_configurations:>8} {'never':>10}"
        )
    for rounds in (1, 2):
        universe = Universe(SyncFailureMonitorProtocol(rounds=rounds))
        report = analyse_sync(universe)
        assert report.detection_possible and report.detection_sound
        print(
            f"{'sync':>6} {rounds:>6} {report.universe_size:>9} "
            f"{report.crash_configurations:>8} "
            f"{report.detection_configurations:>10}"
        )

    def impossibility():
        universe = Universe(AsyncFailureMonitorProtocol(heartbeats=2))
        return analyse_async(universe)

    benchmark(impossibility)
