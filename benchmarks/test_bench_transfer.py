"""E9 — Theorems 4, 5, 6: knowledge transfer needs process chains.

Exhaustive side: instance counts for gain/loss over complete universes.
Scale side: knowledge-latency series on simulated line broadcasts — the
far end learns linearly later, the operational shadow of sequential
transfer.  Benchmarks the exhaustive gain check.
"""

from repro.applications.knowledge_flow import latency_series
from repro.knowledge.formula import Not
from repro.knowledge.predicates import did_internal, has_received, has_sent
from repro.knowledge.transfer import (
    check_theorem_4,
    check_theorem_5_gain,
    check_theorem_6_loss,
)

P = frozenset("p")
Q = frozenset("q")
A = frozenset("a")
B = frozenset("b")
C = frozenset("c")


def test_bench_transfer_theorems(benchmark, pingpong_evaluator):
    b = has_received("q", "ping")
    t4 = check_theorem_4(pingpong_evaluator, [P, Q], b)
    t5 = check_theorem_5_gain(pingpong_evaluator, [P], b)
    t6 = check_theorem_6_loss(pingpong_evaluator, [P, Q], Not(has_sent("q", "pong")))
    assert t4.holds and t5.holds and t6.holds
    assert t4.checked > 0 and t5.checked > 0

    print("\n[E9] knowledge transfer over ping-pong:")
    print(f"  Theorem 4 (propagation): {t4.checked} instances, holds")
    print(f"  Theorem 5 (gain needs chain <Pn..P1>): {t5.checked} instances, holds")
    print(f"  Theorem 6 (loss needs chain <P1..Pn>): {t6.checked} instances, holds")

    benchmark(check_theorem_5_gain, pingpong_evaluator, [P], b)


def test_bench_transfer_broadcast(benchmark, broadcast_evaluator):
    fact = did_internal("a", "learn")
    t5 = check_theorem_5_gain(broadcast_evaluator, [C, B], fact)
    assert t5.holds and t5.checked > 0
    print(
        f"\n[E9] gain of 'c knows b knows fact' over broadcast: "
        f"{t5.checked} instances, chain <b c>... <B C> reversed required — holds"
    )

    benchmark(check_theorem_5_gain, broadcast_evaluator, [C, B], fact)


def test_bench_knowledge_latency_series(benchmark):
    series = latency_series(line_lengths=(4, 8, 16, 32), seed=0)
    steps = [step for _, step in series]
    assert steps == sorted(steps)

    print("\n[E9] knowledge latency at scale (line broadcast, far end):")
    print(f"{'line length':>11} {'learning step':>13}")
    for length, step in series:
        print(f"{length:>11} {step:>13}")

    benchmark(latency_series, (4, 8, 16), 0)
