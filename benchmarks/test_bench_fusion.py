"""E4 — Figures 3-2/3-3: the fusion theorem (Lemma 1 + Theorem 2).

Counts licensed fusions over complete universes, asserts every fused
computation is valid (and reachable), prints the census, and benchmarks
the fusion sweep.
"""

from repro.core.validation import is_valid_configuration
from repro.isomorphism.fusion import fuse, fusion_side_conditions
from repro.isomorphism.relation import isomorphic


def fusion_census(universe, p_set):
    complement = universe.complement(p_set)
    licensed = blocked = 0
    for x, y in universe.sub_configuration_pairs():
        for z in universe:
            if not x.is_sub_configuration_of(z):
                continue
            problems = fusion_side_conditions(x, y, z, p_set, universe.processes)
            if problems:
                blocked += 1
                continue
            w = fuse(x, y, z, p_set, universe.processes)
            assert isomorphic(y, w, p_set)
            assert isomorphic(z, w, complement)
            assert is_valid_configuration(w)
            assert w in universe
            licensed += 1
    return licensed, blocked


def test_bench_fusion_pingpong(benchmark, pingpong_universe):
    licensed, blocked = fusion_census(pingpong_universe, frozenset("p"))
    assert licensed > 0
    print(
        f"\n[E4] fusion over ping-pong (P = {{p}}): {licensed} licensed, "
        f"{blocked} blocked by chain side-conditions; all fusions valid"
    )
    benchmark(fusion_census, pingpong_universe, frozenset("p"))


def test_bench_fusion_broadcast(benchmark, broadcast_universe):
    licensed, blocked = fusion_census(broadcast_universe, frozenset("a"))
    assert licensed > 0
    print(
        f"\n[E4] fusion over broadcast (P = {{a}}): {licensed} licensed, "
        f"{blocked} blocked; all fusions valid"
    )
    benchmark(fusion_census, broadcast_universe, frozenset("a"))
