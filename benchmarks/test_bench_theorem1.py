"""E3 — Theorem 1 (Fundamental Theorem of Process Chains).

Exhaustively checks the disjunction on every prefix pair of two
universes, reports instance counts and how often each disjunct fires,
and benchmarks the check.
"""

from repro.causality.chains import chain_in_suffix
from repro.isomorphism.fundamental import check_theorem_1
from repro.isomorphism.relation import composed_isomorphic

P = frozenset("p")
Q = frozenset("q")
A = frozenset("a")
B = frozenset("b")
C = frozenset("c")


def breakdown(universe, sets):
    chain_only = iso_only = both = 0
    for x, z in universe.sub_configuration_pairs():
        has_chain = chain_in_suffix(z, x, sets) is not None
        has_iso = composed_isomorphic(universe, x, sets, z)
        assert has_chain or has_iso  # the theorem
        if has_chain and has_iso:
            both += 1
        elif has_chain:
            chain_only += 1
        else:
            iso_only += 1
    return chain_only, iso_only, both


def test_bench_theorem_1_pingpong(benchmark, pingpong_universe):
    sequences = [[P], [Q], [P, Q], [Q, P], [P, Q, P]]
    checked = check_theorem_1(pingpong_universe, sequences)
    assert checked > 0

    print(f"\n[E3] Theorem 1 over ping-pong: {checked} instances verified")
    print(f"{'sequence':>16} {'chain-only':>10} {'iso-only':>9} {'both':>6}")
    for sets in sequences:
        chain_only, iso_only, both = breakdown(pingpong_universe, sets)
        label = " ".join(sorted("".join(sorted(s)) for s in sets))
        print(f"{label:>16} {chain_only:>10} {iso_only:>9} {both:>6}")

    benchmark(check_theorem_1, pingpong_universe, sequences)


def test_bench_theorem_1_broadcast(benchmark, broadcast_universe):
    sequences = [[A, B], [B, A], [A, B, C], [C, B, A]]
    checked = check_theorem_1(broadcast_universe, sequences)
    assert checked > 0
    print(f"\n[E3] Theorem 1 over broadcast: {checked} instances verified")

    benchmark(check_theorem_1, broadcast_universe, sequences)
