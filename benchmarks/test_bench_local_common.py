"""E8 — §4.2: local-predicate facts 1-8, Lemma 3, and the common-knowledge
constancy corollaries.

Prints the verdicts and the key quantitative fact — the number of
computations at which "everyone knows" holds versus common knowledge
(always zero for contingent predicates) — and benchmarks the sweep.
"""

from repro.knowledge.common import check_common_knowledge
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import CommonKnowledge, Knows
from repro.knowledge.predicates import check_all_local_facts, has_received


def test_bench_local_facts(benchmark, pingpong_universe, pingpong_evaluator):
    results = check_all_local_facts(
        pingpong_universe,
        has_received("q", "ping"),
        frozenset({"q"}),
        frozenset({"p"}),
        evaluator=pingpong_evaluator,
    )
    assert all(results.values()), results

    print("\n[E8] local-predicate facts over ping-pong:")
    for name, verdict in results.items():
        print(f"  {name:24} {'holds' if verdict else 'FAILS'}")

    def sweep():
        evaluator = KnowledgeEvaluator(pingpong_universe)
        return check_all_local_facts(
            pingpong_universe,
            has_received("q", "ping"),
            frozenset({"q"}),
            frozenset({"p"}),
            evaluator=evaluator,
        )

    benchmark(sweep)


def test_bench_common_knowledge(benchmark, broadcast_universe, broadcast_evaluator):
    from repro.protocols.broadcast import fact_established_atom

    fact = fact_established_atom(broadcast_universe.protocol)
    results = check_common_knowledge(
        broadcast_universe, fact, evaluator=broadcast_evaluator
    )
    assert all(results.values()), results

    everyone = (
        Knows("a", fact) & Knows("b", fact) & Knows("c", fact)
    )
    everyone_count = len(broadcast_evaluator.extension(everyone))
    ck_count = len(
        broadcast_evaluator.extension(CommonKnowledge({"a", "b", "c"}, fact))
    )
    print(
        "\n[E8] common knowledge over broadcast "
        f"({len(broadcast_universe)} computations):"
    )
    print(f"  'everyone knows fact' holds at {everyone_count} computations")
    print(f"  'fact is common knowledge' holds at {ck_count} (constant: 0)")
    assert everyone_count > 0
    assert ck_count == 0

    def sweep():
        evaluator = KnowledgeEvaluator(broadcast_universe)
        return check_common_knowledge(broadcast_universe, fact, evaluator=evaluator)

    benchmark(sweep)
