"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md's index
(E1..E13) and prints the series/rows EXPERIMENTS.md records.  Universes
are explored once per session.
"""

from __future__ import annotations

import pytest

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.toggle import ToggleProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.universe.explorer import Universe


@pytest.fixture(scope="session")
def pingpong_universe() -> Universe:
    return Universe(PingPongProtocol(rounds=2))


@pytest.fixture(scope="session")
def pingpong_evaluator(pingpong_universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(pingpong_universe)


@pytest.fixture(scope="session")
def broadcast_universe() -> Universe:
    return Universe(BroadcastProtocol(line_topology(("a", "b", "c")), root="a"))


@pytest.fixture(scope="session")
def broadcast_evaluator(broadcast_universe) -> KnowledgeEvaluator:
    return KnowledgeEvaluator(broadcast_universe)


@pytest.fixture(scope="session")
def token_bus_universe() -> Universe:
    return Universe(TokenBusProtocol(max_hops=4))


@pytest.fixture(scope="session")
def toggle_universe() -> Universe:
    return Universe(ToggleProtocol(max_flips=2))
