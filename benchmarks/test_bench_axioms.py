"""E6 — the twelve knowledge facts of §4.1 (including Lemma 2).

Verifies all facts over two universes and several predicates; prints the
verdict table; benchmarks the full fact sweep.
"""

from repro.knowledge.axioms import check_all_facts
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.predicates import did_internal, has_received, has_sent


def test_bench_knowledge_facts(benchmark, pingpong_universe, pingpong_evaluator):
    results = check_all_facts(
        pingpong_universe,
        has_received("q", "ping"),
        has_sent("p", "ping"),
        frozenset({"p"}),
        frozenset({"q"}),
        evaluator=pingpong_evaluator,
    )
    assert all(results.values()), results

    print("\n[E6] knowledge facts 1-12 over ping-pong:")
    for name in sorted(results, key=lambda n: int(n.split("-")[0])):
        print(f"  fact {name:28} {'holds' if results[name] else 'FAILS'}")

    def sweep():
        evaluator = KnowledgeEvaluator(pingpong_universe)
        return check_all_facts(
            pingpong_universe,
            has_received("q", "ping"),
            has_sent("p", "ping"),
            frozenset({"p"}),
            frozenset({"q"}),
            evaluator=evaluator,
        )

    benchmark(sweep)


def test_bench_knowledge_facts_broadcast(
    benchmark, broadcast_universe, broadcast_evaluator
):
    results = check_all_facts(
        broadcast_universe,
        did_internal("a", "learn"),
        has_received("c", "fact"),
        frozenset({"b"}),
        frozenset({"a", "c"}),
        evaluator=broadcast_evaluator,
    )
    assert all(results.values()), results
    print(
        "\n[E6] knowledge facts over broadcast "
        f"({len(broadcast_universe)} computations): all 12 hold"
    )

    def sweep():
        evaluator = KnowledgeEvaluator(broadcast_universe)
        return check_all_facts(
            broadcast_universe,
            did_internal("a", "learn"),
            has_received("c", "fact"),
            frozenset({"b"}),
            frozenset({"a", "c"}),
            evaluator=evaluator,
        )

    benchmark(sweep)
