"""The happened-before relation of Lamport, as used in section 3.1.

The paper defines ``e -> e'`` (in a computation ``z``) as the least
reflexive-transitive relation containing (1) send-to-corresponding-receive
pairs and (2) process order.  :class:`CausalOrder` materialises this
relation for any *segment*: a map from processes to event sequences.  A
segment may be a whole computation, a configuration, or a suffix
``(x, z)`` — restriction to a suffix is sound because no event of a suffix
can happen before an event of its prefix, so causal paths between suffix
events never leave the suffix.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from functools import cached_property

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set

SegmentLike = Mapping[ProcessId, Sequence[Event]]
"""Any per-process map of event sequences."""


def segment_of(source: Computation | Configuration | SegmentLike) -> dict[
    ProcessId, tuple[Event, ...]
]:
    """Normalise a computation, configuration or raw map into a segment."""
    if isinstance(source, Computation):
        return {
            process: source.projection(process) for process in source.processes
        }
    if isinstance(source, Configuration):
        return dict(source.histories)
    segment: dict[ProcessId, tuple[Event, ...]] = {}
    for process, history in source.items():
        events = tuple(history)
        if events:
            segment[process] = events
    return segment


class CausalOrder:
    """Happened-before over the events of one segment.

    The relation is *reflexive* (``e -> e`` for every event), matching the
    paper's definition; :meth:`strictly_before` gives the irreflexive
    variant when needed.
    """

    def __init__(self, source: Computation | Configuration | SegmentLike) -> None:
        self._segment = segment_of(source)
        self._events: list[Event] = []
        self._successors: dict[Event, list[Event]] = {}
        self._predecessors: dict[Event, list[Event]] = {}
        self._build()

    def _build(self) -> None:
        sends: dict[Message, Event] = {}
        receives: dict[Message, Event] = {}
        for history in self._segment.values():
            for event in history:
                self._events.append(event)
                self._successors[event] = []
                self._predecessors[event] = []
                if isinstance(event, SendEvent):
                    sends[event.message] = event
                elif isinstance(event, ReceiveEvent):
                    receives[event.message] = event
        for history in self._segment.values():
            for earlier, later in zip(history, history[1:]):
                self._add_edge(earlier, later)
        for message, recv_event in receives.items():
            send_event = sends.get(message)
            if send_event is not None:
                self._add_edge(send_event, recv_event)

    def _add_edge(self, earlier: Event, later: Event) -> None:
        self._successors[earlier].append(later)
        self._predecessors[later].append(earlier)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        """All events of the segment (grouped by process)."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event: Event) -> bool:
        return event in self._successors

    def events_on(self, processes: ProcessSetLike) -> tuple[Event, ...]:
        """The segment's events on the given process set."""
        p_set = as_process_set(processes)
        return tuple(event for event in self._events if event.process in p_set)

    def immediate_successors(self, event: Event) -> tuple[Event, ...]:
        """Direct causal successors (next on process, or the receive of a
        message this event sends)."""
        return tuple(self._successors[event])

    def immediate_predecessors(self, event: Event) -> tuple[Event, ...]:
        """Direct causal predecessors."""
        return tuple(self._predecessors[event])

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def forward_closure(self, sources: Iterable[Event]) -> frozenset[Event]:
        """All events ``d`` with ``e -> d`` for some source ``e``
        (including the sources themselves: ``->`` is reflexive)."""
        return self._closure(sources, self._successors)

    def backward_closure(self, sources: Iterable[Event]) -> frozenset[Event]:
        """All events ``d`` with ``d -> e`` for some source ``e``."""
        return self._closure(sources, self._predecessors)

    def _closure(
        self,
        sources: Iterable[Event],
        adjacency: dict[Event, list[Event]],
    ) -> frozenset[Event]:
        visited: set[Event] = set()
        queue: deque[Event] = deque()
        for event in sources:
            if event in adjacency and event not in visited:
                visited.add(event)
                queue.append(event)
        while queue:
            current = queue.popleft()
            for neighbour in adjacency[current]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
        return frozenset(visited)

    # ------------------------------------------------------------------
    # Vector stamps (precomputed happened-before)
    # ------------------------------------------------------------------
    @cached_property
    def _stamp_data(
        self,
    ) -> tuple[dict[ProcessId, int], dict[Event, tuple[int, ...]]] | None:
        """Per-event vector stamps, or ``None`` when no linearization exists.

        ``stamps[e][i]`` counts the events on process ``i`` in the causal
        past of ``e`` (inclusive), so ``e -> d`` reduces to one integer
        comparison: ``stamps[d][i_e] >= stamps[e][i_e]`` with ``i_e`` the
        index of ``e``'s own process.  Computed once per segment in a
        single topological pass; cyclic segments (or segments repeating an
        event) return ``None`` and queries fall back to the BFS oracle.
        """
        order = self.topological_order
        if len(order) != len(self._events):
            return None
        index = {process: i for i, process in enumerate(self._segment)}
        width = len(index)
        stamps: dict[Event, tuple[int, ...]] = {}
        for event in order:
            predecessors = self._predecessors[event]
            if not predecessors:
                vector = [0] * width
            elif len(predecessors) == 1:
                vector = list(stamps[predecessors[0]])
            else:
                vector = [
                    max(components)
                    for components in zip(
                        *(stamps[predecessor] for predecessor in predecessors)
                    )
                ]
            vector[index[event.process]] += 1
            stamps[event] = tuple(vector)
        return index, stamps

    def vector_stamp(self, event: Event) -> dict[ProcessId, int] | None:
        """The event's vector timestamp (per-process causal-past counts,
        inclusive), or ``None`` when the segment has no linearization."""
        data = self._stamp_data
        if data is None or event not in self._successors:
            return None
        index, stamps = data
        stamp = stamps[event]
        return {process: stamp[i] for process, i in index.items()}

    def happened_before(self, earlier: Event, later: Event) -> bool:
        """The paper's ``e -> e'`` (reflexive).

        Answered in O(1) from precomputed vector stamps; segments without
        a linearization fall back to :meth:`happened_before_bfs`.
        """
        if earlier not in self._successors or later not in self._successors:
            return False
        if earlier == later:
            return True
        data = self._stamp_data
        if data is None:
            return later in self.forward_closure([earlier])
        index, stamps = data
        own = index[earlier.process]
        return stamps[later][own] >= stamps[earlier][own]

    def happened_before_bfs(self, earlier: Event, later: Event) -> bool:
        """Reference BFS implementation of ``e -> e'``.

        Kept as the independently-computed oracle the vector-stamp fast
        path is cross-checked against (tests and the causality
        self-check benchmark).
        """
        if earlier not in self._successors or later not in self._successors:
            return False
        if earlier == later:
            return True
        return later in self.forward_closure([earlier])

    def strictly_before(self, earlier: Event, later: Event) -> bool:
        """Irreflexive happened-before."""
        return earlier != later and self.happened_before(earlier, later)

    def concurrent(self, first: Event, second: Event) -> bool:
        """Neither event happens before the other (and they differ)."""
        if first == second:
            return False
        return not self.happened_before(first, second) and not self.happened_before(
            second, first
        )

    def causal_past(self, event: Event) -> frozenset[Event]:
        """All events ``d`` with ``d -> event``."""
        return self.backward_closure([event])

    def causal_future(self, event: Event) -> frozenset[Event]:
        """All events ``d`` with ``event -> d``."""
        return self.forward_closure([event])

    @cached_property
    def topological_order(self) -> tuple[Event, ...]:
        """A deterministic topological order of the segment's events."""
        in_degree = {event: len(self._predecessors[event]) for event in self._events}
        ready = sorted(
            (event for event, degree in in_degree.items() if degree == 0), key=str
        )
        order: list[Event] = []
        queue: deque[Event] = deque(ready)
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbour in self._successors[current]:
                in_degree[neighbour] -= 1
                if in_degree[neighbour] == 0:
                    queue.append(neighbour)
        return tuple(order)

    def is_acyclic(self) -> bool:
        """True iff the segment's causal order has a linearization."""
        return len(self.topological_order) == len(self._events)


def happened_before(
    source: Computation | Configuration | SegmentLike, earlier: Event, later: Event
) -> bool:
    """Convenience wrapper: ``earlier -> later`` within ``source``."""
    return CausalOrder(source).happened_before(earlier, later)
