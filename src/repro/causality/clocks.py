"""Logical clocks: Lamport, vector and matrix clocks.

The paper builds on Lamport's happened-before relation [5]; logical clocks
are the standard mechanism by which *running* processes track that
relation, and they are the substrate used by our simulator-based protocols
(e.g. the knowledge-flow measurements of experiment E9).

* Lamport clocks characterise ``->`` one way: ``e -> d`` implies
  ``L(e) < L(d)``.
* Vector clocks characterise it exactly: ``e -> d`` iff ``V(e) <= V(d)``.
* Matrix clocks additionally track what each process knows about every
  other process's vector clock — the clock-level shadow of the paper's
  nested knowledge ``p knows q knows b``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.causality.order import CausalOrder
from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.core.process import ProcessId


class VectorClock(Mapping[ProcessId, int]):
    """An immutable vector timestamp over a fixed process set.

    Components default to zero; comparisons implement the usual pointwise
    partial order.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[ProcessId, int] | None = None) -> None:
        self._counts: dict[ProcessId, int] = {
            process: count
            for process, count in dict(counts or {}).items()
            if count != 0
        }

    def __getitem__(self, process: ProcessId) -> int:
        return self._counts.get(process, 0)

    def __iter__(self):
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._counts.items())))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{process}:{count}" for process, count in sorted(self._counts.items())
        )
        return f"VectorClock({{{inner}}})"

    def tick(self, process: ProcessId) -> "VectorClock":
        """Increment one component (a local step of ``process``)."""
        counts = dict(self._counts)
        counts[process] = counts.get(process, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum (applied on message receipt)."""
        counts = dict(self._counts)
        for process, count in other._counts.items():
            if count > counts.get(process, 0):
                counts[process] = count
        return VectorClock(counts)

    def dominates(self, other: "VectorClock") -> bool:
        """True iff ``self >= other`` pointwise."""
        return all(self[process] >= count for process, count in other._counts.items())

    def strictly_dominates(self, other: "VectorClock") -> bool:
        """True iff ``self >= other`` pointwise and they differ."""
        return self.dominates(other) and self._counts != other._counts

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither dominates the other."""
        return not self.dominates(other) and not other.dominates(self)


class MatrixClock:
    """An immutable matrix clock: one vector clock per observed process.

    ``clock.view(q)`` is what the owner believes ``q``'s vector clock to
    be; ``clock.view(owner)`` is the owner's own vector clock.  The
    componentwise minimum over all views lower-bounds what is *common*
    between the owner's estimates, the standard garbage-collection bound.
    """

    __slots__ = ("_owner", "_views")

    def __init__(
        self, owner: ProcessId, views: Mapping[ProcessId, VectorClock] | None = None
    ) -> None:
        self._owner = owner
        self._views: dict[ProcessId, VectorClock] = dict(views or {})

    @property
    def owner(self) -> ProcessId:
        return self._owner

    def view(self, process: ProcessId) -> VectorClock:
        """The owner's current estimate of ``process``'s vector clock."""
        return self._views.get(process, VectorClock())

    def tick(self) -> "MatrixClock":
        """A local step: advance the owner's own view of itself."""
        views = dict(self._views)
        views[self._owner] = self.view(self._owner).tick(self._owner)
        return MatrixClock(self._owner, views)

    def merge(self, other: "MatrixClock") -> "MatrixClock":
        """Receive ``other`` (piggybacked on a message): merge all views,
        then fold the sender's self-view into the owner's own view."""
        views = dict(self._views)
        for process, incoming in other._views.items():
            views[process] = views.get(process, VectorClock()).merge(incoming)
        views[self._owner] = self.view(self._owner).merge(
            other.view(other._owner)
        )
        return MatrixClock(self._owner, views)

    def known_floor(self, processes: Iterable[ProcessId]) -> VectorClock:
        """Componentwise minimum of the views of ``processes``."""
        floor: dict[ProcessId, int] = {}
        process_list = list(processes)
        if not process_list:
            return VectorClock()
        keys: set[ProcessId] = set()
        for process in process_list:
            keys.update(self.view(process))
        for key in keys:
            floor[key] = min(self.view(process)[key] for process in process_list)
        return VectorClock(floor)


def lamport_timestamps(
    computation: Computation,
) -> dict[Event, int]:
    """Assign Lamport timestamps to every event of a computation.

    Guarantees ``e -> d`` implies ``timestamp[e] < timestamp[d]`` for
    distinct events.
    """
    clocks: dict[ProcessId, int] = {}
    pending: dict[Message, int] = {}
    stamps: dict[Event, int] = {}
    for event in computation:
        current = clocks.get(event.process, 0)
        if isinstance(event, ReceiveEvent):
            current = max(current, pending.get(event.message, 0))
        current += 1
        clocks[event.process] = current
        stamps[event] = current
        if isinstance(event, SendEvent):
            pending[event.message] = current
    return stamps


def vector_timestamps(
    source: Computation | Configuration,
) -> dict[Event, VectorClock]:
    """Assign vector timestamps to every event.

    Guarantees the exact characterisation: for events ``e, d`` of the
    source, ``e -> d`` iff ``stamps[e] <= stamps[d]`` (pointwise), with
    equality only for ``e == d``.
    """
    if isinstance(source, Configuration):
        computation = source.linearize()
    else:
        computation = source
    clocks: dict[ProcessId, VectorClock] = {}
    pending: dict[Message, VectorClock] = {}
    stamps: dict[Event, VectorClock] = {}
    for event in computation:
        current = clocks.get(event.process, VectorClock())
        if isinstance(event, ReceiveEvent):
            current = current.merge(pending.get(event.message, VectorClock()))
        current = current.tick(event.process)
        clocks[event.process] = current
        stamps[event] = current
        if isinstance(event, SendEvent):
            pending[event.message] = current
    return stamps


def verify_vector_characterisation(
    source: Computation | Configuration,
) -> bool:
    """Check ``e -> d  iff  V(e) <= V(d)`` on every event pair.

    Quadratic; used in tests and the causality self-check benchmark.
    """
    stamps = vector_timestamps(source)
    order = CausalOrder(source)
    for first in order.events:
        for second in order.events:
            # The BFS oracle keeps this an independent check now that
            # happened_before itself is answered from vector stamps.
            causal = order.happened_before_bfs(first, second)
            dominated = stamps[second].dominates(stamps[first])
            if first == second:
                continue
            if causal != (dominated and stamps[first] != stamps[second]):
                return False
    return True
