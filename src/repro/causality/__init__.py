"""Causality substrate: happened-before, process chains, logical clocks."""

from repro.causality.chains import (
    ChainSpec,
    chain_in_suffix,
    find_process_chain,
    has_process_chain,
    has_process_chain_naive,
)
from repro.causality.cuts import (
    consistent_cuts,
    count_consistent_cuts,
    cut_join,
    cut_meet,
    cut_of_vector,
    cut_vector,
    cuts_of_computation,
    is_consistent_cut,
    is_lattice_closed,
)
from repro.causality.clocks import (
    MatrixClock,
    VectorClock,
    lamport_timestamps,
    vector_timestamps,
    verify_vector_characterisation,
)
from repro.causality.order import CausalOrder, happened_before, segment_of

__all__ = [
    "consistent_cuts",
    "count_consistent_cuts",
    "cut_join",
    "cut_meet",
    "cut_of_vector",
    "cut_vector",
    "cuts_of_computation",
    "is_consistent_cut",
    "is_lattice_closed",
    "CausalOrder",
    "ChainSpec",
    "MatrixClock",
    "VectorClock",
    "chain_in_suffix",
    "find_process_chain",
    "happened_before",
    "has_process_chain",
    "has_process_chain_naive",
    "lamport_timestamps",
    "segment_of",
    "vector_timestamps",
    "verify_vector_characterisation",
]
