"""Process chains (paper, section 3.1).

A computation (or any segment) *has a process chain* ``<P0 P1 ... Pn>``
when there exist events ``e0 -> e1 -> ... -> en`` — not necessarily
distinct — with ``ei`` on ``Pi``.  Chains are the operational backbone the
paper replaces with isomorphism; Theorem 1 links the two.

Two implementations are provided:

* :func:`find_process_chain` — layered forward closure over the causal
  DAG, ``O(n * (V + E))`` for a chain of ``n`` sets; this is the
  production implementation.
* :func:`has_process_chain_naive` — direct search over event tuples,
  exponential in the chain length; kept as an oracle for the E13 ablation
  and for differential testing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.causality.order import CausalOrder, SegmentLike, segment_of
from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.core.process import ProcessSetLike, as_process_set

ChainSpec = Sequence[ProcessSetLike]
"""A chain specification: a sequence of process sets ``<P0 P1 ... Pn>``."""


def _normalise_chain(chain: ChainSpec) -> list[frozenset[str]]:
    sets = [as_process_set(entry) for entry in chain]
    if not sets:
        raise ValueError("a process chain needs at least one process set")
    return sets


def find_process_chain(
    source: Computation | Configuration | SegmentLike | CausalOrder,
    chain: ChainSpec,
) -> list[Event] | None:
    """Return witness events ``e0 -> e1 -> ... -> en`` or ``None``.

    The witness satisfies ``ei`` on ``chain[i]``; consecutive events may be
    equal (the paper allows "not necessarily distinct" events because
    ``->`` is reflexive).
    """
    order = source if isinstance(source, CausalOrder) else CausalOrder(source)
    sets = _normalise_chain(chain)

    # layer[i] holds, for each event e on sets[i], a predecessor pointer to
    # the witness event of sets[i-1] from which e is reachable.
    first_layer = {event: None for event in order.events_on(sets[0])}
    layers: list[dict[Event, Event | None]] = [first_layer]
    for p_set in sets[1:]:
        previous = layers[-1]
        if not previous:
            return None
        reachable = order.forward_closure(previous.keys())
        layer: dict[Event, Event | None] = {}
        for event in order.events_on(p_set):
            if event in reachable:
                layer[event] = _witness_source(order, previous, event)
        layers.append(layer)
    if not layers[-1]:
        return None

    # Walk the predecessor pointers backwards to produce the witness.
    witness: list[Event] = []
    current = next(iter(sorted(layers[-1], key=str)))
    for layer in reversed(layers):
        witness.append(current)
        pointer = layer[current]
        if pointer is not None:
            current = pointer
    witness.reverse()
    return witness


def _witness_source(
    order: CausalOrder, previous: dict[Event, Event | None], target: Event
) -> Event:
    """Pick one event of ``previous`` from which ``target`` is reachable."""
    past = order.backward_closure([target])
    for event in previous:
        if event in past:
            return event
    raise AssertionError("target was reported reachable but has no source")


def has_process_chain(
    source: Computation | Configuration | SegmentLike | CausalOrder,
    chain: ChainSpec,
) -> bool:
    """True iff the segment has a process chain ``<P0 P1 ... Pn>``."""
    return find_process_chain(source, chain) is not None


def has_process_chain_naive(
    source: Computation | Configuration | SegmentLike | CausalOrder,
    chain: ChainSpec,
) -> bool:
    """Oracle implementation by direct search over event tuples.

    Exponential in the chain length; use only on small segments (tests and
    the E13 ablation benchmark).
    """
    order = source if isinstance(source, CausalOrder) else CausalOrder(source)
    sets = _normalise_chain(chain)

    def extend(event: Event, remaining: list[frozenset[str]]) -> bool:
        if not remaining:
            return True
        future = order.forward_closure([event])
        for candidate in order.events_on(remaining[0]):
            if candidate in future and extend(candidate, remaining[1:]):
                return True
        return False

    for start in order.events_on(sets[0]):
        if extend(start, sets[1:]):
            return True
    return False


def chain_in_suffix(
    whole: Computation | Configuration,
    prefix: Computation | Configuration,
    chain: ChainSpec,
) -> list[Event] | None:
    """Witness for a chain in the suffix ``(prefix, whole)``, or ``None``.

    This is the form used by Theorems 1, 5 and 6: chains are sought among
    the events added after ``prefix``.
    """
    if isinstance(whole, Computation) and isinstance(prefix, Computation):
        suffix_events = whole.suffix_after(prefix)
        segment: dict[str, list[Event]] = {}
        for event in suffix_events:
            segment.setdefault(event.process, []).append(event)
        return find_process_chain(segment_of(segment), chain)
    if isinstance(whole, Configuration) and isinstance(prefix, Configuration):
        return find_process_chain(whole.suffix_after(prefix), chain)
    raise TypeError("whole and prefix must both be computations or configurations")
