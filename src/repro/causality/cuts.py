"""Consistent cuts and the cut lattice.

A *consistent cut* of a computation is a causally downward-closed set of
its events — equivalently a configuration whose per-process histories are
prefixes of the computation's and whose receives all have their sends.
Consistent cuts ordered by sub-configuration form a distributive lattice
(meet = pointwise shorter prefixes, join = pointwise longer ones); the
paper's prefix order on computations embeds into it, and global-state
algorithms (the snapshot of :mod:`repro.protocols.snapshot`) compute
elements of it.

This module provides enumeration, membership, meet/join, and the
frontier ("cut vector") representation used by the analysis code.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.process import ProcessId

CutVector = Mapping[ProcessId, int]
"""A cut as per-process history lengths."""


def cut_vector(
    configuration: Configuration, processes: tuple[ProcessId, ...]
) -> dict[ProcessId, int]:
    """The frontier of a configuration relative to a process tuple."""
    return {process: len(configuration.history(process)) for process in processes}


def cut_of_vector(
    base: Configuration, vector: CutVector
) -> Configuration:
    """The sub-configuration of ``base`` with the given history lengths."""
    return Configuration(
        {
            process: base.history(process)[: vector.get(process, 0)]
            for process in base.processes
        }
    )


def is_consistent_cut(base: Configuration, candidate: Configuration) -> bool:
    """Is ``candidate`` a consistent cut of ``base``?

    Requires per-process prefixes and message closure (every receive in
    the cut has its send in the cut).
    """
    if not candidate.is_sub_configuration_of(base):
        return False
    return candidate.received_messages <= candidate.sent_messages


def consistent_cuts(base: Configuration) -> Iterator[Configuration]:
    """Enumerate every consistent cut of ``base``.

    Exponential in general (it is the state lattice); intended for the
    analysis of small computations.  Cuts are produced in non-decreasing
    size order per process iteration, not globally sorted.
    """
    import itertools

    processes = sorted(base.processes)
    ranges = [range(len(base.history(process)) + 1) for process in processes]
    for lengths in itertools.product(*ranges):
        candidate = Configuration(
            {
                process: base.history(process)[:length]
                for process, length in zip(processes, lengths)
            }
        )
        if candidate.received_messages <= candidate.sent_messages:
            yield candidate


def count_consistent_cuts(base: Configuration) -> int:
    """The size of the cut lattice (number of reachable global states)."""
    return sum(1 for _ in consistent_cuts(base))


def cut_meet(base: Configuration, first: Configuration, second: Configuration) -> Configuration:
    """Lattice meet: the pointwise-shorter cut (intersection of pasts)."""
    processes = sorted(base.processes)
    return Configuration(
        {
            process: base.history(process)[
                : min(len(first.history(process)), len(second.history(process)))
            ]
            for process in processes
        }
    )


def cut_join(base: Configuration, first: Configuration, second: Configuration) -> Configuration:
    """Lattice join: the pointwise-longer cut (union of pasts)."""
    processes = sorted(base.processes)
    return Configuration(
        {
            process: base.history(process)[
                : max(len(first.history(process)), len(second.history(process)))
            ]
            for process in processes
        }
    )


def cuts_of_computation(computation: Computation) -> Iterator[Configuration]:
    """Consistent cuts of a linear computation (via its configuration)."""
    yield from consistent_cuts(Configuration.from_computation(computation))


def is_lattice_closed(base: Configuration) -> bool:
    """Verify meet/join closure of the consistent-cut family of ``base``.

    Used by tests: consistent cuts are closed under pointwise min and max
    (the classical lattice property of consistent global states).
    Quadratic in the number of cuts.
    """
    cuts = list(consistent_cuts(base))
    members = set(cuts)
    for first in cuts:
        for second in cuts:
            if cut_meet(base, first, second) not in members:
                return False
            if cut_join(base, first, second) not in members:
                return False
    return True
