"""Scaling benchmarks with a JSON trajectory file (``repro bench``).

Runs the hot-path benchmarks the dense-index bitset engine targets —
universe construction, knowledge-extension computation, and causality
queries — and writes a ``BENCH_<date>.json`` trajectory file so perf is
tracked across PRs, not eyeballed.  Each benchmark reports the best wall
time over ``--repeats`` runs (the pytest-benchmark convention), plus the
speedup against the recorded seed baseline where one exists.

Usage::

    python -m repro.cli bench                # writes BENCH_<date>.json here
    python -m repro.cli bench --repeats 7 --output-dir benchmarks/results
    python benchmarks/run_bench.py           # same, as a standalone script
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.causality.order import CausalOrder
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, CommonKnowledge, Knows
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe

SEED_BASELINE = {
    "universe_star_broadcast_n5": 0.0187,
    "universe_star_broadcast_n6": 0.2997,
    "evaluator_star_broadcast_n6": 0.0392,
    "causality_happened_before_all_pairs": 0.0214,
}
"""Best wall times of the pre-bitset seed — the "before" column of the
trajectory.  Measured back-to-back with the PR-1 engine on the same
machine under identical load (seed checkout via a git worktree, same
benchmark definitions, best of 9), so the recorded speedups are a
controlled before/after pair rather than numbers from different noise
windows."""


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _star_protocol(receivers: tuple[str, ...]) -> BroadcastProtocol:
    return BroadcastProtocol(star_topology("hub", receivers), "hub")


def _receiver_got_it() -> Atom:
    return Atom(
        "x_got_it",
        lambda configuration: any(
            event.is_receive for event in configuration.history("x")
        ),
    )


def run_benchmarks(repeats: int = 5) -> dict:
    """Run every benchmark; returns the result document (JSON-ready)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results: dict[str, dict] = {}

    def record(name: str, seconds: float, **extra) -> None:
        entry: dict = {"best_seconds": round(seconds, 6), **extra}
        baseline = SEED_BASELINE.get(name)
        if baseline is not None:
            entry["seed_seconds"] = baseline
            entry["speedup_vs_seed"] = round(baseline / seconds, 2)
        results[name] = entry

    # --- universe construction -----------------------------------------
    # The first construction of each protocol runs against cold caches
    # (empty intern registry entries, cold local-step memo) and is
    # recorded as first_seconds; best_seconds is the steady state over
    # the remaining repeats, the regime of repeated exploration.
    def timed_universe(protocol) -> tuple[Universe, float]:
        start = time.perf_counter()
        universe = Universe(protocol)
        return universe, time.perf_counter() - start

    protocol_n6 = _star_protocol(("v", "w", "x", "y", "z"))
    universe_n6, first_n6 = timed_universe(protocol_n6)
    record(
        "universe_star_broadcast_n6",
        _best_of(lambda: Universe(protocol_n6), repeats),
        configurations=len(universe_n6),
        first_seconds=round(first_n6, 6),
    )

    protocol_n5 = _star_protocol(("w", "x", "y", "z"))
    universe_n5, first_n5 = timed_universe(protocol_n5)
    record(
        "universe_star_broadcast_n5",
        _best_of(lambda: Universe(protocol_n5), repeats),
        configurations=len(universe_n5),
        first_seconds=round(first_n5, 6),
    )

    token_bus = TokenBusProtocol(max_hops=6)
    token_universe, first_token = timed_universe(token_bus)
    record(
        "universe_token_bus_h6",
        _best_of(lambda: Universe(token_bus), repeats),
        configurations=len(token_universe),
        first_seconds=round(first_token, 6),
    )

    # --- knowledge evaluation ------------------------------------------
    def evaluate(universe: Universe) -> None:
        evaluator = KnowledgeEvaluator(universe)
        body = _receiver_got_it()
        evaluator.extension(Knows(frozenset({"hub"}), body))
        evaluator.extension(CommonKnowledge(frozenset({"hub", "x"}), body))

    record(
        "evaluator_star_broadcast_n5",
        _best_of(lambda: evaluate(universe_n5), repeats),
        configurations=len(universe_n5),
    )
    record(
        "evaluator_star_broadcast_n6",
        _best_of(lambda: evaluate(universe_n6), repeats),
        configurations=len(universe_n6),
    )

    # --- causality -------------------------------------------------------
    ring = tuple(f"n{i}" for i in range(10))
    trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(0))
    order = CausalOrder(trace.computation)
    events = order.events

    def all_pairs() -> None:
        happened_before = order.happened_before
        for first in events:
            for second in events:
                happened_before(first, second)

    record(
        "causality_happened_before_all_pairs",
        _best_of(all_pairs, repeats),
        events=len(events),
        pairs=len(events) ** 2,
    )

    return {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "measurement": (
            "best_seconds = min wall time over repeats (steady state: intern "
            "registry and protocol caches warm); first_seconds = first "
            "construction in this process (cold caches); speedup_vs_seed "
            "compares best_seconds against the pre-bitset seed's best"
        ),
        "benchmarks": results,
    }


def write_trajectory(document: dict, output_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<date>.json`` into ``output_dir`` and return the path."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{document['date']}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def print_summary(document: dict) -> None:
    print(f"{'benchmark':>38} {'best (s)':>10} {'seed (s)':>9} {'speedup':>8}")
    for name, entry in sorted(document["benchmarks"].items()):
        seed = entry.get("seed_seconds")
        speedup = entry.get("speedup_vs_seed")
        print(
            f"{name:>38} {entry['best_seconds']:>10.4f} "
            f"{seed if seed is not None else '-':>9} "
            f"{f'{speedup}x' if speedup is not None else '-':>8}"
        )


def run_and_report(
    repeats: int = 5, output_dir: str | Path = ".", no_write: bool = False
) -> int:
    """Run the benchmarks, print the summary, optionally write the
    trajectory file.  Shared by ``repro bench`` and ``run_bench.py``."""
    if repeats < 1:
        raise SystemExit(f"repro bench: --repeats must be >= 1, got {repeats}")
    document = run_benchmarks(repeats=repeats)
    print_summary(document)
    if not no_write:
        path = write_trajectory(document, output_dir)
        print(f"\nwrote {path}")
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the benchmark options once — shared by ``repro bench``'s
    subparser and the standalone entry point."""
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per benchmark"
    )
    parser.add_argument(
        "--output-dir", default=".", help="where to write BENCH_<date>.json"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print the summary only"
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the scaling benchmarks and write a BENCH_<date>.json "
        "trajectory file",
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    return run_and_report(
        repeats=args.repeats, output_dir=args.output_dir, no_write=args.no_write
    )


if __name__ == "__main__":
    sys.exit(main())
