"""Scaling benchmarks with a JSON trajectory file (``repro bench``).

Runs the hot-path benchmarks the dense-index bitset engine targets —
universe construction, knowledge-extension computation, causality
queries, and the isomorphism suite (``check_all_properties``,
``composed_class`` chains) — and writes a ``BENCH_<date>.json``
trajectory file so perf is tracked across PRs, not eyeballed.  Each
benchmark reports the best wall time over ``--repeats`` runs (the
pytest-benchmark convention), plus the speedup against the recorded seed
baseline where one exists.  Isomorphism benchmarks additionally time the
retained object-level reference implementations
(:mod:`repro.isomorphism.reference`) in the same run, so mask-engine
speedups are controlled before/after pairs.

``--quick`` runs a small-universe subset in seconds (repeats forced
to 1); ``--check`` cross-validates the mask engine against the reference
oracles during the run and fails loudly on any mismatch — together they
are the smoke mode the tier-1 suite exercises so the harness cannot rot.

Usage::

    python -m repro.cli bench                # writes BENCH_<date>.json here
    python -m repro.cli bench --repeats 7 --output-dir benchmarks/results
    python -m repro.cli bench --quick --check --no-write   # smoke mode
    python -m repro.cli bench --suite exploration-scale --budget 300
    python benchmarks/run_bench.py           # same, as a standalone script

The ``exploration-scale`` suite measures the frontier kernel at scale
(star n=7/n=8, tree/ring depth targets, streaming truncation, the n=7
property sweep) against the recorded PR-2 engine (``PR2_BASELINE``);
``--budget`` is its wall-clock tripwire.

The ``fault-recovery`` suite measures the sharded engine's failover
paths (worker kill, corrupt frame, heartbeat timeout, shard fold,
checkpoint resume): each entry injects one deterministic fault
(:mod:`repro.universe.faults`), asserts the recovered universe is
bit-identical to the fault-free baseline of the same run, and records
the recovery overhead plus each worker's farewell-frame peak RSS.
``--quick`` is the CI smoke mode.

The exploration-scale suite also carries the memory axis: each
``explore_rss_*`` pair explores the same protocol twice in *fresh
subprocess interpreters* (``VmHWM`` is a high-water mark, so peak
RSS is only attributable when the process did nothing else), once with
the object store and once with the compact arena store, recording
``peak_rss_mb`` / ``bytes_per_configuration`` and the arena's
compression telemetry.  The ``sharded_rss_*`` pairs do the same for
the sharded engine's worker replicas: the same protocol explored twice
in fresh subprocess *trees* — once as the pre-packed engine (object
coordinator store, object-store replica per worker), once in the
memory-frugal configuration (arena coordinator store, packed frontier
window per worker) — summing the coordinator's ``VmHWM`` with
every worker's farewell-frame peak, the controlled pair behind the
packed-replica memory claim.  ``--store arena`` re-runs the suite's
exploration entries themselves on the arena store (the CI smoke uses
this to keep the packed path exercised).
"""

from __future__ import annotations

import argparse
import datetime
import itertools
import json
import os
import platform
import subprocess
import sys
import time
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.causality.order import CausalOrder
from repro.isomorphism import reference
from repro.isomorphism.algebra import check_all_properties
from repro.isomorphism.relation import (
    composed_class,
    find_composition_witness,
    isomorphic,
)
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, CommonKnowledge, Knows
from repro.protocols.broadcast import (
    BroadcastProtocol,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe

SEED_BASELINE = {
    "universe_star_broadcast_n5": 0.0187,
    "universe_star_broadcast_n6": 0.2997,
    "evaluator_star_broadcast_n6": 0.0392,
    "causality_happened_before_all_pairs": 0.0214,
}
"""Best wall times of the pre-bitset seed — the "before" column of the
trajectory.  Measured back-to-back with the PR-1 engine on the same
machine under identical load (seed checkout via a git worktree, same
benchmark definitions, best of 9), so the recorded speedups are a
controlled before/after pair rather than numbers from different noise
windows."""


PR2_BASELINE = {
    "universe_star_broadcast_n7": {"first": 2.106, "steady": 0.556},
    "universe_star_broadcast_n8": {"first": 55.924, "steady": 29.164},
    "universe_tree_broadcast_d3": {"first": 15.360, "steady": 9.942},
    "universe_ring_broadcast_n8": {"first": 0.6505, "steady": 0.0015},
    "iso_properties_star_n7": {"first": 18.196},
}
"""Wall times of the pre-kernel engine (PR 2, commit 466473e) for the
exploration-scale suite — measured back-to-back with the compiled-table /
CSR kernel on the same machine under identical load immediately before
the kernel landed, so ``speedup_vs_pr2`` is a controlled before/after
pair (same protocols, same sizes, same measurement discipline as the
PR 1/PR 2 pairs)."""


class BenchCheckFailure(RuntimeError):
    """Raised by ``--check`` when the mask engine disagrees with the
    object-level reference oracles."""


class BenchShardMismatch(RuntimeError):
    """Raised by the ``--workers`` axis when a sharded exploration does
    not reproduce the single-process universe measured in the same run
    (always on — a wrong universe invalidates the benchmark)."""


class BenchBudgetExceeded(RuntimeError):
    """Raised by ``--budget`` when the suite overruns its wall-clock
    allowance — the perf-regression tripwire of the scale suite."""


class BenchRecoveryMismatch(RuntimeError):
    """Raised by the ``fault-recovery`` suite when a universe recovered
    from an injected fault (or resumed from a checkpoint) is not
    bit-identical to the fault-free baseline built in the same run —
    the whole point of the reliability layer, so always on."""


class BenchStoreMismatch(RuntimeError):
    """Raised by the memory axis when the arena-store exploration does
    not reproduce the object-store universe explored in the same pair
    (always on — a wrong universe invalidates the memory comparison)."""


_SRC_DIR = str(Path(__file__).resolve().parents[1])

_PEAK_RSS_SNIPPET = '''\
def _peak_rss_mb():
    # VmHWM, not ru_maxrss: Linux carries ru_maxrss across fork+exec,
    # so an exec'd child spawned after its parent peaked reports the
    # parent's high-water mark.  VmHWM belongs to the mm, which exec
    # replaces, so it is always this exploration's own peak.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
'''
"""Peak-RSS probe shared by both measurement child scripts."""


_RSS_CHILD = (
    """\
import json, sys, time
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.universe.explorer import Universe

"""
    + _PEAK_RSS_SNIPPET
    + """
receivers = tuple(sys.argv[1].split(","))
store = sys.argv[2]
spill_dir = sys.argv[3] or None
start = time.perf_counter()
universe = Universe(
    BroadcastProtocol(star_topology("hub", receivers), "hub"),
    store=store,
    spill_dir=spill_dir,
    max_configurations=None,
)
report = {
    "configurations": len(universe),
    "explore_seconds": time.perf_counter() - start,
    "peak_rss_mb": _peak_rss_mb(),
}
if store == "arena":
    report["arena"] = universe._configurations.stats()
print(json.dumps(report))
"""
)
"""Child script of the memory axis: explores one star protocol in a
fresh interpreter and prints its own peak RSS as JSON.  A fresh
``subprocess`` (never ``fork`` — a forked child inherits the parent's
high-water mark) is the only way peak RSS is attributable to the
exploration being measured."""


_SHARDED_RSS_CHILD = (
    """\
import json, sys, time
from repro.protocols.broadcast import BroadcastProtocol, star_topology
from repro.universe import sharded
from repro.universe.explorer import Universe
from repro.universe.options import ExplorationOptions, Limits, Sharding

"""
    + _PEAK_RSS_SNIPPET
    + """
receivers = tuple(sys.argv[1].split(","))
workers = int(sys.argv[2])
# The replica representation is an engine implementation detail, not a
# Universe knob; the bench pins it per child to build the controlled
# packed-vs-objects pair.
sharded._DEFAULT_REPLICA = sys.argv[3]
store = sys.argv[4]
start = time.perf_counter()
universe = Universe(
    BroadcastProtocol(star_topology("hub", receivers), "hub"),
    options=ExplorationOptions(
        limits=Limits(max_configurations=None),
        sharding=Sharding(workers=workers),
        store=store,
    ),
)
report = {
    "configurations": len(universe),
    "explore_seconds": time.perf_counter() - start,
    "coordinator_rss_mb": _peak_rss_mb(),
    "worker_rss_mb": universe.worker_peak_rss_mb,
}
print(json.dumps(report))
"""
)
"""Child script of the sharded-memory axis: explores one star protocol
with the sharded engine in a fresh interpreter and prints the
coordinator's own ``VmHWM`` plus every worker's farewell-frame peak
as JSON.  Both halves of the packed-vs-objects pair fork their workers
from the same-sized parent at the same point, so the summed
process-tree peak is a controlled comparison of the replica
representations alone."""


def _explore_in_subprocess(
    receivers: tuple[str, ...], store: str, spill_dir: str | None = None
) -> dict:
    """Explore a star protocol in a fresh interpreter; return its report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _RSS_CHILD,
            ",".join(receivers),
            store,
            spill_dir or "",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if completed.returncode != 0:
        raise BenchStoreMismatch(
            f"memory-axis child ({store}, n={len(receivers) + 1}) failed: "
            f"{completed.stderr.strip().splitlines()[-1:]}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _sharded_explore_in_subprocess(
    receivers: tuple[str, ...], workers: int, replica: str, store: str
) -> dict:
    """Explore a star protocol with the sharded engine in a fresh
    interpreter; return its report (coordinator + per-worker peaks)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _SHARDED_RSS_CHILD,
            ",".join(receivers),
            str(workers),
            replica,
            store,
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if completed.returncode != 0:
        raise BenchShardMismatch(
            f"sharded-rss child ({replica}, n={len(receivers) + 1}) failed: "
            f"{completed.stderr.strip().splitlines()[-1:]}"
        )
    report = json.loads(completed.stdout.strip().splitlines()[-1])
    if len(report["worker_rss_mb"]) != workers:
        raise BenchShardMismatch(
            f"sharded-rss child ({replica}): only "
            f"{len(report['worker_rss_mb'])} of {workers} workers sent "
            f"farewell frames — summed RSS would undercount"
        )
    return report


def _assert_recovered_identical(baseline, recovered, label: str) -> None:
    """The bit-identity contract, cheap enough to enforce in-bench:
    ids, configurations (with per-process histories), CSR arrays, hash
    table including collision buckets, completeness flag."""
    if (
        len(baseline) != len(recovered)
        or baseline.is_complete != recovered.is_complete
        or baseline._succ_offsets != recovered._succ_offsets
        or baseline._succ_ids != recovered._succ_ids
        or baseline._ids_by_hash != recovered._ids_by_hash
        or any(
            ours != theirs or ours._histories != theirs._histories
            for ours, theirs in zip(
                baseline._configurations, recovered._configurations
            )
        )
    ):
        raise BenchRecoveryMismatch(
            f"{label}: recovered universe is not bit-identical to the "
            f"fault-free baseline"
        )


class _BudgetGuard:
    """Wall-clock guard checked between benchmarks (``--budget``)."""

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self.start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.start

    def check(self, label: str) -> None:
        if self.seconds is not None and self.elapsed() > self.seconds:
            raise BenchBudgetExceeded(
                f"wall-clock budget of {self.seconds}s exceeded after "
                f"{self.elapsed():.1f}s (at {label})"
            )


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_once(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _star_protocol(receivers: tuple[str, ...]) -> BroadcastProtocol:
    return BroadcastProtocol(star_topology("hub", receivers), "hub")


def _receiver_got_it() -> Atom:
    return Atom(
        "x_got_it",
        lambda configuration: any(
            event.is_receive for event in configuration.history("x")
        ),
    )


def _composition_chains(universe: Universe) -> list[list[frozenset]]:
    """Representative ``[P1 … Pn]`` chains over a universe's processes."""
    processes = sorted(universe.processes)
    first = frozenset({processes[0]})
    last = frozenset({processes[-1]})
    return [[first], [first, last], [first, last, first]]


def _sample_configurations(universe: Universe, count: int = 64) -> list:
    return list(universe)[:: max(1, len(universe) // count)]


def _cross_check_universe(universe: Universe, label: str) -> None:
    """Assert the mask engine is bit-identical to the reference oracles.

    Compares ``composed_class``, ``find_composition_witness`` and the full
    property sweep on the given (small) universe.  Raises
    :class:`BenchCheckFailure` on the first disagreement.
    """
    sample = _sample_configurations(universe, 24)
    endpoints = [sample[0], sample[-1]]
    for sets in _composition_chains(universe):
        for x in sample:
            mask_class = composed_class(universe, x, sets)
            object_class = reference.composed_class_reference(universe, x, sets)
            if mask_class != object_class:
                raise BenchCheckFailure(
                    f"composed_class mismatch on {label} for {sets}: "
                    f"{len(mask_class)} vs {len(object_class)} members"
                )
            for z in endpoints:
                witness = find_composition_witness(universe, x, sets, z)
                expected = reference.find_composition_witness_reference(
                    universe, x, sets, z
                )
                if (witness is None) != (expected is None):
                    raise BenchCheckFailure(
                        f"witness existence mismatch on {label} for {sets}"
                    )
                if witness is not None:
                    if witness[0] != x or witness[-1] != z:
                        raise BenchCheckFailure(
                            f"witness endpoints wrong on {label}"
                        )
                    for step, entry in enumerate(sets):
                        if not isomorphic(witness[step], witness[step + 1], entry):
                            raise BenchCheckFailure(
                                f"witness step {step} not isomorphic on {label}"
                            )
    mask_props = check_all_properties(universe, max_sets=4)
    object_props = reference.check_all_properties_reference(universe, max_sets=4)
    if mask_props != object_props:
        differing = sorted(
            name
            for name in mask_props
            if mask_props[name] != object_props.get(name)
        )
        raise BenchCheckFailure(
            f"property verdicts differ on {label}: {differing}"
        )
    if not all(mask_props.values()):
        failed = sorted(name for name, ok in mask_props.items() if not ok)
        raise BenchCheckFailure(f"properties fail on {label}: {failed}")


def run_cross_checks() -> list[str]:
    """The ``--check`` validation suite: mask engine vs reference oracles
    on three protocols plus a truncated (incomplete) universe.  Returns
    the labels checked; raises :class:`BenchCheckFailure` on mismatch."""
    checked = []
    for label, universe in (
        ("pingpong", Universe(PingPongProtocol(rounds=2))),
        ("star_broadcast_n3", Universe(_star_protocol(("x", "y")))),
        ("token_bus_h4", Universe(TokenBusProtocol(max_hops=4))),
        (
            "star_broadcast_n4_truncated",
            Universe(_star_protocol(("x", "y", "z")), max_events=4),
        ),
    ):
        _cross_check_universe(universe, label)
        checked.append(label)
    return checked


_N9_BUDGET_FLOOR = 900.0
"""Star n=9 (~1.6e7 configurations, minutes of wall time and tens of GB)
only runs when the suite was given at least this much ``--budget``."""

_N9_CONFIGURATION_CAP = 20_000_000
"""Runaway guard for the n=9 entry: the universe is explored with
``on_limit="truncate"`` at this cap so a mis-parameterised or
larger-than-expected space records a flagged partial instead of growing
unboundedly.  The full star n=9 space (17 017 970 configurations) fits
under it, so on a machine with enough RAM (~26 GB single-process) the
entry completes; the cap bounds configuration *count*, not memory —
machines without that much RAM should not pass the n=9 budget floor."""


def run_benchmarks(
    repeats: int = 5,
    quick: bool = False,
    check: bool = False,
    suite: str = "core",
    budget: float | None = None,
    workers: int = 1,
    store: str = "objects",
) -> dict:
    """Run a benchmark suite; returns the result document (JSON-ready).

    ``suite`` selects the workload: ``"core"`` is the PR-1/PR-2
    trajectory set; ``"exploration-scale"`` is the frontier-kernel scale
    suite (star n=7/n=8, tree/ring depth targets, streaming truncation,
    and the n=7 property sweep), paired against the recorded PR-2
    engine via :data:`PR2_BASELINE`.  ``quick`` restricts either suite
    to small universes with ``repeats=1`` (the smoke mode); ``check``
    runs the mask-vs-reference cross-validation first and raises
    :class:`BenchCheckFailure` on any disagreement; ``budget`` is a
    wall-clock allowance in seconds enforced between benchmarks
    (:class:`BenchBudgetExceeded`).

    ``workers > 1`` adds the multiprocess sharded-engine axis to the
    exploration-scale suite: each sharded entry re-explores a protocol
    just measured single-process in the same run — a controlled pair,
    recorded as ``single_process_seconds`` / ``speedup_vs_single`` —
    and asserts the resulting universe has the single-process size.
    The star n=9 target additionally requires ``budget`` of at least
    ``_N9_BUDGET_FLOOR`` seconds — it runs for minutes and needs tens
    of gigabytes of RAM, so only opt in on a machine that has them
    (``_N9_CONFIGURATION_CAP`` bounds the configuration count as a
    runaway guard, not the memory).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if suite not in ("core", "exploration-scale", "fault-recovery"):
        raise ValueError(f"unknown suite {suite!r}")
    if store not in ("objects", "arena"):
        raise ValueError(f"unknown store {store!r}")
    # The exploration entries of the scale suite run on the selected
    # store; the explore_rss_* pairs always measure both stores.
    store_kwargs = {"store": store} if store != "objects" else {}
    if quick:
        repeats = 1
    guard = _BudgetGuard(budget)
    checked: list[str] = []
    if check:
        checked = run_cross_checks()
        guard.check("cross-checks")
    results: dict[str, dict] = {}

    def record(name: str, seconds: float, **extra) -> None:
        entry: dict = {"best_seconds": round(seconds, 6), **extra}
        baseline = SEED_BASELINE.get(name)
        if baseline is not None:
            entry["seed_seconds"] = baseline
            entry["speedup_vs_seed"] = round(baseline / seconds, 2)
        pr2 = PR2_BASELINE.get(name)
        if pr2 is not None:
            entry["pr2_seconds"] = pr2
            # Scale benchmarks headline the cold run (universes are built
            # once), so the controlled pairing is cold-vs-cold, with the
            # warm re-exploration paired separately when both exist.
            if pr2.get("first"):
                entry["speedup_vs_pr2"] = round(pr2["first"] / seconds, 2)
            steady = entry.get("steady_seconds")
            if steady and pr2.get("steady"):
                entry["steady_speedup_vs_pr2"] = round(
                    pr2["steady"] / steady, 2
                )
        results[name] = entry
        guard.check(name)

    def record_paired(
        name: str, seconds: float, object_seconds: float, **extra
    ) -> None:
        """Record a benchmark alongside its object-level reference timing
        (measured once, in this same run — a controlled pairing)."""
        record(
            name,
            seconds,
            object_seconds=round(object_seconds, 6),
            speedup_vs_object=round(object_seconds / seconds, 2),
            **extra,
        )

    # --- universe construction -----------------------------------------
    # The first construction of each protocol runs against cold caches
    # (cold compiled step tables, cold receive memos) and is recorded as
    # first_seconds; best_seconds is the best over the remaining repeats.
    # The compiled-table build time is reported separately
    # (table_build_seconds) so the remaining cold-start gap is
    # attributable to BFS work rather than interpreted protocol logic.
    def timed_universe(protocol, **kwargs) -> tuple[Universe, float]:
        start = time.perf_counter()
        universe = Universe(protocol, **kwargs)
        return universe, time.perf_counter() - start

    def universe_benchmark(
        name: str, protocol, explore_repeats: int, **kwargs
    ) -> Universe:
        universe, first = timed_universe(protocol, **kwargs)
        # Round once, derive the split from the rounded values so the
        # reported identity first == table_build + bfs_first is exact.
        first_rounded = round(first, 6)
        table_build = round(protocol.step_table.build_seconds, 6)
        record(
            name,
            _best_of(lambda: Universe(protocol, **kwargs), explore_repeats),
            configurations=len(universe),
            first_seconds=first_rounded,
            table_build_seconds=table_build,
            bfs_first_seconds=round(first_rounded - table_build, 6),
        )
        return universe

    def evaluate(universe: Universe) -> None:
        evaluator = KnowledgeEvaluator(universe)
        body = _receiver_got_it()
        evaluator.extension(Knows(frozenset({"hub"}), body))
        evaluator.extension(CommonKnowledge(frozenset({"hub", "x"}), body))

    def composed_sweep_benchmark(name: str, universe: Universe) -> None:
        chain = _composition_chains(universe)[-1]
        sample = _sample_configurations(universe, 128)

        def mask_sweep() -> None:
            for x in sample:
                composed_class(universe, x, chain)

        def object_sweep() -> None:
            for x in sample:
                reference.composed_class_reference(universe, x, chain)

        object_seconds = _timed_once(object_sweep)
        mask_sweep()  # warm the adjacency and union memos
        record_paired(
            name,
            _best_of(mask_sweep, repeats),
            object_seconds,
            configurations=len(universe),
            sample=len(sample),
            chain_length=len(chain),
        )

    def properties_benchmark(
        name: str, universe: Universe, max_sets: int, sweep_repeats: int
    ) -> None:
        verdicts: dict[str, bool] = {}

        def sweep() -> None:
            verdicts.update(check_all_properties(universe, max_sets=max_sets))

        record(
            name,
            _best_of(sweep, sweep_repeats),
            configurations=len(universe),
            max_sets=max_sets,
            all_hold=all(verdicts.values()),
            repeats_used=sweep_repeats,
        )

    def scale_universe_benchmark(
        name: str, protocol, steady_repeats: int, **kwargs
    ) -> None:
        """Cold-first measurement for the exploration-scale suite.

        Exploration is a build-once operation, so ``best_seconds`` is the
        *cold* first exploration (fresh protocol instance, cold compiled
        tables).  ``steady_seconds`` re-explores with the first universe
        released — holding two 10^6-configuration universes at once would
        measure memory pressure, not the kernel.
        """
        universe, first = timed_universe(protocol, **kwargs)
        first_rounded = round(first, 6)
        table_build = round(protocol.step_table.build_seconds, 6)
        size = len(universe)
        del universe
        steady = _best_of(
            lambda: Universe(protocol, **kwargs), steady_repeats
        )
        record(
            name,
            first,
            configurations=size,
            first_seconds=first_rounded,
            steady_seconds=round(steady, 6),
            table_build_seconds=table_build,
            bfs_first_seconds=round(first_rounded - table_build, 6),
        )
        return first, size

    def sharded_universe_benchmark(
        name: str,
        protocol_factory,
        single_seconds: float,
        expected_size: int,
        **kwargs,
    ) -> None:
        """One sharded-engine entry, paired against the single-process
        cold time measured moments earlier in this same run.

        A fresh protocol instance keeps the workers' compiled tables
        cold, mirroring the single-process cold measurement; the merged
        universe's size is asserted against the single-process size (the
        full bit-identity contract is enforced by the test suite).
        """
        start = time.perf_counter()
        universe = Universe(protocol_factory(), workers=workers, **kwargs)
        seconds = time.perf_counter() - start
        size = len(universe)
        del universe
        if size != expected_size:
            raise BenchShardMismatch(
                f"{name}: sharded universe has {size} configurations, "
                f"single-process built {expected_size}"
            )
        record(
            name,
            seconds,
            configurations=size,
            workers=workers,
            single_process_seconds=round(single_seconds, 6),
            speedup_vs_single=round(single_seconds / seconds, 2),
            repeats_used=1,
        )

    def truncated_benchmark(name: str, protocol, cap: int, **kwargs) -> None:
        """Streaming mode at scale: a capped universe must stay usable."""
        start = time.perf_counter()
        universe = Universe(
            protocol, max_configurations=cap, on_limit="truncate", **kwargs
        )
        seconds = time.perf_counter() - start
        assert not universe.is_complete and len(universe) == cap
        universe.partition_table(next(iter(universe.processes)))
        record(
            name,
            seconds,
            configurations=len(universe),
            complete=universe.is_complete,
            max_configurations=cap,
            repeats_used=1,
        )

    def memory_pair_benchmark(
        label: str, receivers: tuple[str, ...], spill: bool = False
    ) -> None:
        """The peak-RSS axis: one protocol, two fresh interpreters.

        Each half of the pair explores the same star protocol in its own
        subprocess (``_RSS_CHILD``) so ``VmHWM`` measures exactly one
        exploration with one store — a controlled arena-vs-objects pair
        under identical load.  The arena entry records the reduction and
        the wall-clock ratio against its object-store twin, plus the
        arena's own compression/spill telemetry.
        """
        import tempfile

        reports: dict[str, dict] = {}
        with tempfile.TemporaryDirectory() as tmpdir:
            for kind in ("objects", "arena"):
                spill_dir = tmpdir if (spill and kind == "arena") else None
                reports[kind] = _explore_in_subprocess(
                    receivers, kind, spill_dir
                )
                guard.check(f"explore_rss_{label}_{kind}")
        if reports["arena"]["configurations"] != reports["objects"][
            "configurations"
        ]:
            raise BenchStoreMismatch(
                f"{label}: arena explored "
                f"{reports['arena']['configurations']} configurations, "
                f"object store {reports['objects']['configurations']}"
            )
        for kind in ("objects", "arena"):
            report = reports[kind]
            extra = {
                "configurations": report["configurations"],
                "peak_rss_mb": round(report["peak_rss_mb"], 1),
                "bytes_per_configuration": round(
                    report["peak_rss_mb"]
                    * 1024.0
                    * 1024.0
                    / report["configurations"],
                    1,
                ),
                "measured_in": "fresh subprocess (VmHWM)",
                "repeats_used": 1,
            }
            if kind == "arena":
                extra["rss_reduction_vs_objects"] = round(
                    reports["objects"]["peak_rss_mb"] / report["peak_rss_mb"],
                    2,
                )
                extra["wallclock_ratio_vs_objects"] = round(
                    report["explore_seconds"]
                    / reports["objects"]["explore_seconds"],
                    2,
                )
                stats = report.get("arena", {})
                if stats.get("raw_bytes"):
                    extra["arena_raw_bytes"] = stats["raw_bytes"]
                    extra["arena_compressed_bytes"] = stats["compressed_bytes"]
                    if stats["compressed_bytes"]:
                        extra["arena_compression_ratio"] = round(
                            stats["raw_bytes"] / stats["compressed_bytes"], 2
                        )
                    extra["arena_spilled_bytes"] = stats.get(
                        "spilled_bytes", 0
                    )
            record(f"explore_rss_{label}_{kind}", report["explore_seconds"], **extra)

    def sharded_rss_pair_benchmark(
        label: str, receivers: tuple[str, ...]
    ) -> None:
        """The sharded-memory axis: the PR 9 engine against the
        object-replica engine it replaced.

        Each half explores the same star protocol with the same worker
        count in a fresh subprocess tree and sums the coordinator's
        ``VmHWM`` with every worker's farewell-frame peak.  The
        ``objects`` half is the pre-PR-9 engine as it actually ran —
        object coordinator store, full object-store replica per worker;
        the ``packed`` half is the engine's memory-frugal configuration
        — arena coordinator store, one packed frontier window per
        worker (the same arena representation, which is the point of
        "arena-backed worker replicas").  Measured the same way in the
        same run: ``rss_fraction_vs_objects`` is the controlled pair
        behind the acceptance bar (summed sharded RSS at most 40% of
        the object-replica baseline), and the recorded
        ``coordinator_rss_mb`` / ``worker_rss_mb`` split attributes the
        win per side (``worker_rss_fraction_vs_objects`` isolates the
        replica representation; the coordinator's own store pair is the
        ``explore_rss_*`` axis).
        """
        pair_workers = workers if workers > 1 else 2
        halves = (("objects", "objects"), ("packed", "arena"))
        reports: dict[str, dict] = {}
        for replica, pair_store in halves:
            reports[replica] = _sharded_explore_in_subprocess(
                receivers, pair_workers, replica, pair_store
            )
            guard.check(f"sharded_rss_{label}_{replica}")
        if (
            reports["packed"]["configurations"]
            != reports["objects"]["configurations"]
        ):
            raise BenchShardMismatch(
                f"{label}: packed replicas explored "
                f"{reports['packed']['configurations']} configurations, "
                f"object replicas {reports['objects']['configurations']}"
            )
        summed: dict[str, float] = {}
        worker_sums: dict[str, float] = {}
        for replica, pair_store in halves:
            report = reports[replica]
            worker_sums[replica] = sum(report["worker_rss_mb"].values())
            total = report["coordinator_rss_mb"] + worker_sums[replica]
            summed[replica] = total
            extra = {
                "configurations": report["configurations"],
                "workers": pair_workers,
                "replica": replica,
                "store": pair_store,
                "coordinator_rss_mb": round(report["coordinator_rss_mb"], 1),
                "worker_rss_mb": [
                    round(mb, 1)
                    for _, mb in sorted(report["worker_rss_mb"].items())
                ],
                "summed_rss_mb": round(total, 1),
                "measured_in": (
                    "fresh subprocess tree (VmHWM + farewell frames)"
                ),
                "repeats_used": 1,
            }
            if replica == "packed":
                extra["rss_fraction_vs_objects"] = round(
                    total / summed["objects"], 3
                )
                extra["worker_rss_fraction_vs_objects"] = round(
                    worker_sums["packed"] / worker_sums["objects"], 3
                )
                extra["wallclock_ratio_vs_objects"] = round(
                    report["explore_seconds"]
                    / reports["objects"]["explore_seconds"],
                    2,
                )
            record(
                f"sharded_rss_{label}_workers{pair_workers}_{replica}",
                report["explore_seconds"],
                **extra,
            )

    def frontier_memo_benchmark(
        name: str, universe: Universe, max_sets: int
    ) -> None:
        """The per-universe frontier-class memo, paired against itself
        switched off.

        The inversion + concatenation sweep recomputes the same
        ``[P1 … Pn]`` frontier decompositions across property checkers;
        the memo shares them per (universe, set-sequence).  The "off"
        half replaces the memo with a never-hit dict — exactly the
        pre-memo behaviour — so the speedup is the memo's doing alone.
        """
        from repro.isomorphism.algebra import (
            check_concatenation,
            check_inversion,
        )

        processes = sorted(universe.processes)
        subsets: list[frozenset] = []
        for size in range(len(processes) + 1):
            for combo in itertools.combinations(processes, size):
                subsets.append(frozenset(combo))
        subsets = subsets[:max_sets]

        def sweep() -> bool:
            inversion = all(
                check_inversion(universe, [first, second])
                for first in subsets
                for second in subsets
            )
            concatenation = all(
                check_concatenation(universe, [first], [second])
                for first in subsets
                for second in subsets
            )
            return inversion and concatenation

        class _NoMemo(dict):
            """Every lookup misses, every store is dropped."""

            def get(self, key, default=None):
                return None

            def __setitem__(self, key, value):
                return None

        universe._frontier_class_memo = _NoMemo()
        memo_off = _timed_once(sweep)
        universe._frontier_class_memo = {}
        cold = _timed_once(sweep)  # cold memo: populated during the run
        warm = _best_of(sweep, repeats)  # memo fully shared across checkers
        record(
            name,
            cold,
            configurations=len(universe),
            max_sets=max_sets,
            subset_pairs=len(subsets) ** 2,
            memo_off_seconds=round(memo_off, 6),
            warm_seconds=round(warm, 6),
            speedup_vs_no_memo=round(memo_off / cold, 2),
            repeats_used=1,
        )

    if suite == "exploration-scale":
        # The frontier-kernel scale suite: exploration is the benchmark.
        # Fresh protocol instances per entry keep first_seconds honest
        # (cold compiled tables); PR2_BASELINE pairs the full-size runs
        # against the recorded pre-kernel engine.
        if quick:
            first_n5, size_n5 = scale_universe_benchmark(
                "universe_star_broadcast_n5",
                _star_protocol(("w", "x", "y", "z")),
                repeats,
                **store_kwargs,
            )
            if workers > 1:
                sharded_universe_benchmark(
                    f"universe_star_broadcast_n5_workers{workers}",
                    lambda: _star_protocol(("w", "x", "y", "z")),
                    first_n5,
                    size_n5,
                    **store_kwargs,
                )
            scale_universe_benchmark(
                "universe_tree_broadcast_d2",
                BroadcastProtocol(
                    tree_topology(tuple(f"t{i}" for i in range(7))), "t0"
                ),
                repeats,
                **store_kwargs,
            )
            scale_universe_benchmark(
                "universe_ring_broadcast_n5",
                BroadcastProtocol(
                    ring_topology(tuple(f"r{i}" for i in range(5))), "r0"
                ),
                repeats,
                **store_kwargs,
            )
            truncated_benchmark(
                "universe_star_broadcast_n5_truncated",
                _star_protocol(("w", "x", "y", "z")),
                cap=200,
                **store_kwargs,
            )
            universe_n4 = Universe(_star_protocol(("x", "y", "z")), **store_kwargs)
            properties_benchmark(
                "iso_properties_star_n4",
                universe_n4,
                max_sets=4,
                sweep_repeats=repeats,
            )
            frontier_memo_benchmark(
                "iso_frontier_memo_star_n4", universe_n4, max_sets=4
            )
            # Memory axis smoke: tiny pair, spill path exercised.  At
            # this size RSS is interpreter baseline, so the reduction
            # ratio is recorded but carries no acceptance meaning.
            memory_pair_benchmark(
                "star_n5", ("w", "x", "y", "z"), spill=True
            )
            # Sharded-memory smoke: same caveat — at this size the
            # summed tree RSS is interpreter baseline, so the fraction
            # is recorded but carries no acceptance meaning.
            sharded_rss_pair_benchmark("star_n5", ("w", "x", "y", "z"))
        else:
            first_n7, size_n7 = scale_universe_benchmark(
                "universe_star_broadcast_n7",
                _star_protocol(("u", "v", "w", "x", "y", "z")),
                min(repeats, 2),
                **store_kwargs,
            )
            if workers > 1:
                sharded_universe_benchmark(
                    f"universe_star_broadcast_n7_workers{workers}",
                    lambda: _star_protocol(("u", "v", "w", "x", "y", "z")),
                    first_n7,
                    size_n7,
                    max_configurations=None,
                    **store_kwargs,
                )
            first_n8, size_n8 = scale_universe_benchmark(
                "universe_star_broadcast_n8",
                _star_protocol(("t", "u", "v", "w", "x", "y", "z")),
                1,
                max_configurations=None,
                **store_kwargs,
            )
            if workers > 1:
                sharded_universe_benchmark(
                    f"universe_star_broadcast_n8_workers{workers}",
                    lambda: _star_protocol(("t", "u", "v", "w", "x", "y", "z")),
                    first_n8,
                    size_n8,
                    max_configurations=None,
                    **store_kwargs,
                )
            # The memory axis headline: the arena acceptance pair at
            # star n=8 (~10^6 configurations), each half in its own
            # interpreter so peak RSS is attributable.
            memory_pair_benchmark(
                "star_n8", ("t", "u", "v", "w", "x", "y", "z")
            )
            # The packed-replica acceptance pair: summed process-tree
            # peak RSS of the sharded engine at star n=8, packed window
            # replicas against the retained object-store replicas.
            sharded_rss_pair_benchmark(
                "star_n8", ("t", "u", "v", "w", "x", "y", "z")
            )
            if budget is not None and budget >= _N9_BUDGET_FLOOR:
                # The n=9 wall (~1.6e7 configurations): explored with the
                # truncation-streaming guard so a RAM-capped machine still
                # records a flagged partial instead of thrashing.
                start = time.perf_counter()
                n9 = Universe(
                    _star_protocol(("s", "t", "u", "v", "w", "x", "y", "z")),
                    max_configurations=_N9_CONFIGURATION_CAP,
                    on_limit="truncate",
                    workers=workers if workers > 1 else None,
                    **store_kwargs,
                )
                seconds = time.perf_counter() - start
                record(
                    f"universe_star_broadcast_n9_workers{workers}",
                    seconds,
                    configurations=len(n9),
                    complete=n9.is_complete,
                    workers=workers,
                    max_configurations=_N9_CONFIGURATION_CAP,
                    repeats_used=1,
                )
                del n9
            scale_universe_benchmark(
                "universe_tree_broadcast_d3",
                BroadcastProtocol(
                    tree_topology(tuple(f"t{i}" for i in range(15))), "t0"
                ),
                1,
                max_configurations=None,
                **store_kwargs,
            )
            scale_universe_benchmark(
                "universe_ring_broadcast_n8",
                BroadcastProtocol(
                    ring_topology(tuple(f"r{i}" for i in range(8))), "r0"
                ),
                repeats,
                **store_kwargs,
            )
            truncated_benchmark(
                "universe_star_broadcast_n8_truncated_500k",
                _star_protocol(("t", "u", "v", "w", "x", "y", "z")),
                cap=500_000,
                **store_kwargs,
            )
            universe_n7 = Universe(
                _star_protocol(("u", "v", "w", "x", "y", "z")), **store_kwargs
            )
            properties_benchmark(
                "iso_properties_star_n7",
                universe_n7,
                max_sets=8,
                sweep_repeats=1,
            )
            frontier_memo_benchmark(
                "iso_frontier_memo_star_n7", universe_n7, max_sets=6
            )
    elif suite == "fault-recovery":
        # Recovery-overhead axis: every entry re-explores the same
        # protocol the fault-free baseline just built in this run, with
        # one injected fault per scenario, asserts the recovered
        # universe is bit-identical, and records the overhead the
        # recovery path cost (respawn-and-replay, fold, heartbeat
        # timeout, checkpoint save+resume).
        import os as _os
        import tempfile

        from repro.universe.faults import FaultPlan
        from repro.universe.sharded import SupervisionPolicy

        shards = workers if workers > 1 else 2
        receivers = (
            ("w", "x", "y", "z") if quick else ("v", "w", "x", "y", "z")
        )
        size_label = f"n{len(receivers) + 1}"
        fast = SupervisionPolicy(heartbeat_timeout=5.0, poll_interval=0.02)

        def timed_sharded(**kwargs):
            start = time.perf_counter()
            universe = Universe(
                _star_protocol(receivers), workers=shards, **kwargs
            )
            return universe, time.perf_counter() - start

        def worker_rss(universe):
            """Per-shard farewell-frame peaks, keyed for the JSON file.

            Workers forked mid-suite inherit the bench process's
            high-water mark, so these are ceilings for spotting
            replica-size regressions across PRs — the attributable
            pair is ``sharded_rss_*`` in the exploration-scale suite."""
            return {
                f"shard{shard}": round(mb, 1)
                for shard, mb in sorted(universe.worker_peak_rss_mb.items())
            }

        baseline, base_seconds = timed_sharded(supervision=fast)
        record(
            f"fault_free_star_{size_label}_workers{shards}",
            base_seconds,
            configurations=len(baseline),
            workers=shards,
            worker_peak_rss_mb=worker_rss(baseline),
            repeats_used=1,
        )

        mid_layer = 3 if quick else 5
        scenarios = (
            ("kill", FaultPlan.kill(0, mid_layer), fast),
            (
                "corrupt",
                FaultPlan.corrupt_batch(shards - 1, mid_layer + 1),
                fast,
            ),
            (
                "timeout",
                FaultPlan.drop_batch(0, mid_layer),
                SupervisionPolicy(heartbeat_timeout=0.5, poll_interval=0.02),
            ),
            (
                "fold",
                FaultPlan.kill(0, mid_layer),
                SupervisionPolicy(
                    heartbeat_timeout=5.0,
                    poll_interval=0.02,
                    max_respawns=0,
                ),
            ),
        )
        for label, plan, policy in scenarios:
            recovered, seconds = timed_sharded(
                fault_plan=plan, supervision=policy
            )
            _assert_recovered_identical(baseline, recovered, label)
            if not recovered.recovery_log:
                raise BenchRecoveryMismatch(
                    f"{label}: no recovery recorded — the injected fault "
                    f"never fired"
                )
            record(
                f"recovery_{label}_star_{size_label}_workers{shards}",
                seconds,
                configurations=len(recovered),
                workers=shards,
                worker_peak_rss_mb=worker_rss(recovered),
                fault_free_seconds=round(base_seconds, 6),
                recovery_overhead_seconds=round(seconds - base_seconds, 6),
                recoveries=[
                    f"{event['kind']}->{event['action']}@L{event['layer']}"
                    for event in recovered.recovery_log
                ],
                repeats_used=1,
            )

        # Checkpoint/resume: truncate a kernel run mid-space, resume it,
        # and require the finished universe to match the sharded
        # baseline bit for bit (also a cross-engine identity check).
        with tempfile.TemporaryDirectory() as tmpdir:
            path = _os.path.join(tmpdir, "bench.ckpt")
            cap = 200 if quick else 2000
            start = time.perf_counter()
            partial = Universe(
                _star_protocol(receivers),
                max_configurations=cap,
                on_limit="truncate",
                checkpoint=path,
            )
            truncate_seconds = time.perf_counter() - start
            start = time.perf_counter()
            resumed = Universe(_star_protocol(receivers), checkpoint=path)
            resume_seconds = time.perf_counter() - start
            _assert_recovered_identical(
                baseline, resumed, "checkpoint-resume"
            )
            record(
                f"checkpoint_resume_star_{size_label}",
                resume_seconds,
                configurations=len(resumed),
                truncated_at=len(partial),
                truncate_seconds=round(truncate_seconds, 6),
                resumed_from=resumed._checkpoint_session.resumed_from,
                saves=resumed._checkpoint_session.saves,
                repeats_used=1,
            )

        # Incremental-vs-full save cost: the controlled pair behind the
        # segmented format.  The same kernel exploration runs twice with
        # --checkpoint-every 1 semantics; only the writer differs
        # (append-one-delta-segment vs rewrite-the-whole-blob), so the
        # per-save cost difference is the format's doing alone.  The
        # steady-state figure (mean of the last three saves, where the
        # monolithic stream is at its largest) is the acceptance metric.
        pair_receivers = (
            ("w", "x", "y", "z")
            if quick
            else ("u", "v", "w", "x", "y", "z")
        )
        pair_label = f"n{len(pair_receivers) + 1}"

        def steady_save(seconds_list):
            tail = seconds_list[-3:] or seconds_list
            return sum(tail) / len(tail)

        with tempfile.TemporaryDirectory() as tmpdir:
            pair = {}
            for fmt in ("monolithic", "segmented"):
                path = _os.path.join(tmpdir, f"{fmt}.ckpt")
                start = time.perf_counter()
                universe = Universe(
                    _star_protocol(pair_receivers),
                    checkpoint=path,
                    checkpoint_format=fmt,
                )
                total = time.perf_counter() - start
                pair[fmt] = (universe, total, universe._checkpoint_session)
            _assert_recovered_identical(
                pair["monolithic"][0], pair["segmented"][0], "save-format-pair"
            )
            mono_steady = steady_save(pair["monolithic"][2].save_seconds)
            seg_steady = steady_save(pair["segmented"][2].save_seconds)
            for fmt in ("monolithic", "segmented"):
                universe, total, session = pair[fmt]
                extra = {
                    "configurations": len(universe),
                    "saves": session.saves,
                    "steady_save_seconds": round(
                        steady_save(session.save_seconds), 6
                    ),
                    "max_save_seconds": round(max(session.save_seconds), 6),
                    "total_save_seconds": round(sum(session.save_seconds), 6),
                    "explore_seconds": round(total, 6),
                    "repeats_used": 1,
                }
                if fmt == "segmented":
                    extra["steady_save_speedup_vs_monolithic"] = round(
                        mono_steady / seg_steady, 2
                    )
                record(
                    f"checkpoint_save_{fmt}_star_{pair_label}",
                    sum(session.save_seconds),
                    **extra,
                )

        # Corrupt-tail salvage: flip one byte in the newest committed
        # segment of a truncated run, then measure the resume that
        # detects it, truncates to the intact prefix, and re-explores.
        from pathlib import Path as _Path

        with tempfile.TemporaryDirectory() as tmpdir:
            path = _Path(tmpdir) / "salvage.ckpt"
            cap = 200 if quick else 2000
            Universe(
                _star_protocol(receivers),
                max_configurations=cap,
                on_limit="truncate",
                checkpoint=path,
            )
            newest = sorted(path.parent.glob(f"{path.name}.g*-*.seg"))[-1]
            damaged = bytearray(newest.read_bytes())
            damaged[-1] ^= 0xFF
            newest.write_bytes(bytes(damaged))
            start = time.perf_counter()
            salvaged = Universe(_star_protocol(receivers), checkpoint=path)
            salvage_seconds = time.perf_counter() - start
            _assert_recovered_identical(baseline, salvaged, "salvage-resume")
            recoveries = [
                event
                for event in salvaged.recovery_log
                if event["action"] == "salvage-truncate"
            ]
            if not recoveries:
                raise BenchRecoveryMismatch(
                    "salvage-resume: the corrupted segment was never "
                    "detected — no salvage-truncate recovery recorded"
                )
            record(
                f"checkpoint_salvage_resume_star_{size_label}",
                salvage_seconds,
                configurations=len(salvaged),
                salvaged_layers=salvaged._checkpoint_session.layers,
                resumed_from=salvaged._checkpoint_session.resumed_from,
                recoveries=[
                    f"{event['kind']}->{event['action']}@L{event['layer']}"
                    for event in recoveries
                ],
                repeats_used=1,
            )

        # Degraded-mode overhead: the same checkpointed kernel run
        # twice — once healthy, once hit by a permanent ENOSPC at an
        # early layer so most of the exploration runs with
        # checkpointing disabled.  The pair bounds what the
        # degradation ladder costs (detect, log, stop saving) relative
        # to a healthy checkpointed run; identity against the sharded
        # baseline proves degradation never touches results.
        import warnings as _warnings

        with tempfile.TemporaryDirectory() as tmpdir:
            start = time.perf_counter()
            healthy = Universe(
                _star_protocol(receivers),
                checkpoint=_os.path.join(tmpdir, "healthy.ckpt"),
            )
            healthy_seconds = time.perf_counter() - start
            start = time.perf_counter()
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                degraded = Universe(
                    _star_protocol(receivers),
                    checkpoint=_os.path.join(tmpdir, "degraded.ckpt"),
                    fault_plan=FaultPlan.parse(
                        [f"enospc@{1 if quick else 2}"]
                    ),
                )
            degraded_seconds = time.perf_counter() - start
            _assert_recovered_identical(baseline, degraded, "degraded-enospc")
            if not degraded.checkpoint_degraded:
                raise BenchRecoveryMismatch(
                    "degraded-enospc: the injected ENOSPC never degraded "
                    "the checkpoint session"
                )
            record(
                f"checkpoint_degraded_star_{size_label}",
                degraded_seconds,
                configurations=len(degraded),
                healthy_seconds=round(healthy_seconds, 6),
                degraded_overhead_seconds=round(
                    degraded_seconds - healthy_seconds, 6
                ),
                recoveries=[
                    f"{event['kind']}->{event['action']}" for event in degraded.recovery_log
                ],
                repeats_used=1,
            )
    elif quick:
        universe_small = universe_benchmark(
            "universe_star_broadcast_n3", _star_protocol(("x", "y")), repeats
        )
        universe_benchmark(
            "universe_token_bus_h4", TokenBusProtocol(max_hops=4), repeats
        )
        record(
            "evaluator_star_broadcast_n3",
            _best_of(lambda: evaluate(universe_small), repeats),
            configurations=len(universe_small),
        )
        composed_sweep_benchmark("iso_composed_class_star_n3", universe_small)
        object_seconds = _timed_once(
            lambda: reference.check_all_properties_reference(
                universe_small, max_sets=4
            )
        )
        record_paired(
            "iso_properties_star_n3",
            _best_of(
                lambda: check_all_properties(universe_small, max_sets=4), repeats
            ),
            object_seconds,
            configurations=len(universe_small),
            max_sets=4,
        )
    else:
        universe_n6 = universe_benchmark(
            "universe_star_broadcast_n6",
            _star_protocol(("v", "w", "x", "y", "z")),
            repeats,
        )
        universe_n5 = universe_benchmark(
            "universe_star_broadcast_n5",
            _star_protocol(("w", "x", "y", "z")),
            repeats,
        )
        universe_benchmark(
            "universe_token_bus_h6", TokenBusProtocol(max_hops=6), repeats
        )

        # --- knowledge evaluation --------------------------------------
        record(
            "evaluator_star_broadcast_n5",
            _best_of(lambda: evaluate(universe_n5), repeats),
            configurations=len(universe_n5),
        )
        record(
            "evaluator_star_broadcast_n6",
            _best_of(lambda: evaluate(universe_n6), repeats),
            configurations=len(universe_n6),
        )

        # --- causality --------------------------------------------------
        ring = tuple(f"n{i}" for i in range(10))
        trace = simulate(ChangRobertsProtocol(ring), RandomScheduler(0))
        order = CausalOrder(trace.computation)
        events = order.events

        def all_pairs() -> None:
            happened_before = order.happened_before
            for first in events:
                for second in events:
                    happened_before(first, second)

        record(
            "causality_happened_before_all_pairs",
            _best_of(all_pairs, repeats),
            events=len(events),
            pairs=len(events) ** 2,
        )

        # --- isomorphism: composed-relation chains ----------------------
        composed_sweep_benchmark("iso_composed_class_star_n6", universe_n6)

        # --- isomorphism: property sweeps -------------------------------
        # The object-level full sweep is cubic in class sizes: star n=4
        # (80 configurations) is the largest size where it finishes in
        # seconds, so that is where the controlled pairing is measured;
        # at n=6 the reference implementation would need hours and only
        # the mask engine is recorded.
        universe_n4 = Universe(_star_protocol(("x", "y", "z")))
        object_seconds = _timed_once(
            lambda: reference.check_all_properties_reference(
                universe_n4, max_sets=4
            )
        )
        record_paired(
            "iso_properties_star_n4",
            _best_of(
                lambda: check_all_properties(universe_n4, max_sets=4), repeats
            ),
            object_seconds,
            configurations=len(universe_n4),
            max_sets=4,
        )
        record(
            "iso_properties_star_n6",
            _best_of(
                lambda: check_all_properties(universe_n6, max_sets=6),
                min(repeats, 3),
            ),
            configurations=len(universe_n6),
            max_sets=6,
            note="object-level sweep infeasible at this size (hours)",
        )

        # --- scale targets: star n=7 and token bus max_hops=10 ----------
        universe_n7 = universe_benchmark(
            "universe_star_broadcast_n7",
            _star_protocol(("u", "v", "w", "x", "y", "z")),
            min(repeats, 2),
        )
        record(
            "evaluator_star_broadcast_n7",
            _best_of(lambda: evaluate(universe_n7), min(repeats, 3)),
            configurations=len(universe_n7),
        )
        properties_n7: dict[str, bool] = {}

        def properties_n7_sweep() -> None:
            properties_n7.update(check_all_properties(universe_n7, max_sets=8))

        record(
            "iso_properties_star_n7",
            _timed_once(properties_n7_sweep),
            configurations=len(universe_n7),
            max_sets=8,
            all_hold=all(properties_n7.values()),
            repeats_used=1,
        )
        universe_h10 = universe_benchmark(
            "universe_token_bus_h10", TokenBusProtocol(max_hops=10), repeats
        )
        record(
            "iso_properties_token_bus_h10",
            _best_of(
                lambda: check_all_properties(universe_h10, max_sets=8),
                min(repeats, 3),
            ),
            configurations=len(universe_h10),
            max_sets=8,
        )

    document = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "suite": suite,
        "mode": "quick" if quick else "full",
        "measurement": (
            "best_seconds = min wall time over repeats (steady state: "
            "protocol caches warm) — EXCEPT exploration-scale universe "
            "entries, where best_seconds is the cold first exploration "
            "(universes are build-once; steady_seconds is the best warm "
            "re-exploration with the first universe released); "
            "first_seconds = first construction in this process (cold "
            "caches); speedup_vs_seed "
            "compares best_seconds against the pre-bitset seed's best; "
            "object_seconds times the retained object-level reference "
            "implementation once in the same run (speedup_vs_object is the "
            "controlled mask-vs-object pairing); table_build_seconds is the "
            "wall time spent compiling protocol step tables during the first "
            "exploration (bfs_first_seconds = first_seconds minus it); "
            "pr2_seconds / speedup_vs_pr2 pair scale benchmarks against the "
            "pre-kernel PR-2 engine measured back-to-back on this machine; "
            "*_workersK entries run the multiprocess sharded frontier engine "
            "with K worker shards, paired against the single-process cold "
            "exploration of the same protocol in the same run "
            "(single_process_seconds / speedup_vs_single); fault-recovery "
            "recovery_* entries inject one fault and record "
            "recovery_overhead_seconds against the fault-free sharded "
            "exploration of the same run, with the recovered universe "
            "asserted bit-identical (worker_peak_rss_mb lists each worker's "
            "farewell-frame peak); explore_rss_* pairs explore the same "
            "protocol in fresh subprocess interpreters (objects then arena "
            "store) and record each child's own VmHWM as peak_rss_mb / "
            "bytes_per_configuration — rss_reduction_vs_objects and "
            "wallclock_ratio_vs_objects pair the arena against its "
            "object-store twin measured in the same run; sharded_rss_* "
            "pairs run the sharded engine twice in fresh subprocess trees "
            "with the same worker count (object coordinator store + object "
            "replicas = the pre-packed engine, then arena coordinator "
            "store + packed window replicas) and sum the coordinator's "
            "VmHWM with every worker's farewell-frame peak — "
            "rss_fraction_vs_objects is the acceptance ratio and "
            "worker_rss_fraction_vs_objects isolates the replica "
            "representation; "
            "iso_frontier_memo_* entries time the inversion+concatenation "
            "sweep with the per-universe frontier-class memo disabled "
            "(memo_off_seconds, the pre-memo behaviour), cold, and warm"
        ),
        "benchmarks": results,
    }
    if workers > 1:
        document["workers"] = workers
    if store != "objects":
        document["store"] = store
    if budget is not None:
        document["budget_seconds"] = budget
        document["elapsed_seconds"] = round(guard.elapsed(), 3)
    if check:
        document["cross_checked"] = checked
    return document


def write_trajectory(document: dict, output_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<date>.json`` into ``output_dir`` and return the path.

    Never clobbers an existing trajectory file (two PRs can land the same
    day): on a name collision the file gets a ``-2``, ``-3``, … suffix.
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{document['date']}.json"
    serial = 2
    while path.exists():
        path = directory / f"BENCH_{document['date']}-{serial}.json"
        serial += 1
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def print_summary(document: dict) -> None:
    print(
        f"{'benchmark':>38} {'best (s)':>10} {'seed (s)':>9} {'speedup':>8} "
        f"{'vs object':>10}"
    )
    for name, entry in sorted(document["benchmarks"].items()):
        seed = entry.get("seed_seconds")
        speedup = entry.get("speedup_vs_seed")
        object_speedup = entry.get("speedup_vs_object")
        print(
            f"{name:>38} {entry['best_seconds']:>10.4f} "
            f"{seed if seed is not None else '-':>9} "
            f"{f'{speedup}x' if speedup is not None else '-':>8} "
            f"{f'{object_speedup}x' if object_speedup is not None else '-':>10}"
        )
    checked = document.get("cross_checked")
    if checked is not None:
        print(f"cross-checked vs reference oracles: {', '.join(checked)}")


def run_and_report(
    repeats: int = 5,
    output_dir: str | Path = ".",
    no_write: bool = False,
    quick: bool = False,
    check: bool = False,
    suite: str = "core",
    budget: float | None = None,
    workers: int = 1,
    store: str = "objects",
) -> int:
    """Run the benchmarks, print the summary, optionally write the
    trajectory file.  Shared by ``repro bench`` and ``run_bench.py``."""
    if repeats < 1:
        raise SystemExit(f"repro bench: --repeats must be >= 1, got {repeats}")
    if workers < 1:
        raise SystemExit(f"repro bench: --workers must be >= 1, got {workers}")
    try:
        document = run_benchmarks(
            repeats=repeats,
            quick=quick,
            check=check,
            suite=suite,
            budget=budget,
            workers=workers,
            store=store,
        )
    except BenchCheckFailure as failure:
        print(f"repro bench --check FAILED: {failure}")
        return 1
    except BenchShardMismatch as mismatch:
        print(f"repro bench --workers FAILED: {mismatch}")
        return 1
    except BenchStoreMismatch as mismatch:
        print(f"repro bench memory axis FAILED: {mismatch}")
        return 1
    except BenchBudgetExceeded as overrun:
        print(f"repro bench --budget FAILED: {overrun}")
        return 1
    print_summary(document)
    if not no_write:
        path = write_trajectory(document, output_dir)
        print(f"\nwrote {path}")
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the benchmark options once — shared by ``repro bench``'s
    subparser and the standalone entry point."""
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per benchmark"
    )
    parser.add_argument(
        "--output-dir", default=".", help="where to write BENCH_<date>.json"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print the summary only"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-universe smoke subset, repeats forced to 1",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="cross-validate the mask engine against the object-level "
        "reference oracles before timing; non-zero exit on mismatch",
    )
    parser.add_argument(
        "--suite",
        choices=("core", "exploration-scale", "fault-recovery"),
        default="core",
        help="benchmark suite: 'core' (PR-1/PR-2 trajectory set), "
        "'exploration-scale' (star n=7/n=8, tree/ring depth targets, "
        "streaming truncation, n=7 property sweep), or 'fault-recovery' "
        "(sharded-engine failover overhead: kill/corrupt/timeout/fold "
        "recovery and checkpoint resume, each asserted bit-identical to "
        "the fault-free baseline)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock allowance for the whole run, checked between "
        "benchmarks; non-zero exit on overrun (the star n=9 target of the "
        "exploration-scale suite only runs when this is >= 900)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sharded-engine axis for the exploration-scale suite: N>1 "
        "re-explores the scale targets with N multiprocess worker shards, "
        "paired against the single-process times of the same run",
    )
    parser.add_argument(
        "--store",
        choices=("objects", "arena"),
        default="objects",
        help="configuration store for the exploration-scale suite's "
        "exploration entries (the explore_rss_* memory pairs always "
        "measure both stores); 'arena' is the packed "
        "compressed-cold-layer store",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the scaling benchmarks and write a BENCH_<date>.json "
        "trajectory file",
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    return run_and_report(
        repeats=args.repeats,
        output_dir=args.output_dir,
        no_write=args.no_write,
        quick=args.quick,
        check=args.check,
        suite=args.suite,
        budget=args.budget,
        workers=args.workers,
        store=args.store,
    )


if __name__ == "__main__":
    sys.exit(main())
