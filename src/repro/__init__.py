"""repro — an executable reproduction of *How Processes Learn*
(K. Mani Chandy & Jayadev Misra, PODC 1985).

The library makes every definition and theorem of the paper executable:

* :mod:`repro.core` — events, computations, configurations (§2);
* :mod:`repro.causality` — happened-before, process chains, clocks (§3.1);
* :mod:`repro.isomorphism` — ``[P]`` relations, the isomorphism diagram,
  Theorem 1, fusion, event semantics (§3);
* :mod:`repro.knowledge` — ``P knows b``, local predicates, common
  knowledge, the transfer theorems (§4);
* :mod:`repro.universe` — protocols and exhaustive exploration (the
  quantification domain of every "for all computations");
* :mod:`repro.simulation` — a deterministic simulator for scale;
* :mod:`repro.protocols` — token bus, broadcast, termination detection,
  failure monitoring, snapshots, leader election;
* :mod:`repro.applications` — the §5 impossibility and lower-bound
  results, measured.

Quickstart::

    from repro import Universe, KnowledgeEvaluator, Knows
    from repro.protocols import PingPongProtocol
    from repro.knowledge import has_received

    universe = Universe(PingPongProtocol(rounds=1))
    evaluator = KnowledgeEvaluator(universe)
    b = has_received("q", "ping")
    # p learns that q got the ping only when the pong returns:
    print(evaluator.extension(Knows("p", b)))
"""

from repro.core import (
    NULL,
    Computation,
    Configuration,
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    ReproError,
    SendEvent,
    as_process_set,
    complement,
    computation_of,
    internal,
    message_pair,
    receive,
    send,
)
from repro.causality import (
    CausalOrder,
    VectorClock,
    find_process_chain,
    happened_before,
    has_process_chain,
    vector_timestamps,
)
from repro.isomorphism import (
    IsomorphismDiagram,
    agreement_set,
    composed_isomorphic,
    fuse,
    isomorphic,
    normalise_sequence,
    theorem_1_holds,
)
from repro.knowledge import (
    Atom,
    CommonKnowledge,
    Knows,
    KnowledgeEvaluator,
    Not,
    Sure,
    knows,
    unsure,
)
from repro.simulation import RandomScheduler, Simulator, simulate
from repro.universe import Protocol, Universe

__version__ = "1.0.0"

__all__ = [
    "NULL",
    "Atom",
    "CausalOrder",
    "CommonKnowledge",
    "Computation",
    "Configuration",
    "Event",
    "InternalEvent",
    "IsomorphismDiagram",
    "Knows",
    "KnowledgeEvaluator",
    "Message",
    "Not",
    "Protocol",
    "RandomScheduler",
    "ReceiveEvent",
    "ReproError",
    "SendEvent",
    "Simulator",
    "Sure",
    "Universe",
    "VectorClock",
    "agreement_set",
    "as_process_set",
    "complement",
    "composed_isomorphic",
    "computation_of",
    "find_process_chain",
    "fuse",
    "happened_before",
    "has_process_chain",
    "internal",
    "isomorphic",
    "knows",
    "message_pair",
    "normalise_sequence",
    "receive",
    "send",
    "simulate",
    "theorem_1_holds",
    "unsure",
    "vector_timestamps",
    "__version__",
]
