"""Command-line interface: explore, check and demonstrate from a shell.

Four subcommands, each wrapping the corresponding library layer:

* ``repro explore <protocol>`` — explore a named protocol's universe and
  print its size and isomorphism diagram (small universes only);
* ``repro check <protocol>`` — run the paper's theorem checkers over the
  universe (properties 1–10, Theorem 1, knowledge facts) and report;
* ``repro simulate <protocol>`` — one seeded simulator run with a
  space-time diagram;
* ``repro experiments`` — list the experiment index (E1–E14) with the
  bench target regenerating each;
* ``repro report`` — run every theorem checker and print a markdown
  verification report (exit status 1 on any failure);
* ``repro bench`` — run the scaling benchmarks and write a
  ``BENCH_<date>.json`` trajectory file (see :mod:`repro.bench`);
* ``repro checkpoint verify|inspect|compact PATH`` — report an
  exploration checkpoint's format version, compatibility token, layer
  count and per-segment integrity (``verify`` exits non-zero on any
  damage), or fold all of its segments into one under a bumped
  generation (``compact`` — the operator-driven counterpart of the
  in-session auto-compaction).

Usage::

    python -m repro.cli explore pingpong --rounds 2
    python -m repro.cli check tokenbus
    python -m repro.cli simulate election --seed 7
    python -m repro.cli experiments
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.isomorphism.algebra import check_all_properties
from repro.isomorphism.diagram import IsomorphismDiagram
from repro.isomorphism.fundamental import check_theorem_1
from repro.knowledge.axioms import check_all_facts
from repro.knowledge.predicates import event_count_at_least, has_received
from repro.protocols.broadcast import (
    BroadcastProtocol,
    line_topology,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.snapshot import SnapshotTokenRingProtocol
from repro.protocols.toggle import ToggleProtocol
from repro.protocols.token_bus import TokenBusProtocol
from repro.simulation.network import FifoProtocol
from repro.simulation.scheduler import RandomScheduler
from repro.simulation.simulator import simulate
from repro.universe.explorer import Universe
from repro.universe.protocol import Protocol
from repro.viz.render import space_time_diagram

EXPERIMENTS = [
    ("E1", "Figure 3-1 isomorphism diagram", "benchmarks/test_bench_fig31.py"),
    ("E2", "isomorphism properties 1-10", "benchmarks/test_bench_properties.py"),
    ("E3", "Theorem 1 (process chains)", "benchmarks/test_bench_theorem1.py"),
    ("E4", "fusion (Lemma 1 / Theorem 2)", "benchmarks/test_bench_fusion.py"),
    ("E5", "Theorem 3 (event semantics)", "benchmarks/test_bench_event_semantics.py"),
    ("E6", "knowledge facts 1-12", "benchmarks/test_bench_axioms.py"),
    ("E7", "token-bus nested knowledge", "benchmarks/test_bench_token_bus.py"),
    ("E8", "local predicates / common knowledge", "benchmarks/test_bench_local_common.py"),
    ("E9", "knowledge transfer theorems", "benchmarks/test_bench_transfer.py"),
    ("E10", "tracking impossibility (5a)", "benchmarks/test_bench_tracking.py"),
    ("E11", "failure detection (5b)", "benchmarks/test_bench_failure.py"),
    ("E12", "termination lower bound (5c)", "benchmarks/test_bench_termination.py"),
    ("E13", "machinery ablations", "benchmarks/test_bench_scaling.py"),
    ("E14", "§6 generalisations (state / belief)", "benchmarks/test_bench_generalisations.py"),
]


def broadcast_protocol(topology: str, size: int) -> BroadcastProtocol:
    """A broadcast protocol over one of the named topologies, sized
    ``size`` processes, rooted at ``n0``.  Shared with the chaos harness
    (``tests/chaos.py``) so subprocess runs and in-process reference
    runs build the identical protocol."""
    names = tuple(f"n{i}" for i in range(size))
    if topology == "line":
        adjacency = line_topology(names)
    elif topology == "star":
        adjacency = star_topology(names[0], names[1:])
    elif topology == "ring":
        adjacency = ring_topology(names)
    elif topology == "tree":
        adjacency = tree_topology(names)
    else:
        raise SystemExit(f"unknown topology {topology!r}")
    return BroadcastProtocol(adjacency, root=names[0])


def build_protocol(name: str, args: argparse.Namespace) -> Protocol:
    """Instantiate one of the named example protocols."""
    if name == "pingpong":
        return PingPongProtocol(rounds=args.rounds)
    if name == "tokenbus":
        return TokenBusProtocol(max_hops=args.hops)
    if name == "broadcast":
        return broadcast_protocol(getattr(args, "topology", "line"), args.size)
    if name == "toggle":
        return ToggleProtocol(max_flips=args.flips)
    if name == "election":
        ring = tuple(f"n{i}" for i in range(args.size))
        return ChangRobertsProtocol(ring)
    if name == "snapshot":
        ring = tuple(f"n{i}" for i in range(min(args.size, 5)))
        return FifoProtocol(SnapshotTokenRingProtocol(ring, max_hops=args.hops))
    raise SystemExit(f"unknown protocol {name!r}")


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.errors import UniverseError
    from repro.universe.checkpoint import CheckpointError
    from repro.universe.options import options_from_args

    protocol = build_protocol(args.protocol, args)
    try:
        universe = Universe(protocol, options=options_from_args(args))
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2
    except UniverseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workers = f", workers: {args.workers}" if args.workers > 1 else ""
    store = f", store: {args.store}" if args.store != "objects" else ""
    print(f"{args.protocol}: {len(universe)} configurations "
          f"(complete: {universe.is_complete}{workers}{store})")
    if args.store == "arena":
        stats = universe._configurations.stats()
        print(
            f"arena: {stats['sealed_chunks']} sealed chunks "
            f"({stats['raw_bytes']} raw -> {stats['compressed_bytes']} "
            f"compressed bytes), {stats['spilled_chunks']} spilled "
            f"({stats['spilled_bytes']} bytes on disk)"
        )
    session = universe._checkpoint_session
    if session is not None:
        if session.resumed_from is not None:
            print(
                f"resumed from checkpoint {session.path} "
                f"(frontier at configuration {session.resumed_from})"
            )
        print(
            f"checkpoint: {session.path} "
            f"({session.layers} layers, {session.saves} saves)"
        )
        if universe.checkpoint_degraded:
            print(
                f"checkpoint DEGRADED: persistent storage failure "
                f"({session.degraded_reason}); the last committed "
                f"manifest is still valid, later layers were not saved",
                file=sys.stderr,
            )
    for event in universe.recovery_log:
        shard = event.get("shard")
        layer = event.get("layer")
        where = f" at layer {layer}" if layer is not None else ""
        if shard is None or shard < 0:
            detail = event.get("detail", "")
            suffix = f": {detail}" if detail else ""
            print(
                f"recovery: {event['kind']} -> {event['action']}"
                f"{where}{suffix}"
            )
        else:
            print(
                f"recovered worker {shard}{where} "
                f"({event['kind']} -> {event['action']})"
            )
    if len(universe) <= args.diagram_limit:
        diagram = IsomorphismDiagram.of_universe(universe)
        print(diagram.render())
    else:
        print(f"(diagram suppressed: more than {args.diagram_limit} vertices)")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    protocol = build_protocol(args.protocol, args)
    universe = Universe(protocol, max_configurations=args.limit)
    print(f"universe: {len(universe)} configurations")

    properties = check_all_properties(universe, max_sets=args.max_sets)
    failed = [name for name, verdict in properties.items() if not verdict]
    print(f"isomorphism properties 1-10: "
          f"{'all hold' if not failed else 'FAILED: ' + ', '.join(failed)}")

    processes = sorted(universe.processes)
    sequences = [[frozenset({p})] for p in processes[:2]]
    if len(processes) >= 2:
        sequences.append([frozenset({processes[0]}), frozenset({processes[1]})])
    checked = check_theorem_1(universe, sequences)
    print(f"Theorem 1: {checked} instances verified")

    first, second = processes[0], processes[-1]
    facts = check_all_facts(
        universe,
        event_count_at_least({second}, 1),
        has_received(second, "ping") if args.protocol == "pingpong"
        else event_count_at_least({first}, 1),
        frozenset({first}),
        frozenset({second}),
    )
    bad = [name for name, verdict in facts.items() if not verdict]
    print(f"knowledge facts 1-12: "
          f"{'all hold' if not bad else 'FAILED: ' + ', '.join(bad)}")
    return 1 if failed or bad else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    protocol = build_protocol(args.protocol, args)
    trace = simulate(protocol, RandomScheduler(args.seed), max_steps=args.max_steps)
    summary = trace.summary()
    print(
        f"{args.protocol} (seed {args.seed}): {summary['events']} events, "
        f"{summary['sends']} sends, {summary['receives']} receives, "
        f"{summary['undelivered']} undelivered"
    )
    print(space_time_diagram(trace.computation, max_columns=args.columns))
    return 0


def cmd_report(_args: argparse.Namespace) -> int:
    from repro.report import verification_report

    report = verification_report()
    print(report.to_markdown())
    return 0 if report.all_hold else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_and_report

    return run_and_report(
        repeats=args.repeats,
        output_dir=args.output_dir,
        no_write=args.no_write,
        quick=args.quick,
        check=args.check,
        suite=args.suite,
        budget=args.budget,
        workers=args.workers,
        store=args.store,
    )


def cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.universe.checkpoint import (
        CheckpointError,
        compact_checkpoint,
        inspect_checkpoint,
    )

    if args.action == "compact":
        try:
            result = compact_checkpoint(args.path)
        except CheckpointError as error:
            print(f"checkpoint error: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(result, indent=2, default=str))
            return 0
        print(f"checkpoint: {result['path']}")
        if not result["compacted"]:
            print(f"  not compacted: {result['reason']}")
            return 0
        print(
            f"  compacted {result['segments_before']} segments into 1 "
            f"(generation {result['generation']}): "
            f"{result['bytes_before']} -> {result['bytes_after']} bytes"
        )
        print(
            f"  layers: {result['layers']}, "
            f"configurations: {result['count']}"
        )
        return 0

    report = inspect_checkpoint(args.path)
    if args.json:
        # Machine-readable report: same keys as the Python API —
        # per-segment status rows, orphans, and the manifest's
        # persisted recovery/degradation events.  Exit codes match the
        # text mode (0 ok, 1 verify-integrity failure, 2 unreadable).
        print(json.dumps(report, indent=2, default=str))
        if not report["exists"] or report["error"] is not None:
            return 2
        if not report["valid"]:
            return 1 if args.action == "verify" else 0
        return 0
    print(f"checkpoint: {report['path']}")
    if not report["exists"]:
        print(f"  error: {report['error']}")
        return 2
    if report["error"] is not None:
        print(f"  format version: {report['format_version']}")
        print(f"  error: {report['error']}")
        return 2
    token = report["token"]
    print(f"  format version: {report['format_version']}")
    print(
        f"  protocol: {token['protocol']} "
        f"({len(token['processes'])} processes: "
        f"{', '.join(str(p) for p in token['processes'])})"
    )
    print(f"  max_events: {token['max_events']}")
    print(
        f"  layers: {report['layers']}, configurations: {report['count']}, "
        f"complete: {report['complete']}"
    )
    if report["format_version"] >= 2:
        print(
            f"  generation: {report['generation']}, "
            f"segments: {len(report['segments'])}"
        )
        for row in report["segments"]:
            print(
                f"    {row['name']}: layers {row['layer_from']}"
                f"..{row['layer_to']}, {row['records']} records, "
                f"{row['size']} bytes — {row['status']}"
            )
        for orphan in report["orphans"]:
            print(f"    {orphan}: orphan (uncommitted torn save)")
    for event in report.get("recovery", ()):
        layer = event.get("layer")
        where = f" at layer {layer}" if layer is not None else ""
        detail = event.get("detail", "")
        suffix = f": {detail}" if detail else ""
        print(
            f"  recovery: {event.get('kind')} -> "
            f"{event.get('rung', event.get('action'))}{where}{suffix}"
        )
    if not report["valid"]:
        print(
            f"  INTEGRITY: FAILED — salvageable prefix is "
            f"{report['salvageable_layers']} layers"
        )
        return 1 if args.action == "verify" else 0
    print("  INTEGRITY: ok")
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    print(f"{'id':>4}  {'artefact':40}  bench target")
    for exp_id, description, target in EXPERIMENTS:
        print(f"{exp_id:>4}  {description:40}  {target}")
    print("\nRegenerate everything:  pytest benchmarks/ --benchmark-only -s")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="How Processes Learn (Chandy & Misra 1985), executable.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_protocol_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "protocol",
            choices=["pingpong", "tokenbus", "broadcast", "toggle",
                     "election", "snapshot"],
        )
        sub.add_argument("--rounds", type=int, default=2)
        sub.add_argument("--hops", type=int, default=3)
        sub.add_argument("--size", type=int, default=4)
        sub.add_argument("--flips", type=int, default=2)
        sub.add_argument("--limit", type=int, default=100_000)
        sub.add_argument(
            "--topology",
            choices=["line", "star", "ring", "tree"],
            default="line",
            help="adjacency of the broadcast protocol (ignored by the "
            "other protocols); star is the scale family of the benchmarks",
        )

    explore = subparsers.add_parser("explore", help="explore a universe")
    add_protocol_options(explore)
    explore.add_argument("--diagram-limit", type=int, default=30)
    explore.add_argument(
        "--store",
        choices=["objects", "arena"],
        default="objects",
        help="configuration store (ExplorationOptions.store): 'objects' "
        "keeps every Configuration materialised (fastest for small "
        "universes); 'arena' packs (parent id, event, hash) columns with "
        "lazy materialisation and compressed cold layers — same result "
        "bit-for-bit, a fraction of the memory at scale",
    )

    # Flag groups mirror the ExplorationOptions dataclasses one-to-one;
    # options_from_args() is the single mapping between the two.
    sharding = explore.add_argument_group(
        "sharding (Sharding)",
        "multiprocess sharded exploration and its fault injection",
    )
    sharding.add_argument(
        "--workers",
        type=int,
        default=1,
        help="exploration processes: 1 runs the in-process kernel, N>1 "
        "the multiprocess sharded frontier engine (bit-identical result)",
    )
    sharding.add_argument(
        "--fault",
        action="append",
        metavar="SPEC",
        default=None,
        help="inject a deterministic fault, repeatable; worker kinds "
        "need a shard (kill:0@3, drop_batch:1@2, delay_batch:1@2~0.5, "
        "corrupt_batch:0@1), checkpoint kinds take none (torn_save@5, "
        "corrupt_segment@2, stall_write@3~1.0), storage kinds take "
        "none and hit the next checkpoint/spill filesystem call after "
        "their layer (enospc@2, eio_write@1, eio_read@0, fsync_fail@3, "
        "slow_io@2~0.2, fd_exhaust@1)",
    )

    ckpt = explore.add_argument_group(
        "checkpointing (CheckpointPolicy)",
        "durable layer-boundary saves and crash/resume behaviour",
    )
    ckpt.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file: save at BFS layer boundaries (atomic "
        "write-then-rename) and resume from it if it already exists; "
        "the resumed universe is bit-identical to an uninterrupted run",
    )
    ckpt.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="save the checkpoint every N completed layers (default 1)",
    )
    ckpt.add_argument(
        "--checkpoint-format",
        choices=["segmented", "monolithic"],
        default="segmented",
        help="on-disk writer: 'segmented' appends O(delta) segment files "
        "from a background thread; 'monolithic' rewrites one v1 blob "
        "per save (the retained baseline format)",
    )
    ckpt.add_argument(
        "--strict",
        action="store_true",
        help="refuse to salvage a damaged checkpoint: exit non-zero "
        "instead of truncating to the last valid layer boundary",
    )

    budget = explore.add_argument_group(
        "resource budget (ResourceBudget)",
        "memory ceilings and the arena's disk spill",
    )
    budget.add_argument(
        "--rss-budget",
        type=float,
        default=None,
        metavar="MB",
        help="resident-memory budget in MiB (all exploration processes); "
        "crossing it truncates the universe at the next layer boundary "
        "instead of risking an OOM kill",
    )
    budget.add_argument(
        "--spill-dir",
        metavar="PATH",
        default=None,
        help="directory for the arena's on-disk cold tier (requires "
        "--store arena); sealed layers stream to an mmap-backed spill "
        "file, and the --rss-budget watchdog spills before it truncates",
    )
    explore.set_defaults(handler=cmd_explore)

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="verify or inspect an exploration checkpoint file",
    )
    checkpoint.add_argument(
        "action",
        choices=["verify", "inspect", "compact"],
        help="verify exits non-zero on any integrity failure; inspect "
        "prints the same report but only fails on an unreadable file; "
        "compact folds all segments into one under a bumped generation",
    )
    checkpoint.add_argument("path", metavar="PATH")
    checkpoint.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report (per-segment "
        "status, orphans, persisted recovery/degradation events) as "
        "JSON; exit codes are unchanged",
    )
    checkpoint.set_defaults(handler=cmd_checkpoint)

    check = subparsers.add_parser("check", help="run theorem checkers")
    add_protocol_options(check)
    check.add_argument("--max-sets", type=int, default=6)
    check.set_defaults(handler=cmd_check)

    sim = subparsers.add_parser("simulate", help="one simulator run")
    add_protocol_options(sim)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-steps", type=int, default=100_000)
    sim.add_argument("--columns", type=int, default=100)
    sim.set_defaults(handler=cmd_simulate)

    experiments = subparsers.add_parser(
        "experiments", help="list the experiment index"
    )
    experiments.set_defaults(handler=cmd_experiments)

    report = subparsers.add_parser(
        "report", help="run every checker and print a verification report"
    )
    report.set_defaults(handler=cmd_report)

    bench = subparsers.add_parser(
        "bench",
        help="run the scaling benchmarks and write a BENCH_<date>.json "
        "trajectory file",
    )
    from repro.bench import add_bench_arguments

    add_bench_arguments(bench)
    bench.set_defaults(handler=cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
