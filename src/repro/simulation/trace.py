"""Simulation traces: recorded runs with measurement helpers.

A :class:`SimulationTrace` is the linear computation a simulator produced,
enriched with per-step configurations on demand and the counting helpers
the benchmark harness needs (message counts by tag, detection points,
quiescence).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from functools import cached_property

from repro.core.computation import Computation
from repro.core.configuration import Configuration, iter_prefix_configurations
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId


class SimulationTrace:
    """The outcome of one simulation run."""

    def __init__(self, computation: Computation, steps: int) -> None:
        self._computation = computation
        self._steps = steps

    @property
    def computation(self) -> Computation:
        """The linear computation that was executed."""
        return self._computation

    @property
    def steps(self) -> int:
        """Number of scheduler decisions taken (== events executed)."""
        return self._steps

    @cached_property
    def final_configuration(self) -> Configuration:
        """The ``[D]``-class of the full run.

        Built through the interned ``_from_trusted`` fast path: the
        histories are grouped in one pass over the trace and resolved
        against the intern registry directly, instead of re-validating
        (or re-interning) every intermediate prefix.
        """
        grouped: dict[ProcessId, list[Event]] = {}
        for event in self._computation:
            grouped.setdefault(event.process, []).append(event)
        items = {
            process: tuple(grouped[process]) for process in sorted(grouped)
        }
        return Configuration._intern_from_histories(items)

    def configurations(self) -> Iterator[Configuration]:
        """Configurations after every prefix, shortest first.

        Incremental: O(processes) per step and no intern-registry churn,
        where rebuilding each prefix from scratch would be quadratic in
        the trace length.
        """
        return iter_prefix_configurations(self._computation)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def count_messages(self, tag: str | None = None) -> int:
        """Number of messages *sent*, optionally restricted to one tag."""
        return sum(
            1
            for event in self._computation
            if isinstance(event, SendEvent)
            and (tag is None or event.message.tag == tag)
        )

    def count_internal(self, tag: str | None = None) -> int:
        """Number of internal events, optionally restricted to one tag."""
        return sum(
            1
            for event in self._computation
            if isinstance(event, InternalEvent)
            and (tag is None or event.tag == tag)
        )

    def undelivered(self) -> int:
        """Messages still in flight at the end of the run."""
        return len(self.final_configuration.in_flight_messages)

    def first_index(self, predicate: Callable[[Event], bool]) -> int | None:
        """Index of the first event satisfying ``predicate``, or ``None``."""
        for index, event in enumerate(self._computation):
            if predicate(event):
                return index
        return None

    def first_internal(self, tag: str) -> int | None:
        """Index of the first internal event with the given tag."""
        return self.first_index(
            lambda event: isinstance(event, InternalEvent) and event.tag == tag
        )

    def prefix_where(
        self, predicate: Callable[[Configuration], bool]
    ) -> Computation | None:
        """The shortest prefix whose configuration satisfies ``predicate``."""
        for length, configuration in enumerate(self.configurations()):
            if predicate(configuration):
                return self._computation[:length]
        return None

    def events_by_process(self) -> dict[ProcessId, int]:
        """Event counts per process."""
        counts: dict[ProcessId, int] = {}
        for event in self._computation:
            counts[event.process] = counts.get(event.process, 0) + 1
        return counts

    def summary(self) -> dict[str, int]:
        """A compact run summary (used by examples and benches)."""
        sends = self.count_messages()
        receives = sum(
            1 for event in self._computation if isinstance(event, ReceiveEvent)
        )
        return {
            "events": len(self._computation),
            "sends": sends,
            "receives": receives,
            "internal": len(self._computation) - sends - receives,
            "undelivered": self.undelivered(),
        }
