"""Crash failures (paper, §5(b) substrate).

:class:`CrashableProtocol` wraps any protocol so that each process in
``crashable`` may take a ``crash`` internal event at any point of its
computation; a crashed process takes no further steps and receives no
further messages (messages addressed to it stay in flight forever).

Two facts the paper's §5(b) argument needs are modelled exactly:

* the crash is an *internal* event — failure of a process is local to the
  process, invisible to everyone else;
* a crashed process never sends again.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, Message
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.knowledge.formula import Atom
from repro.universe.protocol import History, Protocol

CRASH_TAG = "crash"


def crash_event(history: History, process: ProcessId) -> InternalEvent:
    """The crash event of ``process`` after ``history``."""
    seq = sum(
        1
        for event in history
        if isinstance(event, InternalEvent) and event.tag == CRASH_TAG
    )
    return InternalEvent(process=process, tag=CRASH_TAG, seq=seq)


def has_crashed(history: History) -> bool:
    """True iff the history contains a crash event."""
    return any(
        isinstance(event, InternalEvent) and event.tag == CRASH_TAG
        for event in history
    )


class CrashableProtocol(Protocol):
    """Wrap ``base`` so the given processes may crash at any time.

    ``max_crashes`` bounds the *total* number of crash events so wrapped
    universes stay finite (each process crashes at most once anyway).
    """

    def __init__(
        self,
        base: Protocol,
        crashable: ProcessSetLike | None = None,
    ) -> None:
        super().__init__(base.processes)
        self.base = base
        self.crashable = (
            as_process_set(crashable)
            if crashable is not None
            else base.processes
        )
        if not self.crashable <= base.processes:
            raise ValueError("crashable processes must belong to the protocol")

    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if has_crashed(history):
            return
        if process in self.crashable:
            yield crash_event(history, process)
        yield from self.base.local_steps(process, history)

    def can_receive(
        self, process: ProcessId, history: History, message: Message
    ) -> bool:
        if has_crashed(history):
            return False
        return self.base.can_receive(process, history, message)


def crashed_atom(process: ProcessId) -> Atom:
    """``process has crashed`` as a knowledge atom (local to the process)."""

    def fn(configuration: Configuration) -> bool:
        return has_crashed(configuration.history(process))

    return Atom(f"{process} crashed", fn)
