"""Scheduling policies for the discrete-event simulator.

A scheduler picks the next event among those enabled in the current
configuration.  Different policies realise different *computations* of the
same protocol — the nondeterminism the paper's isomorphism quantifies
over.  All schedulers are deterministic given their construction
arguments (seeded), so simulation runs are reproducible.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Callable, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event


class Scheduler(abc.ABC):
    """Strategy for resolving scheduling nondeterminism."""

    @abc.abstractmethod
    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        """Pick one of the enabled events (``enabled`` is non-empty)."""

    def reset(self) -> None:
        """Restore initial state (called by ``Simulator.reset``)."""


class RandomScheduler(Scheduler):
    """Uniformly random choice with a fixed seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        return enabled[self._rng.randrange(len(enabled))]

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class FifoScheduler(Scheduler):
    """Always pick the first enabled event (deterministic round-robin by
    the protocol's enumeration order: local steps before receives, process
    name order)."""

    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        return enabled[0]


class EagerReceiveScheduler(Scheduler):
    """Deliver messages as soon as possible; fall back to local steps.

    Minimises in-flight time, producing "fast network" computations.
    """

    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        for event in enabled:
            if event.is_receive:
                return event
        return enabled[0]


class LazyReceiveScheduler(Scheduler):
    """Defer deliveries as long as possible ("slow network").

    Maximises concurrency windows, useful for adversarial schedules in the
    termination-detection lower-bound experiment.
    """

    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        for event in enabled:
            if not event.is_receive:
                return event
        return enabled[0]


class BiasedScheduler(Scheduler):
    """Random scheduler that prefers events accepted by ``predicate`` with
    the given ``bias`` probability (when any candidate matches).

    A cheap way to steer simulations into rare interleavings without
    losing reproducibility.
    """

    def __init__(
        self,
        predicate: Callable[[Event], bool],
        bias: float = 0.9,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must lie in [0, 1]")
        self._predicate = predicate
        self._bias = bias
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(
        self, configuration: Configuration, enabled: Sequence[Event]
    ) -> Event:
        preferred = [event for event in enabled if self._predicate(event)]
        pool: Sequence[Event] = enabled
        if preferred and self._rng.random() < self._bias:
            pool = preferred
        return pool[self._rng.randrange(len(pool))]

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
