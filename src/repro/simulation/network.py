"""Channel-ordering disciplines.

The base model's channels are unordered: any in-flight message may be
received.  Some substrate algorithms (notably the Chandy–Lamport snapshot,
whose markers separate pre- and post-snapshot messages) require FIFO
channels.  :class:`FifoProtocol` restricts enabling so that, per
(sender, receiver) pair, only the *oldest* undelivered message is
receivable — a strict subset of the base computation set, so every
theorem proven over the unordered model still applies.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.universe.protocol import Protocol


def fifo_frontier(configuration: Configuration) -> frozenset[Message]:
    """The in-flight messages deliverable under FIFO ordering.

    For each (sender, receiver) pair, the earliest message — in the
    sender's send order — that has not yet been received.
    """
    received = configuration.received_messages
    frontier: dict[tuple[str, str], Message] = {}
    for process in sorted(configuration.processes):
        for event in configuration.history(process):
            if not isinstance(event, SendEvent):
                continue
            message = event.message
            key = (message.sender, message.receiver)
            if key in frontier:
                continue
            if message not in received:
                frontier[key] = message
    return frozenset(frontier.values())


class FifoProtocol(Protocol):
    """Wrap ``base`` with FIFO channel semantics."""

    def __init__(self, base: Protocol) -> None:
        super().__init__(base.processes)
        self.base = base

    def local_steps(self, process, history):
        return self.base.local_steps(process, history)

    def can_receive(self, process, history, message) -> bool:
        return self.base.can_receive(process, history, message)

    def enabled_events(self, configuration: Configuration) -> list[Event]:
        allowed = fifo_frontier(configuration)
        events = []
        for event in super().enabled_events(configuration):
            if isinstance(event, ReceiveEvent) and event.message not in allowed:
                continue
            events.append(event)
        return events
