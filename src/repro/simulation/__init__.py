"""Discrete-event simulation substrate: run protocols at scale."""

from repro.simulation.failures import (
    CRASH_TAG,
    CrashableProtocol,
    crash_event,
    crashed_atom,
    has_crashed,
)
from repro.simulation.network import FifoProtocol, fifo_frontier
from repro.simulation.scheduler import (
    BiasedScheduler,
    EagerReceiveScheduler,
    FifoScheduler,
    LazyReceiveScheduler,
    RandomScheduler,
    Scheduler,
)
from repro.simulation.simulator import Simulator, simulate
from repro.simulation.trace import SimulationTrace

__all__ = [
    "CRASH_TAG",
    "BiasedScheduler",
    "CrashableProtocol",
    "EagerReceiveScheduler",
    "FifoProtocol",
    "FifoScheduler",
    "LazyReceiveScheduler",
    "RandomScheduler",
    "Scheduler",
    "SimulationTrace",
    "Simulator",
    "crash_event",
    "crashed_atom",
    "fifo_frontier",
    "has_crashed",
    "simulate",
]
