"""A deterministic discrete-event simulator over protocols.

The simulator executes one *computation* of a protocol: starting from the
empty configuration it repeatedly asks the protocol for enabled events and
a :class:`~repro.simulation.scheduler.Scheduler` for the choice, until
quiescence (no enabled events) or a step bound.  It is the scale
counterpart of exhaustive exploration — universes answer "for all
computations", the simulator produces concrete large ones for measurement
(termination-detection overhead counts, knowledge-flow latency, ...).

Runs are reproducible: the same protocol, scheduler and bound yield the
same computation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.computation import Computation
from repro.core.errors import SimulationError
from repro.core.events import Event
from repro.simulation.scheduler import RandomScheduler, Scheduler
from repro.simulation.trace import SimulationTrace
from repro.universe.protocol import Protocol


class Simulator:
    """Step-by-step executor of one computation of ``protocol``."""

    def __init__(
        self,
        protocol: Protocol,
        scheduler: Scheduler | None = None,
        max_steps: int = 100_000,
    ) -> None:
        self._protocol = protocol
        self._scheduler = scheduler if scheduler is not None else RandomScheduler(0)
        self._max_steps = max_steps
        self._configuration = EMPTY_CONFIGURATION
        self._events: list[Event] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def configuration(self) -> Configuration:
        """The configuration reached so far."""
        return self._configuration

    @property
    def executed(self) -> tuple[Event, ...]:
        """Events executed so far, in order."""
        return tuple(self._events)

    def reset(self) -> None:
        """Return to the empty configuration (and reset the scheduler)."""
        self._configuration = EMPTY_CONFIGURATION
        self._events = []
        self._scheduler.reset()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def enabled(self) -> Sequence[Event]:
        """Events currently enabled (read-only: may be a shared memoised
        tuple from the protocol)."""
        return self._protocol.enabled_events(self._configuration)

    def step(self) -> Event | None:
        """Execute one event; ``None`` when quiescent.

        The new configuration is built through the *non-interning*
        extension path: a simulation walks one linear computation, so
        every intermediate configuration is discarded on the next step —
        interning each one would cycle the weak registry once per step
        over a 10^6-step run for zero dedup benefit.  The configurations
        hash and compare exactly like interned ones (pinned by the trace
        regression tests).
        """
        enabled = self.enabled()
        if not enabled:
            return None
        event = self._scheduler.choose(self._configuration, enabled)
        if event not in enabled:
            raise SimulationError(
                f"scheduler chose {event}, which is not enabled"
            )
        self._configuration = self._configuration.extend_unregistered(event)
        self._events.append(event)
        return event

    def run(
        self,
        until: Callable[[Configuration], bool] | None = None,
    ) -> SimulationTrace:
        """Run to quiescence, the step bound, or the ``until`` predicate.

        Raises :class:`SimulationError` if the step bound is hit while
        events remain enabled and no ``until`` was given — silently
        truncating a measurement run would corrupt benchmark results.
        """
        steps = 0
        while steps < self._max_steps:
            if until is not None and until(self._configuration):
                break
            if self.step() is None:
                break
            steps += 1
        else:
            if until is None and self.enabled():
                raise SimulationError(
                    f"run exceeded max_steps={self._max_steps} before quiescence"
                )
        return SimulationTrace(Computation(self._events), len(self._events))

    def iter_events(self) -> Iterator[Event]:
        """Iterate events as they execute (stops at quiescence/bound)."""
        steps = 0
        while steps < self._max_steps:
            event = self.step()
            if event is None:
                return
            yield event
            steps += 1
        if self.enabled():
            raise SimulationError(
                f"iteration exceeded max_steps={self._max_steps} before quiescence"
            )


def simulate(
    protocol: Protocol,
    scheduler: Scheduler | None = None,
    max_steps: int = 100_000,
    until: Callable[[Configuration], bool] | None = None,
) -> SimulationTrace:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(protocol, scheduler=scheduler, max_steps=max_steps)
    return simulator.run(until=until)
