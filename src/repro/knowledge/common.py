"""Common knowledge and its impossibility corollaries (paper, §4.2).

``b is common knowledge`` is the greatest fixpoint of

    ``C  ≡  b ∧ (p knows C)   for every process p``.

The paper's corollary to Lemma 3 sharpens Halpern–Moses: in a distributed
system (more than one process, no simultaneous events), common knowledge
is a *constant* predicate — it can be neither gained nor lost.  The proof
observes that ``C = p knows C`` makes ``C`` local to every single
process, and predicates local to two disjoint sets are constant.

The checkers here verify both the fixpoint characterisation and the
constancy corollary over concrete universes.
"""

from __future__ import annotations

from repro.core.process import ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import And, CommonKnowledge, Formula, Iff, Knows
from repro.universe.explorer import Universe


def common_knowledge(processes: ProcessSetLike, formula: Formula) -> CommonKnowledge:
    """``formula is common knowledge`` among ``processes``."""
    return CommonKnowledge(processes, formula)


def check_fixpoint_characterisation(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """``C ≡ b ∧ (p knows C)`` for every ``p`` — the defining equation."""
    p_set = as_process_set(processes)
    ck = CommonKnowledge(p_set, formula)
    body: Formula = formula
    for process in sorted(p_set):
        body = And(body, Knows({process}, ck))
    return evaluator.is_valid(Iff(ck, body))


def check_constancy_corollary(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """In a system with more than one process, ``b is common knowledge`` is
    constant.  Returns ``True`` vacuously for single-process systems."""
    p_set = as_process_set(processes)
    if len(p_set) < 2:
        return True
    return evaluator.is_constant(CommonKnowledge(p_set, formula))


def check_everyone_knows_hierarchy(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    processes: ProcessSetLike,
    depth: int,
) -> bool:
    """``C`` implies the whole ``everyone knows^k b`` hierarchy up to
    ``depth`` — the intuitive reading the paper gives for the fixpoint."""
    p_set = as_process_set(processes)
    ck_extension = evaluator.extension(CommonKnowledge(p_set, formula))
    layer: Formula = formula
    for _ in range(depth):
        everyone: Formula | None = None
        for process in sorted(p_set):
            clause = Knows({process}, layer)
            everyone = clause if everyone is None else And(everyone, clause)
        assert everyone is not None
        layer = everyone
        if not ck_extension <= evaluator.extension(layer):
            return False
    return True


def check_common_knowledge(
    universe: Universe,
    formula: Formula,
    processes: ProcessSetLike | None = None,
    depth: int = 3,
    evaluator: KnowledgeEvaluator | None = None,
) -> dict[str, bool]:
    """All common-knowledge checks for one predicate; verdicts by name."""
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    p_set = (
        as_process_set(processes) if processes is not None else universe.processes
    )
    return {
        "fixpoint": check_fixpoint_characterisation(evaluator, formula, p_set),
        "constant": check_constancy_corollary(evaluator, formula, p_set),
        "hierarchy": check_everyone_knows_hierarchy(
            evaluator, formula, p_set, depth
        ),
    }
