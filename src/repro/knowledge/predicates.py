"""Base predicates and *local* predicates (paper, §4.2).

A predicate ``b`` is **local to** a process set ``P`` when ``P`` is always
sure of its value: ``∀x: (P sure b) at x``.  Local predicates are the
paper's key to understanding knowledge transfer (Theorems 5 and 6 hinge on
``b`` being local to the complement set).

This module provides:

* ready-made atom builders over configurations (event counts, message
  receipt, token position, …);
* :func:`is_local_to` — the locality check over a universe;
* executable checkers for the eight local-predicate facts of §4.2,
  including Lemma 3 (a predicate local to two disjoint sets is constant).
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.events import ReceiveEvent, SendEvent
from repro.core.process import ProcessSetLike, as_process_set, format_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, Formula, Iff, Knows, Not, Sure
from repro.universe.explorer import Universe


# ----------------------------------------------------------------------
# Atom builders
# ----------------------------------------------------------------------
def atom(name: str, fn) -> Atom:
    """A named base predicate over configurations."""
    return Atom(name, fn)


def event_count_at_least(processes: ProcessSetLike, count: int) -> Atom:
    """True when the given processes have at least ``count`` events."""
    p_set = as_process_set(processes)

    def fn(configuration: Configuration) -> bool:
        return configuration.count_on(p_set) >= count

    return Atom(f"|events on {format_process_set(p_set)}| >= {count}", fn)


def has_sent(process: str, tag: str) -> Atom:
    """True when ``process`` has sent a message tagged ``tag``."""

    def fn(configuration: Configuration) -> bool:
        return any(
            isinstance(event, SendEvent) and event.message.tag == tag
            for event in configuration.history(process)
        )

    return Atom(f"{process} has sent '{tag}'", fn)


def has_received(process: str, tag: str) -> Atom:
    """True when ``process`` has received a message tagged ``tag``."""

    def fn(configuration: Configuration) -> bool:
        return any(
            isinstance(event, ReceiveEvent) and event.message.tag == tag
            for event in configuration.history(process)
        )

    return Atom(f"{process} has received '{tag}'", fn)


def did_internal(process: str, tag: str) -> Atom:
    """True when ``process`` has performed an internal event tagged ``tag``."""

    def fn(configuration: Configuration) -> bool:
        return any(
            event.is_internal and getattr(event, "tag", None) == tag
            for event in configuration.history(process)
        )

    return Atom(f"{process} did '{tag}'", fn)


# ----------------------------------------------------------------------
# Locality
# ----------------------------------------------------------------------
def is_local_to(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """``b is local to P  ≡  ∀x: (P sure b) at x`` over the universe."""
    return evaluator.is_valid(Sure(processes, formula))


def locality_violations(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    processes: ProcessSetLike,
    limit: int = 3,
) -> list[Configuration]:
    """Configurations at which ``P`` is *unsure* of ``formula``."""
    return evaluator.counterexamples(Sure(processes, formula), limit=limit)


# ----------------------------------------------------------------------
# The eight facts about local predicates (§4.2)
# ----------------------------------------------------------------------
def check_local_fact_1(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 1: ``b`` local to ``P`` and ``x [P] y`` imply
    ``b at x = b at y``."""
    if not is_local_to(evaluator, formula, processes):
        return True
    extension = evaluator.extension(formula)
    for iso_class in evaluator.partition(processes):
        values = {member in extension for member in iso_class}
        if len(values) > 1:
            return False
    return True


def check_local_fact_2(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 2: ``b`` local to ``P`` implies ``b ≡ P knows b``."""
    if not is_local_to(evaluator, formula, processes):
        return True
    return evaluator.is_valid(Iff(formula, Knows(processes, formula)))


def check_local_fact_3(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 3: ``b`` local to ``P``  =  ``¬b`` local to ``P``."""
    return is_local_to(evaluator, formula, processes) == is_local_to(
        evaluator, Not(formula), processes
    )


def check_local_fact_4(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    local_set: ProcessSetLike,
    observer_set: ProcessSetLike,
) -> bool:
    """Fact 4: ``b`` local to ``P`` implies
    ``Q knows b  ≡  Q knows P knows b``."""
    if not is_local_to(evaluator, formula, local_set):
        return True
    return evaluator.is_valid(
        Iff(
            Knows(observer_set, formula),
            Knows(observer_set, Knows(local_set, formula)),
        )
    )


def check_local_fact_5(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 5: ``(P knows b)`` is local to ``P`` — for every ``b``."""
    return is_local_to(evaluator, Knows(processes, formula), processes)


def check_local_fact_6(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    first: ProcessSetLike,
    second: ProcessSetLike,
) -> bool:
    """Fact 6 / Lemma 3: ``b`` local to disjoint ``P`` and ``Q`` implies
    ``b`` is constant."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    if p_set & q_set:
        return True
    if not (
        is_local_to(evaluator, formula, p_set)
        and is_local_to(evaluator, formula, q_set)
    ):
        return True
    return evaluator.is_constant(formula)


def check_local_fact_7(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 7: ``b`` constant implies ``b`` local to every ``P``."""
    if not evaluator.is_constant(formula):
        return True
    return is_local_to(evaluator, formula, processes)


def check_local_fact_8(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 8: ``(P sure b)`` is local to ``P``."""
    return is_local_to(evaluator, Sure(processes, formula), processes)


def check_identical_knowledge_corollary(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    first: ProcessSetLike,
    second: ProcessSetLike,
) -> bool:
    """§4.2 corollary: disjoint ``P, Q`` with identical knowledge of ``b``
    (``P knows b ≡ Q knows b`` everywhere) have *constant* knowledge."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    if p_set & q_set:
        return True
    if not evaluator.is_valid(Iff(Knows(p_set, formula), Knows(q_set, formula))):
        return True
    return evaluator.is_constant(Knows(p_set, formula)) and evaluator.is_constant(
        Knows(q_set, formula)
    )


def check_all_local_facts(
    universe: Universe,
    formula: Formula,
    first: ProcessSetLike,
    second: ProcessSetLike,
    evaluator: KnowledgeEvaluator | None = None,
) -> dict[str, bool]:
    """Run all eight facts (plus the identical-knowledge corollary) for one
    predicate and two process sets; returns verdicts keyed by fact name."""
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    return {
        "1-iso-invariance": check_local_fact_1(evaluator, formula, first),
        "2-b-iff-knows-b": check_local_fact_2(evaluator, formula, first),
        "3-negation": check_local_fact_3(evaluator, formula, first),
        "4-nested": check_local_fact_4(evaluator, formula, first, second),
        "5-knows-is-local": check_local_fact_5(evaluator, formula, first),
        "6-disjoint-constant": check_local_fact_6(evaluator, formula, first, second),
        "7-constant-local": check_local_fact_7(evaluator, formula, first),
        "8-sure-is-local": check_local_fact_8(evaluator, formula, first),
        "identical-knowledge": check_identical_knowledge_corollary(
            evaluator, formula, first, second
        ),
    }
