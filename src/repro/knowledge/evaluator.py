"""Model checking knowledge formulas over a computation universe.

``(P knows b) at x`` universally quantifies over the ``[P]``-class of
``x`` within the set of all system computations.  With a complete finite
universe that quantifier is exact, and every formula has a well-defined
*extension*: the set of configurations at which it holds.

:class:`KnowledgeEvaluator` computes extensions bottom-up and memoises
them per formula, so repeated queries (and nested ``knows``) cost one
pass each.  Internally an extension is an **int bitmask** over the
universe's dense configuration ids (see PERFORMANCE.md): boolean
connectives are single bitwise operations, ``knows`` tests class
containment with ``class_mask & body == class_mask``, and the
common-knowledge fixpoint iterates over class masks instead of
rebuilding membership lists.  The public API still speaks frozensets of
:class:`Configuration`; those views are materialised lazily per formula.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.errors import FormulaError
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.knowledge.formula import (
    And,
    Atom,
    CommonKnowledge,
    Constant,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Sure,
)
from repro.universe.explorer import Universe


class KnowledgeEvaluator:
    """Evaluate knowledge formulas over one universe.

    The evaluator refuses incomplete universes by default: with a
    truncated computation space, ``knows`` could report knowledge the
    process does not have (missing indistinguishable computations).
    Pass ``allow_incomplete=True`` to accept the approximation knowingly.
    """

    def __init__(self, universe: Universe, allow_incomplete: bool = False) -> None:
        if not universe.is_complete and not allow_incomplete:
            raise FormulaError(
                "refusing to evaluate knowledge over an incomplete universe; "
                "pass allow_incomplete=True to accept the approximation"
            )
        self._universe = universe
        self._masks: dict[Formula, int] = {}
        self._views: dict[Formula, frozenset[Configuration]] = {}
        self._partitions: dict[
            frozenset[ProcessId], list[list[Configuration]]
        ] = {}

    @property
    def universe(self) -> Universe:
        return self._universe

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def holds(self, formula: Formula, configuration: Configuration) -> bool:
        """``formula at configuration``."""
        config_id = self._universe.config_id(configuration)
        return bool(self.extension_mask(formula) >> config_id & 1)

    def extension(self, formula: Formula) -> frozenset[Configuration]:
        """All configurations of the universe at which ``formula`` holds."""
        view = self._views.get(formula)
        if view is None:
            view = frozenset(
                self._universe.configurations_in_mask(self.extension_mask(formula))
            )
            self._views[formula] = view
        return view

    def extension_mask(self, formula: Formula) -> int:
        """The extension as a bitmask over dense configuration ids."""
        mask = self._masks.get(formula)
        if mask is None:
            mask = self._compute_mask(formula)
            self._masks[formula] = mask
        return mask

    def is_valid(self, formula: Formula) -> bool:
        """True iff ``formula`` holds at every computation of the universe."""
        return self.extension_mask(formula) == self._universe.full_mask

    def is_constant(self, formula: Formula) -> bool:
        """The paper's *constant* predicates: same value at every
        computation."""
        mask = self.extension_mask(formula)
        return mask == 0 or mask == self._universe.full_mask

    def counterexamples(
        self, formula: Formula, limit: int = 3
    ) -> list[Configuration]:
        """Up to ``limit`` configurations at which ``formula`` fails."""
        failing = self._universe.full_mask & ~self.extension_mask(formula)
        found = []
        for configuration in self._universe.configurations_in_mask(failing):
            found.append(configuration)
            if len(found) >= limit:
                break
        return found

    # ------------------------------------------------------------------
    # Partition machinery
    # ------------------------------------------------------------------
    def partition(
        self, processes: ProcessSetLike
    ) -> list[list[Configuration]]:
        """The ``[P]``-classes of the universe."""
        p_set = as_process_set(processes)
        cached = self._partitions.get(p_set)
        if cached is None:
            cached = [
                list(self._universe.configurations_in_mask(mask))
                for mask in self._universe.class_masks(p_set)
            ]
            self._partitions[p_set] = cached
        return cached

    # ------------------------------------------------------------------
    # Extension computation
    # ------------------------------------------------------------------
    def _compute_mask(self, formula: Formula) -> int:
        everything = self._universe.full_mask
        if isinstance(formula, Constant):
            return everything if formula.value else 0
        if isinstance(formula, Atom):
            fn = formula.fn
            mask = 0
            for config_id, configuration in enumerate(self._universe):
                if fn(configuration):
                    mask |= 1 << config_id
            return mask
        if isinstance(formula, Not):
            return everything & ~self.extension_mask(formula.operand)
        if isinstance(formula, And):
            return self.extension_mask(formula.left) & self.extension_mask(
                formula.right
            )
        if isinstance(formula, Or):
            return self.extension_mask(formula.left) | self.extension_mask(
                formula.right
            )
        if isinstance(formula, Implies):
            return (
                everything & ~self.extension_mask(formula.left)
            ) | self.extension_mask(formula.right)
        if isinstance(formula, Iff):
            left = self.extension_mask(formula.left)
            right = self.extension_mask(formula.right)
            return everything & ~(left ^ right)
        if isinstance(formula, Knows):
            return self._knows_mask(formula.processes, formula.operand)
        if isinstance(formula, Sure):
            return self._knows_mask(
                formula.processes, formula.operand
            ) | self._knows_mask(formula.processes, Not(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._common_knowledge_mask(formula.processes, formula.operand)
        raise FormulaError(f"unknown formula type: {formula!r}")

    def _knows_mask(
        self, processes: frozenset[ProcessId], operand: Formula
    ) -> int:
        body = self.extension_mask(operand)
        return self._universe.partition_table(processes).contained_classes_mask(
            body
        )

    def _common_knowledge_mask(
        self, processes: Iterable[ProcessId], operand: Formula
    ) -> int:
        """Greatest fixpoint: start from the extension of ``operand`` and
        delete configurations whose ``[p]``-class leaks out, until stable."""
        current = self.extension_mask(operand)
        per_process = [
            self._universe.partition_table({process})
            for process in sorted(as_process_set(processes))
        ]
        changed = True
        while changed:
            changed = False
            for table in per_process:
                kept = table.contained_classes_mask(current)
                if kept != current:
                    current = kept
                    changed = True
        return current
