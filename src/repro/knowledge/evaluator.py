"""Model checking knowledge formulas over a computation universe.

``(P knows b) at x`` universally quantifies over the ``[P]``-class of
``x`` within the set of all system computations.  With a complete finite
universe that quantifier is exact, and every formula has a well-defined
*extension*: the set of configurations at which it holds.

:class:`KnowledgeEvaluator` computes extensions bottom-up and memoises
them per formula, so repeated queries (and nested ``knows``) cost one
pass each.  ``Knows`` is evaluated per isomorphism class: a class
satisfies ``P knows b`` iff the class is contained in the extension of
``b`` — this is where the projection index of the universe pays off.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.errors import FormulaError
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.knowledge.formula import (
    And,
    Atom,
    CommonKnowledge,
    Constant,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Sure,
)
from repro.universe.explorer import Universe


class KnowledgeEvaluator:
    """Evaluate knowledge formulas over one universe.

    The evaluator refuses incomplete universes by default: with a
    truncated computation space, ``knows`` could report knowledge the
    process does not have (missing indistinguishable computations).
    Pass ``allow_incomplete=True`` to accept the approximation knowingly.
    """

    def __init__(self, universe: Universe, allow_incomplete: bool = False) -> None:
        if not universe.is_complete and not allow_incomplete:
            raise FormulaError(
                "refusing to evaluate knowledge over an incomplete universe; "
                "pass allow_incomplete=True to accept the approximation"
            )
        self._universe = universe
        self._extensions: dict[Formula, frozenset[Configuration]] = {}
        self._partitions: dict[
            frozenset[ProcessId], list[list[Configuration]]
        ] = {}

    @property
    def universe(self) -> Universe:
        return self._universe

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def holds(self, formula: Formula, configuration: Configuration) -> bool:
        """``formula at configuration``."""
        self._universe.require(configuration)
        return configuration in self.extension(formula)

    def extension(self, formula: Formula) -> frozenset[Configuration]:
        """All configurations of the universe at which ``formula`` holds."""
        cached = self._extensions.get(formula)
        if cached is None:
            cached = self._compute_extension(formula)
            self._extensions[formula] = cached
        return cached

    def is_valid(self, formula: Formula) -> bool:
        """True iff ``formula`` holds at every computation of the universe."""
        return len(self.extension(formula)) == len(self._universe)

    def is_constant(self, formula: Formula) -> bool:
        """The paper's *constant* predicates: same value at every
        computation."""
        size = len(self.extension(formula))
        return size == 0 or size == len(self._universe)

    def counterexamples(
        self, formula: Formula, limit: int = 3
    ) -> list[Configuration]:
        """Up to ``limit`` configurations at which ``formula`` fails."""
        extension = self.extension(formula)
        found = []
        for configuration in self._universe:
            if configuration not in extension:
                found.append(configuration)
                if len(found) >= limit:
                    break
        return found

    # ------------------------------------------------------------------
    # Partition machinery
    # ------------------------------------------------------------------
    def partition(
        self, processes: ProcessSetLike
    ) -> list[list[Configuration]]:
        """The ``[P]``-classes of the universe."""
        p_set = as_process_set(processes)
        cached = self._partitions.get(p_set)
        if cached is None:
            buckets: dict[tuple, list[Configuration]] = {}
            for configuration in self._universe:
                buckets.setdefault(
                    configuration.projection(p_set), []
                ).append(configuration)
            cached = list(buckets.values())
            self._partitions[p_set] = cached
        return cached

    # ------------------------------------------------------------------
    # Extension computation
    # ------------------------------------------------------------------
    def _compute_extension(self, formula: Formula) -> frozenset[Configuration]:
        everything = frozenset(self._universe)
        if isinstance(formula, Constant):
            return everything if formula.value else frozenset()
        if isinstance(formula, Atom):
            return frozenset(
                configuration
                for configuration in self._universe
                if formula.fn(configuration)
            )
        if isinstance(formula, Not):
            return everything - self.extension(formula.operand)
        if isinstance(formula, And):
            return self.extension(formula.left) & self.extension(formula.right)
        if isinstance(formula, Or):
            return self.extension(formula.left) | self.extension(formula.right)
        if isinstance(formula, Implies):
            return (everything - self.extension(formula.left)) | self.extension(
                formula.right
            )
        if isinstance(formula, Iff):
            left = self.extension(formula.left)
            right = self.extension(formula.right)
            return (left & right) | (everything - left - right)
        if isinstance(formula, Knows):
            return self._knows_extension(formula.processes, formula.operand)
        if isinstance(formula, Sure):
            return self._knows_extension(
                formula.processes, formula.operand
            ) | self._knows_extension(formula.processes, Not(formula.operand))
        if isinstance(formula, CommonKnowledge):
            return self._common_knowledge_extension(
                formula.processes, formula.operand
            )
        raise FormulaError(f"unknown formula type: {formula!r}")

    def _knows_extension(
        self, processes: frozenset[ProcessId], operand: Formula
    ) -> frozenset[Configuration]:
        body = self.extension(operand)
        satisfied: set[Configuration] = set()
        for iso_class in self.partition(processes):
            if all(member in body for member in iso_class):
                satisfied.update(iso_class)
        return frozenset(satisfied)

    def _common_knowledge_extension(
        self, processes: Iterable[ProcessId], operand: Formula
    ) -> frozenset[Configuration]:
        """Greatest fixpoint: start from the extension of ``operand`` and
        delete configurations whose ``[p]``-class leaks out, until stable."""
        current = set(self.extension(operand))
        process_list = sorted(as_process_set(processes))
        changed = True
        while changed:
            changed = False
            for process in process_list:
                for iso_class in self.partition({process}):
                    members_in = [member for member in iso_class if member in current]
                    if members_in and len(members_in) != len(iso_class):
                        for member in members_in:
                            current.discard(member)
                        changed = True
        return frozenset(current)
