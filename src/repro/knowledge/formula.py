"""Knowledge formulas (paper, section 4).

Predicates on system computations are total boolean functions of the
configuration (the ``[D]``-class), which bakes in the paper's standing
assumption that ``x [D] y`` implies ``b at x = b at y``.

The AST mirrors the paper's predicate language:

* :class:`Atom` — a base predicate given by a Python function;
* boolean connectives :class:`Not`, :class:`And`, :class:`Or`,
  :class:`Implies`, :class:`Iff`;
* :class:`Knows` — ``P knows b``, defined by
  ``(P knows b) at x  ≡  ∀y: x [P] y: b at y``;
* :class:`Sure` — ``P sure b  ≡  (P knows b) or (P knows ¬b)``;
* :class:`CommonKnowledge` — the greatest-fixpoint operator of §4.2.

Formulas are immutable and hashable; evaluation is performed by
:class:`repro.knowledge.evaluator.KnowledgeEvaluator`, which memoises the
extension (set of satisfying configurations) of every subformula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.configuration import Configuration
from repro.core.errors import FormulaError
from repro.core.process import ProcessSetLike, as_process_set, format_process_set

PredicateFn = Callable[[Configuration], bool]
"""A base predicate: any boolean function of the configuration."""


class Formula:
    """Base class of all knowledge formulas.

    Overloads ``&``, ``|``, ``~`` and ``>>`` (implies) so formulas read
    close to the paper::

        Knows("p", b) >> b          # knowledge axiom: P knows b implies b
    """

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, _coerce(other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, _coerce(other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, _coerce(other))

    def subformulas(self):
        """Direct subformulas (for traversal)."""
        return ()


def _coerce(value) -> "Formula":
    if isinstance(value, Formula):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise FormulaError(f"cannot use {value!r} as a formula")


@dataclass(frozen=True)
class Constant(Formula):
    """The constant predicate ``true`` or ``false``."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Constant(True)
FALSE = Constant(False)


@dataclass(frozen=True)
class Atom(Formula):
    """A named base predicate backed by a Python function.

    Two atoms are equal iff they have the same name *and* the same
    function object; give distinct predicates distinct names.
    """

    name: str
    fn: PredicateFn = field(compare=True)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """``¬ operand``."""

    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"

    def subformulas(self):
        return (self.operand,)


@dataclass(frozen=True)
class And(Formula):
    """``left and right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"

    def subformulas(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Or(Formula):
    """``left or right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"

    def subformulas(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Implies(Formula):
    """``left implies right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ⇒ {self.right})"

    def subformulas(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Iff(Formula):
    """``left iff right``."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ⇔ {self.right})"

    def subformulas(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Knows(Formula):
    """``P knows b``: true at ``x`` iff ``b`` holds at every ``y`` with
    ``x [P] y``."""

    processes: frozenset[str]
    operand: Formula

    def __init__(self, processes: ProcessSetLike, operand: Formula) -> None:
        object.__setattr__(self, "processes", as_process_set(processes))
        object.__setattr__(self, "operand", _coerce(operand))

    def __str__(self) -> str:
        return f"K{format_process_set(self.processes)}({self.operand})"

    def subformulas(self):
        return (self.operand,)


@dataclass(frozen=True)
class Sure(Formula):
    """``P sure b  ≡  (P knows b) or (P knows ¬b)`` (paper, §4.2)."""

    processes: frozenset[str]
    operand: Formula

    def __init__(self, processes: ProcessSetLike, operand: Formula) -> None:
        object.__setattr__(self, "processes", as_process_set(processes))
        object.__setattr__(self, "operand", _coerce(operand))

    def expand(self) -> Formula:
        """The defining disjunction."""
        return Or(
            Knows(self.processes, self.operand),
            Knows(self.processes, Not(self.operand)),
        )

    def __str__(self) -> str:
        return f"Sure{format_process_set(self.processes)}({self.operand})"

    def subformulas(self):
        return (self.operand,)


@dataclass(frozen=True)
class CommonKnowledge(Formula):
    """``b is common knowledge`` among ``processes`` (paper, §4.2).

    Defined as the greatest fixpoint of
    ``C  ≡  b  ∧  (p knows C)  for all p in processes``.
    """

    processes: frozenset[str]
    operand: Formula

    def __init__(self, processes: ProcessSetLike, operand: Formula) -> None:
        object.__setattr__(self, "processes", as_process_set(processes))
        object.__setattr__(self, "operand", _coerce(operand))

    def __str__(self) -> str:
        return f"C{format_process_set(self.processes)}({self.operand})"

    def subformulas(self):
        return (self.operand,)


def knows(*processes_then_formula) -> Knows:
    """Nested knowledge builder: ``knows(P1, P2, …, Pn, b)`` is
    ``P1 knows P2 knows … Pn knows b``.

    Each ``Pi`` may be a process name or an iterable of names.
    """
    *sets, formula = processes_then_formula
    if not sets:
        raise FormulaError("knows() needs at least one process set")
    result = _coerce(formula)
    for entry in reversed(sets):
        result = Knows(entry, result)
    return result


def unsure(processes: ProcessSetLike, operand: Formula) -> Formula:
    """``P unsure b  ≡  ¬(P sure b)``."""
    return Not(Sure(processes, operand))
