"""Belief — the §6 generalisation the paper's results do *not* survive.

The paper closes by noting that one "can define belief in terms of
isomorphism", and that most of its results do **not** carry over to that
case.  This module makes the claim executable.

Belief is knowledge relative to a *plausibility set*: a subset of the
universe the agent considers possible (e.g. "runs without crashes",
"runs with fair scheduling").  Formally

    ``(P believes b) at x  ≡  ∀y: x [P] y and y plausible: b at y``

with the convention that an agent whose entire isomorphism class is
implausible believes everything (the standard KD45 degenerate case —
:meth:`BeliefEvaluator.is_consistent_at` detects it).

Executable consequences, verified by the tests:

* belief satisfies the introspection axioms (its classes are unions of
  ``[P]``-classes restricted to plausibility) and distribution over
  conjunction;
* **veridicality fails**: a process can believe a falsehood — the async
  failure monitor with "no crash" plausibility believes the worker is
  alive in every crashed run (:func:`false_belief_census` counts such
  configurations);
* knowledge implies belief whenever the current computation is plausible
  for the agent, never conversely.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Formula, Knows
from repro.universe.explorer import Universe

PlausibilityFn = Callable[[Configuration], bool]


class BeliefEvaluator:
    """Evaluate belief over a universe with a plausibility set."""

    def __init__(
        self,
        universe: Universe,
        plausible: Iterable[Configuration] | PlausibilityFn,
        allow_incomplete: bool = False,
    ) -> None:
        self._universe = universe
        self._base = KnowledgeEvaluator(universe, allow_incomplete=allow_incomplete)
        if callable(plausible):
            self._plausible = frozenset(
                configuration
                for configuration in universe
                if plausible(configuration)
            )
        else:
            self._plausible = frozenset(plausible)
            for configuration in self._plausible:
                universe.require(configuration)

    @property
    def universe(self) -> Universe:
        return self._universe

    @property
    def plausible(self) -> frozenset[Configuration]:
        return self._plausible

    # ------------------------------------------------------------------
    # Belief
    # ------------------------------------------------------------------
    def believes_extension(
        self, processes: ProcessSetLike, formula: Formula
    ) -> frozenset[Configuration]:
        """All configurations at which ``P believes formula``."""
        body = self._base.extension(formula)
        p_set = as_process_set(processes)
        satisfied: set[Configuration] = set()
        for iso_class in self._base.partition(p_set):
            plausible_members = [
                member for member in iso_class if member in self._plausible
            ]
            if all(member in body for member in plausible_members):
                satisfied.update(iso_class)
        return frozenset(satisfied)

    def believes(
        self,
        processes: ProcessSetLike,
        formula: Formula,
        configuration: Configuration,
    ) -> bool:
        """``(P believes formula) at configuration``."""
        self._universe.require(configuration)
        return configuration in self.believes_extension(processes, formula)

    def is_consistent_at(
        self, processes: ProcessSetLike, configuration: Configuration
    ) -> bool:
        """Does the agent's plausibility class at this configuration
        contain anything?  (If not, it vacuously believes everything.)"""
        p_set = as_process_set(processes)
        for member in self._universe.iso_class(configuration, p_set):
            if member in self._plausible:
                return True
        return False

    # ------------------------------------------------------------------
    # Relationship to knowledge
    # ------------------------------------------------------------------
    def knowledge_implies_belief(
        self, processes: ProcessSetLike, formula: Formula
    ) -> bool:
        """``P knows b ⇒ P believes b`` — holds for every plausibility
        set (the belief quantifier ranges over a subset)."""
        p_set = as_process_set(processes)
        knows = self._base.extension(Knows(p_set, formula))
        believes = self.believes_extension(p_set, formula)
        return knows <= believes

    def false_beliefs(
        self, processes: ProcessSetLike, formula: Formula
    ) -> frozenset[Configuration]:
        """Configurations where ``P believes formula`` but it is false —
        the failure of veridicality (empty for knowledge, by fact 4)."""
        body = self._base.extension(formula)
        believes = self.believes_extension(processes, formula)
        return believes - body


def false_belief_census(
    universe: Universe,
    plausible: PlausibilityFn,
    processes: ProcessSetLike,
    formula: Formula,
) -> dict[str, int]:
    """Counts quantifying the §6 caveat on one universe.

    ``false_beliefs`` > 0 demonstrates belief is not veridical;
    ``knowledge_implies_belief`` is asserted as a sanity check.
    """
    evaluator = BeliefEvaluator(universe, plausible)
    believes = evaluator.believes_extension(processes, formula)
    false = evaluator.false_beliefs(processes, formula)
    assert evaluator.knowledge_implies_belief(processes, formula)
    return {
        "universe": len(universe),
        "plausible": len(evaluator.plausible),
        "believes": len(believes),
        "false_beliefs": len(false),
    }
