"""The twelve knowledge facts of §4.1, as executable checks.

Each ``check_fact_N`` verifies one numbered fact exhaustively over a
universe, for given predicates ``b, b'`` and process sets ``P, Q``.  All
facts are universally quantified over computations, so the checks compare
extensions.  Fact 11 — ``P knows ¬P knows b  ≡  ¬P knows b`` — is the
paper's Lemma 2, "whose validity in other domains has been questioned on
philosophical grounds"; here it is a theorem of the isomorphism semantics
and the checker demonstrates it on every instance.
"""

from __future__ import annotations

from repro.core.process import ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import (
    And,
    Constant,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
)
from repro.universe.explorer import Universe


def check_fact_1(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 1: ``P knows b at x  ≡  ∀y: x[P]y: P knows b at y``.

    (Knowledge is a property of the ``[P]``-class.)
    """
    extension = evaluator.extension(Knows(processes, formula))
    for iso_class in evaluator.partition(processes):
        values = {member in extension for member in iso_class}
        if len(values) > 1:
            return False
    return True


def check_fact_2(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 2: ``x [P] y`` implies ``P knows b at x ≡ P knows b at y``.

    Same content as fact 1, checked via pairwise class membership.
    """
    return check_fact_1(evaluator, formula, processes)


def check_fact_3(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    smaller: ProcessSetLike,
    larger_extra: ProcessSetLike,
) -> bool:
    """Fact 3: ``(P knows b)`` implies ``(P ∪ Q) knows b``."""
    p_set = as_process_set(smaller)
    union = p_set | as_process_set(larger_extra)
    return evaluator.is_valid(
        Implies(Knows(p_set, formula), Knows(union, formula))
    )


def check_fact_4(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 4 (veridicality): ``(P knows b)`` implies ``b``."""
    return evaluator.is_valid(Implies(Knows(processes, formula), formula))


def check_fact_5(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 5 (totality): ``(P knows b) or ¬(P knows b)``."""
    knows_b = Knows(processes, formula)
    return evaluator.is_valid(Or(knows_b, Not(knows_b)))


def check_fact_6(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    other: Formula,
    processes: ProcessSetLike,
) -> bool:
    """Fact 6: ``(P knows b) and (P knows b')  ≡  P knows (b and b')``."""
    return evaluator.is_valid(
        Iff(
            And(Knows(processes, formula), Knows(processes, other)),
            Knows(processes, And(formula, other)),
        )
    )


def check_fact_7(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    other: Formula,
    processes: ProcessSetLike,
) -> bool:
    """Fact 7: ``(P knows b) or (P knows b')`` implies ``P knows (b or b')``."""
    return evaluator.is_valid(
        Implies(
            Or(Knows(processes, formula), Knows(processes, other)),
            Knows(processes, Or(formula, other)),
        )
    )


def check_fact_8(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 8 (consistency): ``(P knows ¬b)`` implies ``¬(P knows b)``."""
    return evaluator.is_valid(
        Implies(Knows(processes, Not(formula)), Not(Knows(processes, formula)))
    )


def check_fact_9(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    other: Formula,
    processes: ProcessSetLike,
) -> bool:
    """Fact 9 (closure under valid implication): ``(P knows b) and
    (b implies b')`` — the implication holding at all computations —
    implies ``(P knows b')``."""
    if not evaluator.is_valid(Implies(formula, other)):
        return True
    return evaluator.is_valid(
        Implies(Knows(processes, formula), Knows(processes, other))
    )


def check_fact_10(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 10 (positive introspection): ``P knows P knows b ≡ P knows b``."""
    knows_b = Knows(processes, formula)
    return evaluator.is_valid(Iff(Knows(processes, knows_b), knows_b))


def check_fact_11(
    evaluator: KnowledgeEvaluator, formula: Formula, processes: ProcessSetLike
) -> bool:
    """Fact 11 / Lemma 2 (negative introspection):
    ``P knows ¬P knows b  ≡  ¬P knows b``."""
    knows_b = Knows(processes, formula)
    return evaluator.is_valid(
        Iff(Knows(processes, Not(knows_b)), Not(knows_b))
    )


def check_fact_12(
    evaluator: KnowledgeEvaluator, value: bool, processes: ProcessSetLike
) -> bool:
    """Fact 12: ``P knows c`` for any constant ``c`` that is true.

    (For a false constant, ``P knows c`` is everywhere false by fact 4.)
    """
    constant = Constant(value)
    if value:
        return evaluator.is_valid(Knows(processes, constant))
    return len(evaluator.extension(Knows(processes, constant))) == 0


def check_all_facts(
    universe: Universe,
    formula: Formula,
    other: Formula,
    first: ProcessSetLike,
    second: ProcessSetLike,
    evaluator: KnowledgeEvaluator | None = None,
) -> dict[str, bool]:
    """Run all twelve facts for a pair of predicates and process sets."""
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    return {
        "1-class-property": check_fact_1(evaluator, formula, first),
        "2-iso-stable": check_fact_2(evaluator, formula, first),
        "3-monotone-in-P": check_fact_3(evaluator, formula, first, second),
        "4-veridical": check_fact_4(evaluator, formula, first),
        "5-total": check_fact_5(evaluator, formula, first),
        "6-conjunction": check_fact_6(evaluator, formula, other, first),
        "7-disjunction": check_fact_7(evaluator, formula, other, first),
        "8-consistent": check_fact_8(evaluator, formula, first),
        "9-consequence": check_fact_9(evaluator, formula, other, first),
        "10-positive-introspection": check_fact_10(evaluator, formula, first),
        "11-negative-introspection": check_fact_11(evaluator, formula, first),
        "12-constants": check_fact_12(evaluator, True, first)
        and check_fact_12(evaluator, False, first),
    }
