"""The everyone-knows hierarchy ``E^k`` and knowledge depth.

Common knowledge is the limit of the hierarchy

    ``E^0 b = b``,  ``E^(k+1) b = ∧_p (p knows E^k b)``.

The paper proves the limit is constant in asynchronous systems; this
module measures *how* the hierarchy dies: the extension of ``E^k b``
shrinks as ``k`` grows and — for contingent ``b`` — reaches the
fixed point ``∅`` (or the constant set) after finitely many steps on a
finite universe.  The number of strictly-shrinking steps is the
*knowledge depth* of ``b`` in the universe: how many nested levels of
"everybody knows" are ever simultaneously achievable.

These measurements quantify the gap between ``E^k`` and ``C`` that the
common-knowledge corollary (E8) establishes qualitatively.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import And, CommonKnowledge, Formula, Knows


def everyone_knows(processes: ProcessSetLike, formula: Formula) -> Formula:
    """``E b``: every process of the set knows ``formula``."""
    p_set = as_process_set(processes)
    result: Formula | None = None
    for process in sorted(p_set):
        clause = Knows({process}, formula)
        result = clause if result is None else And(result, clause)
    if result is None:
        raise ValueError("everyone_knows needs at least one process")
    return result


def hierarchy_extensions(
    evaluator: KnowledgeEvaluator,
    processes: ProcessSetLike,
    formula: Formula,
    max_depth: int = 10,
) -> list[frozenset[Configuration]]:
    """Extensions of ``E^0 b, E^1 b, …`` until a fixed point or the bound.

    The returned list always ends at the first repeated extension (the
    fixed point), or has ``max_depth + 1`` entries if no fixed point was
    reached within the bound.
    """
    p_set = as_process_set(processes)
    layers = [evaluator.extension(formula)]
    current = formula
    for _ in range(max_depth):
        current = everyone_knows(p_set, current)
        extension = evaluator.extension(current)
        layers.append(extension)
        if extension == layers[-2]:
            break
    return layers


def knowledge_depth(
    evaluator: KnowledgeEvaluator,
    processes: ProcessSetLike,
    formula: Formula,
    max_depth: int = 10,
) -> int:
    """Number of strictly-shrinking hierarchy steps before the fixed
    point (``-1`` when the bound was hit first)."""
    layers = hierarchy_extensions(evaluator, processes, formula, max_depth)
    if len(layers) >= 2 and layers[-1] == layers[-2]:
        shrinking = 0
        for previous, current in zip(layers, layers[1:]):
            if current < previous:
                shrinking += 1
        return shrinking
    return -1


def hierarchy_profile(
    evaluator: KnowledgeEvaluator,
    processes: ProcessSetLike,
    formula: Formula,
    max_depth: int = 10,
) -> list[int]:
    """``|E^k b|`` for k = 0, 1, … — the shrinking profile."""
    return [
        len(layer)
        for layer in hierarchy_extensions(evaluator, processes, formula, max_depth)
    ]


def check_hierarchy_converges_to_common_knowledge(
    evaluator: KnowledgeEvaluator,
    processes: ProcessSetLike,
    formula: Formula,
    max_depth: int = 10,
) -> bool:
    """On a finite universe the hierarchy's fixed point *is* the greatest
    fixpoint, i.e. the extension of ``CommonKnowledge``.

    (On infinite models the limit can overshoot the gfp; finiteness makes
    them coincide, which this check confirms instance by instance.)
    """
    p_set = as_process_set(processes)
    layers = hierarchy_extensions(evaluator, processes, formula, max_depth)
    if len(layers) < 2 or layers[-1] != layers[-2]:
        return False
    fixed_point = layers[-1]
    ck = evaluator.extension(CommonKnowledge(p_set, formula))
    return fixed_point == ck


def depth_table(
    evaluator: KnowledgeEvaluator,
    processes: ProcessSetLike,
    formulas: Sequence[tuple[str, Formula]],
    max_depth: int = 10,
) -> list[tuple[str, list[int], int]]:
    """``(name, |E^k| profile, depth)`` rows for a family of predicates."""
    rows = []
    for name, formula in formulas:
        profile = hierarchy_profile(evaluator, processes, formula, max_depth)
        depth = knowledge_depth(evaluator, processes, formula, max_depth)
        rows.append((name, profile, depth))
    return rows
