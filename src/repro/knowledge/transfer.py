"""How knowledge is transferred (paper, §4.3): Theorems 4, 5, 6.

* **Theorem 4**: ``(P1 knows … Pn knows b) at x`` and ``x [P1 … Pn] y``
  imply ``(Pn knows b) at y`` — knowledge propagates along composed
  isomorphisms.
* **Lemma 4**: for ``b`` local to ``P̄``, a receive on ``P`` cannot lose
  and a send on ``P`` cannot gain ``P``'s knowledge of ``b``; internal
  events change nothing.
* **Theorem 5 (gain)**: ``x <= y``, ``¬(Pn knows b) at x`` and
  ``(P1 knows … Pn knows b) at y`` imply a process chain
  ``<Pn Pn-1 … P1>`` in ``(x, y)`` — knowledge is *gained* sequentially,
  flowing from ``Pn`` back to ``P1``; if ``b`` is local to ``P̄n``, then
  ``Pn`` has a receive event in ``(x, y)``.
* **Theorem 6 (loss)**: ``x <= y``, ``(P1 knows … Pn knows b) at x`` and
  ``¬(Pn knows b) at y`` imply a chain ``<P1 P2 … Pn>`` in ``(x, y)``;
  if ``b`` is local to ``P̄n``, then ``Pn`` has a send event in ``(x, y)``.

Each theorem gets an exhaustive checker returning the number of
*non-vacuous* instances verified (instances whose antecedent held), so
tests can assert the theorems were actually exercised.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.causality.chains import chain_in_suffix
from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.extension import extension_event
from repro.isomorphism.relation import composed_class
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Formula, Knows, Not, Sure, knows
from repro.knowledge.predicates import is_local_to


@dataclass(frozen=True)
class TransferReport:
    """Result of an exhaustive theorem check.

    ``checked`` counts non-vacuous instances; ``holds`` is False only if a
    counterexample was found (recorded in ``counterexample``).
    """

    checked: int
    holds: bool
    counterexample: tuple[Configuration, Configuration] | None = None


def nested_knowledge(
    sets: Sequence[ProcessSetLike], formula: Formula, sure: bool = False
) -> Formula:
    """``P1 knows P2 knows … Pn knows b`` (or with ``sure`` in place of
    ``knows``)."""
    result = formula
    for entry in reversed([as_process_set(s) for s in sets]):
        result = Sure(entry, result) if sure else Knows(entry, result)
    return result


def check_theorem_4(
    evaluator: KnowledgeEvaluator,
    sets: Sequence[ProcessSetLike],
    formula: Formula,
    sure: bool = False,
) -> TransferReport:
    """Theorem 4 (and its ``sure`` variant, per the paper's corollary)."""
    universe = evaluator.universe
    normalised = [as_process_set(entry) for entry in sets]
    nested = nested_knowledge(normalised, formula, sure=sure)
    target = (
        Sure(normalised[-1], formula) if sure else Knows(normalised[-1], formula)
    )
    nested_extension = evaluator.extension(nested)
    target_extension = evaluator.extension(target)
    checked = 0
    for x in nested_extension:
        for y in composed_class(universe, x, normalised):
            checked += 1
            if y not in target_extension:
                return TransferReport(checked, False, (x, y))
    return TransferReport(checked, True)


def check_theorem_4_negative_corollary(
    evaluator: KnowledgeEvaluator,
    sets: Sequence[ProcessSetLike],
    formula: Formula,
) -> TransferReport:
    """Corollary: ``(P1 knows … Pn-1 knows ¬Pn knows b) at x`` and
    ``x [P1 … Pn] y`` imply ``¬(Pn knows b) at y``.

    For ``n = 1`` the antecedent is just ``¬(Pn knows b) at x``.
    """
    universe = evaluator.universe
    normalised = [as_process_set(entry) for entry in sets]
    not_knows = Not(Knows(normalised[-1], formula))
    if len(normalised) == 1:
        antecedent: Formula = not_knows
    else:
        antecedent = nested_knowledge(normalised[:-1], not_knows)
    antecedent_extension = evaluator.extension(antecedent)
    target_extension = evaluator.extension(not_knows)
    checked = 0
    for x in antecedent_extension:
        for y in composed_class(universe, x, normalised):
            checked += 1
            if y not in target_extension:
                return TransferReport(checked, False, (x, y))
    return TransferReport(checked, True)


def check_lemma_4(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    processes: ProcessSetLike,
) -> dict[str, TransferReport]:
    """Lemma 4: how events at ``P`` change its knowledge of a predicate
    local to ``P̄``.

    Returns one report per event kind.  The receive/send/internal cases
    are checked on every one-event transition of the universe whose event
    is on ``P``; the lemma is vacuous (0 instances) unless ``formula`` is
    local to ``P̄`` in this universe.
    """
    universe = evaluator.universe
    p_set = as_process_set(processes)
    complement = universe.complement(p_set)
    reports = {
        "receive": TransferReport(0, True),
        "send": TransferReport(0, True),
        "internal": TransferReport(0, True),
    }
    if not is_local_to(evaluator, formula, complement):
        return reports
    knows_extension = evaluator.extension(Knows(p_set, formula))
    counts = {"receive": 0, "send": 0, "internal": 0}
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None or event.process not in p_set:
                continue
            before = x in knows_extension
            after = extended in knows_extension
            if event.is_receive:
                counts["receive"] += 1
                if before and not after:
                    reports["receive"] = TransferReport(
                        counts["receive"], False, (x, extended)
                    )
            elif event.is_send:
                counts["send"] += 1
                if after and not before:
                    reports["send"] = TransferReport(
                        counts["send"], False, (x, extended)
                    )
            else:
                counts["internal"] += 1
                if before != after:
                    reports["internal"] = TransferReport(
                        counts["internal"], False, (x, extended)
                    )
    for kind in reports:
        if reports[kind].holds:
            reports[kind] = TransferReport(counts[kind], True)
    return reports


def check_theorem_5_gain(
    evaluator: KnowledgeEvaluator,
    sets: Sequence[ProcessSetLike],
    formula: Formula,
    check_receive: bool = True,
) -> TransferReport:
    """Theorem 5: knowledge gain requires a chain ``<Pn … P1>``.

    For every sub-configuration pair ``x <= y`` with ``¬(Pn knows b)`` at
    ``x`` and the nested knowledge at ``y``, assert the chain exists; when
    ``b`` is local to ``P̄n`` (and ``check_receive``), additionally assert
    ``Pn`` has a receive event in the suffix.
    """
    universe = evaluator.universe
    normalised = [as_process_set(entry) for entry in sets]
    last = normalised[-1]
    nested_extension = evaluator.extension(nested_knowledge(normalised, formula))
    not_knows_extension = evaluator.extension(Not(Knows(last, formula)))
    local = is_local_to(
        evaluator, formula, universe.complement(last)
    )
    reversed_chain = list(reversed(normalised))
    checked = 0
    for x, y in universe.sub_configuration_pairs():
        if x not in not_knows_extension or y not in nested_extension:
            continue
        checked += 1
        if chain_in_suffix(y, x, reversed_chain) is None:
            return TransferReport(checked, False, (x, y))
        if check_receive and local:
            suffix = y.suffix_after(x)
            has_receive = any(
                event.is_receive
                for process, history in suffix.items()
                if process in last
                for event in history
            )
            if not has_receive:
                return TransferReport(checked, False, (x, y))
    return TransferReport(checked, True)


def check_theorem_6_loss(
    evaluator: KnowledgeEvaluator,
    sets: Sequence[ProcessSetLike],
    formula: Formula,
    check_send: bool = True,
) -> TransferReport:
    """Theorem 6: knowledge loss requires a chain ``<P1 … Pn>``.

    For every ``x <= y`` with the nested knowledge at ``x`` and
    ``¬(Pn knows b)`` at ``y``, assert the chain exists; when ``b`` is
    local to ``P̄n`` (and ``check_send``), additionally assert ``Pn`` has a
    send event in the suffix.
    """
    universe = evaluator.universe
    normalised = [as_process_set(entry) for entry in sets]
    last = normalised[-1]
    nested_extension = evaluator.extension(nested_knowledge(normalised, formula))
    not_knows_extension = evaluator.extension(Not(Knows(last, formula)))
    local = is_local_to(evaluator, formula, universe.complement(last))
    checked = 0
    for x, y in universe.sub_configuration_pairs():
        if x not in nested_extension or y not in not_knows_extension:
            continue
        checked += 1
        if chain_in_suffix(y, x, normalised) is None:
            return TransferReport(checked, False, (x, y))
        if check_send and local:
            suffix = y.suffix_after(x)
            has_send = any(
                event.is_send
                for process, history in suffix.items()
                if process in last
                for event in history
            )
            if not has_send:
                return TransferReport(checked, False, (x, y))
    return TransferReport(checked, True)


def check_lemma_4_corollaries(
    evaluator: KnowledgeEvaluator,
    formula: Formula,
    processes: ProcessSetLike,
) -> dict[str, TransferReport]:
    """Lemma 4's corollaries: for ``b`` local to ``P̄``,

    * gaining ``P knows b`` across ``x <= y`` forces a receive by ``P``;
    * losing it forces a send by ``P``.
    """
    universe = evaluator.universe
    p_set = as_process_set(processes)
    complement = universe.complement(p_set)
    gain = TransferReport(0, True)
    loss = TransferReport(0, True)
    if not is_local_to(evaluator, formula, complement):
        return {"gain-receive": gain, "loss-send": loss}
    knows_extension = evaluator.extension(Knows(p_set, formula))
    gain_checked = 0
    loss_checked = 0
    for x, y in universe.sub_configuration_pairs():
        x_knows = x in knows_extension
        y_knows = y in knows_extension
        suffix = y.suffix_after(x)
        p_events = [
            event
            for process, history in suffix.items()
            if process in p_set
            for event in history
        ]
        if not x_knows and y_knows:
            gain_checked += 1
            if not any(event.is_receive for event in p_events):
                gain = TransferReport(gain_checked, False, (x, y))
        if x_knows and not y_knows:
            loss_checked += 1
            if not any(event.is_send for event in p_events):
                loss = TransferReport(loss_checked, False, (x, y))
    if gain.holds:
        gain = TransferReport(gain_checked, True)
    if loss.holds:
        loss = TransferReport(loss_checked, True)
    return {"gain-receive": gain, "loss-send": loss}
