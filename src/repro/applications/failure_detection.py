"""§5(b): failure detection is impossible without timeouts.

The paper's argument: a process failure is a predicate local to the
failed process, and a failed process sends no messages afterwards; by the
knowledge-gain machinery other processes remain *unsure* of the failure
forever.  Timeouts escape the argument by shrinking the computation set —
synchrony assumptions make certain slow computations non-existent, so the
monitor's isomorphism class no longer contains them.

Both halves are verified here:

* :func:`analyse_async` — over the asynchronous monitor universe the
  predicate ``monitor sure (worker crashed)`` is *everywhere false*;
* :func:`analyse_sync` — over the timeout universe the monitor does reach
  configurations where it *knows* the crash, and its knowledge is sound
  (never claims a crash that did not happen — automatic by veridicality,
  re-checked explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Implies, Knows, Not, Sure
from repro.knowledge.predicates import is_local_to
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.universe.explorer import Universe


@dataclass(frozen=True)
class AsyncFailureReport:
    """Impossibility verdicts over the asynchronous universe."""

    universe_size: int
    crash_configurations: int
    monitor_never_sure: bool
    crash_local_to_worker: bool

    @property
    def impossibility_holds(self) -> bool:
        return self.monitor_never_sure and self.crash_configurations > 0


def analyse_async(
    universe: Universe,
    evaluator: KnowledgeEvaluator | None = None,
) -> AsyncFailureReport:
    """Verify the impossibility over an async failure-monitor universe."""
    protocol = universe.protocol
    if not isinstance(protocol, AsyncFailureMonitorProtocol):
        raise TypeError("analyse_async needs an AsyncFailureMonitorProtocol")
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    crashed = protocol.crashed_atom()
    monitor = frozenset((protocol.monitor,))
    worker = frozenset((protocol.worker,))
    return AsyncFailureReport(
        universe_size=len(universe),
        crash_configurations=len(evaluator.extension(crashed)),
        monitor_never_sure=evaluator.is_valid(Not(Sure(monitor, crashed))),
        crash_local_to_worker=is_local_to(evaluator, crashed, worker),
    )


@dataclass(frozen=True)
class SyncFailureReport:
    """Timeout-detector verdicts over the synchronous universe."""

    universe_size: int
    crash_configurations: int
    detection_configurations: int
    detection_sound: bool
    detection_possible: bool


def analyse_sync(
    universe: Universe,
    evaluator: KnowledgeEvaluator | None = None,
) -> SyncFailureReport:
    """Verify that timeouts enable sound failure detection."""
    protocol = universe.protocol
    if not isinstance(protocol, SyncFailureMonitorProtocol):
        raise TypeError("analyse_sync needs a SyncFailureMonitorProtocol")
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    crashed = protocol.crashed_atom()
    monitor = frozenset((protocol.monitor,))
    knows_crashed = Knows(monitor, crashed)
    detections = evaluator.extension(knows_crashed)
    return SyncFailureReport(
        universe_size=len(universe),
        crash_configurations=len(evaluator.extension(crashed)),
        detection_configurations=len(detections),
        detection_sound=evaluator.is_valid(Implies(knows_crashed, crashed)),
        detection_possible=len(detections) > 0,
    )
