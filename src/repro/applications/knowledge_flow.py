"""Knowledge flow at scale: chains carry knowledge (Theorems 5/6 applied).

The exhaustive checkers of :mod:`repro.knowledge.transfer` verify the
gain/loss theorems on complete universes; this module measures the same
phenomenon on *large simulated runs*, where exhaustive knowledge
evaluation is out of reach but the chain structure is directly
observable:

* in a broadcast over a line of ``n`` processes, process at distance
  ``d`` learns the fact only once a process chain ``<root … it>`` of
  length ``d`` has formed — the earliest learning step grows with
  distance (:func:`broadcast_knowledge_latency`);
* :func:`verify_chain_gating` confirms, event by event, that a process
  knows the fact *iff* the chain from the root has reached it — the
  operational shadow of Theorem 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.causality.chains import has_process_chain
from repro.causality.order import segment_of
from repro.core.computation import Computation
from repro.core.process import ProcessId
from repro.protocols.broadcast import BroadcastProtocol, line_topology
from repro.simulation.scheduler import RandomScheduler, Scheduler
from repro.simulation.simulator import simulate
from repro.simulation.trace import SimulationTrace


@dataclass(frozen=True)
class LatencyRow:
    """Earliest learning step of one process in a broadcast run."""

    process: ProcessId
    distance: int
    learned_at_step: int | None


def _segment(computation: Computation) -> dict:
    histories: dict[ProcessId, list] = {}
    for event in computation:
        histories.setdefault(event.process, []).append(event)
    return segment_of(histories)


def broadcast_knowledge_latency(
    line_length: int = 8,
    seed: int = 0,
    scheduler: Scheduler | None = None,
) -> tuple[list[LatencyRow], SimulationTrace]:
    """Run a line broadcast; report when each process learns the fact."""
    names = tuple(f"n{i}" for i in range(line_length))
    protocol = BroadcastProtocol(line_topology(names), root=names[0])
    trace = simulate(protocol, scheduler or RandomScheduler(seed))
    rows: list[LatencyRow] = []
    for distance, name in enumerate(names):
        learned_at: int | None = None
        history: list = []
        for index, event in enumerate(trace.computation):
            if event.process == name:
                history.append(event)
                if protocol.knows_fact(name, tuple(history)):
                    learned_at = index
                    break
        rows.append(
            LatencyRow(process=name, distance=distance, learned_at_step=learned_at)
        )
    return rows, trace


def verify_chain_gating(
    rows: list[LatencyRow],
    trace: SimulationTrace,
    root: ProcessId,
) -> bool:
    """Theorem 5's operational shadow on one run.

    For every non-root process, the prefix at which it learned the fact
    must contain a process chain ``<root, process>`` — knowledge never
    arrives without the chain.  Returns ``True`` when every row conforms.
    """
    for row in rows:
        if row.learned_at_step is None or row.process == root:
            continue
        prefix = trace.computation[: row.learned_at_step + 1]
        chain = [frozenset((root,)), frozenset((row.process,))]
        if not has_process_chain(_segment(prefix), chain):
            return False
    return True


def latency_series(
    line_lengths: tuple[int, ...] = (4, 8, 16, 32),
    seed: int = 0,
) -> list[tuple[int, int]]:
    """``(line length, last process's learning step)`` series for E9.

    The paper's sequential-transfer theorem predicts the learning step of
    the far end grows at least linearly with the distance.
    """
    series: list[tuple[int, int]] = []
    for length in line_lengths:
        rows, _ = broadcast_knowledge_latency(line_length=length, seed=seed)
        last = rows[-1]
        series.append((length, last.learned_at_step if last.learned_at_step is not None else -1))
    return series
