"""§5(a): a process cannot track a remote local predicate exactly.

The paper shows that for a predicate ``b`` local to ``P̄``:

* ``P`` must be *unsure* about the value of ``b`` while it is undergoing
  change — exact tracking at all times is impossible;
* a necessary condition for ``P̄`` changing ``b`` is that ``P̄`` knows
  ``P unsure b`` at the point of change.

Both are verified exhaustively over the toggle universe
(:class:`repro.protocols.toggle.ToggleProtocol`): every transition that
flips the bit is inspected for the observer's unsureness and for the
owner's knowledge of that unsureness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isomorphism.extension import extension_event
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Knows, Sure, unsure
from repro.protocols.toggle import ToggleProtocol, bit_atom
from repro.universe.explorer import Universe


@dataclass(frozen=True)
class TrackingReport:
    """Outcome of the §5(a) checks over one toggle universe."""

    flip_transitions: int
    observer_unsure_at_every_flip: bool
    owner_knows_observer_unsure: bool
    observer_ever_sure: bool
    observer_always_sure: bool

    @property
    def tracking_impossible(self) -> bool:
        """The headline claim: the observer is not always sure."""
        return not self.observer_always_sure


def analyse_tracking(
    universe: Universe,
    evaluator: KnowledgeEvaluator | None = None,
) -> TrackingReport:
    """Run the §5(a) analysis over a toggle-protocol universe."""
    protocol = universe.protocol
    if not isinstance(protocol, ToggleProtocol):
        raise TypeError("analyse_tracking needs a ToggleProtocol universe")
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    bit = bit_atom(protocol)
    observer = frozenset((protocol.observer,))
    owner = frozenset((protocol.owner,))

    bit_extension = evaluator.extension(bit)
    observer_sure = evaluator.extension(Sure(observer, bit))
    owner_knows_unsure = evaluator.extension(
        Knows(owner, unsure(observer, bit))
    )

    flips = 0
    unsure_at_flip = True
    owner_knows = True
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None:
                continue
            before = x in bit_extension
            after = extended in bit_extension
            if before == after:
                continue
            flips += 1
            if x in observer_sure:
                unsure_at_flip = False
            if x not in owner_knows_unsure:
                owner_knows = False
    return TrackingReport(
        flip_transitions=flips,
        observer_unsure_at_every_flip=unsure_at_flip,
        owner_knows_observer_unsure=owner_knows,
        observer_ever_sure=len(observer_sure) > 0,
        observer_always_sure=len(observer_sure) == len(universe),
    )


def tracking_error_window(
    universe: Universe,
    evaluator: KnowledgeEvaluator | None = None,
) -> dict[int, tuple[int, int]]:
    """Sureness statistics by configuration size.

    Returns ``{size: (sure_count, total_count)}`` — the fraction of
    configurations of each size at which the observer is sure of the bit.
    The window where the fraction dips below 1 is the uncertainty the
    paper predicts.
    """
    protocol = universe.protocol
    if not isinstance(protocol, ToggleProtocol):
        raise TypeError("tracking_error_window needs a ToggleProtocol universe")
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    bit = bit_atom(protocol)
    observer_sure = evaluator.extension(Sure({protocol.observer}, bit))
    stats: dict[int, tuple[int, int]] = {}
    for configuration in universe:
        size = len(configuration)
        sure_count, total = stats.get(size, (0, 0))
        stats[size] = (
            sure_count + (1 if configuration in observer_sure else 0),
            total + 1,
        )
    return dict(sorted(stats.items()))
