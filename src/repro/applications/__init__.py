"""Applications of the theory (paper, section 5)."""

from repro.applications.failure_detection import (
    AsyncFailureReport,
    SyncFailureReport,
    analyse_async,
    analyse_sync,
)
from repro.applications.knowledge_flow import (
    LatencyRow,
    broadcast_knowledge_latency,
    latency_series,
    verify_chain_gating,
)
from repro.applications.termination_bounds import (
    DetectionRun,
    OverheadRow,
    detector_ambiguity,
    overhead_table,
    run_dijkstra_scholten,
    run_polling_detector,
    spontaneous_overhead_after_termination,
)
from repro.applications.tracking import (
    TrackingReport,
    analyse_tracking,
    tracking_error_window,
)

__all__ = [
    "AsyncFailureReport",
    "DetectionRun",
    "LatencyRow",
    "OverheadRow",
    "SyncFailureReport",
    "TrackingReport",
    "analyse_async",
    "analyse_sync",
    "analyse_tracking",
    "broadcast_knowledge_latency",
    "detector_ambiguity",
    "latency_series",
    "overhead_table",
    "run_dijkstra_scholten",
    "run_polling_detector",
    "spontaneous_overhead_after_termination",
    "tracking_error_window",
    "verify_chain_gating",
]
