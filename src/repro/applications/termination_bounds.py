"""§5(c): the termination-detection message lower bound.

The paper's argument has three steps, each made executable here:

1. *Detection is knowledge gain*: to announce termination, some process
   must send an overhead message **after** the underlying computation has
   terminated, **without first receiving** a message after that point —
   :func:`spontaneous_overhead_after_termination` finds such a message in
   every run of every detector.
2. *Overhead before termination*: a process is sometimes required to send
   overhead even though the underlying computation has not terminated,
   because its view is isomorphic to a terminated computation —
   :func:`detector_ambiguity` counts, over a small exhaustively explored
   detector universe, non-terminated configurations indistinguishable (to
   the detector) from terminated ones.
3. *The bound*: combining these, a computation exists with at least as
   many overhead as underlying messages.  Dijkstra–Scholten *meets* the
   bound with exactly one ack per work message; the polling detector
   exceeds it — :func:`overhead_table` produces the series for
   experiment E12.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.configuration import Configuration
from repro.core.events import ReceiveEvent, SendEvent
from repro.isomorphism.relation import isomorphic
from repro.protocols.dijkstra_scholten import ACK_TAG, DijkstraScholtenProtocol
from repro.protocols.polling_detector import (
    PROBE_TAG,
    REPORT_TAG,
    PollingDetectorProtocol,
)
from repro.protocols.termination import (
    WORK_TAG,
    Activation,
    TerminationWorkload,
    generate_workload,
)
from repro.simulation.scheduler import RandomScheduler, Scheduler
from repro.simulation.simulator import simulate
from repro.simulation.trace import SimulationTrace
from repro.universe.explorer import Universe

OVERHEAD_TAGS = frozenset((ACK_TAG, PROBE_TAG, REPORT_TAG))


@dataclass(frozen=True)
class DetectionRun:
    """Measurements of one detector run."""

    underlying_messages: int
    overhead_messages: int
    detected: bool
    termination_index: int | None  # first prefix length with termination
    detection_index: int | None  # first prefix length with detection

    @property
    def meets_lower_bound(self) -> bool:
        """Paper's §5(c): overhead >= underlying messages."""
        return self.overhead_messages >= self.underlying_messages


def _first_prefix_index(trace: SimulationTrace, predicate) -> int | None:
    for index, prefix in enumerate(trace.computation.prefixes()):
        if predicate(Configuration.from_computation(prefix)):
            return index
    return None


def run_dijkstra_scholten(
    workload: TerminationWorkload, scheduler: Scheduler | None = None
) -> tuple[DetectionRun, SimulationTrace]:
    """Run Dijkstra–Scholten to quiescence and measure it."""
    protocol = DijkstraScholtenProtocol(workload)
    trace = simulate(protocol, scheduler or RandomScheduler(0))
    final = trace.final_configuration
    run = DetectionRun(
        underlying_messages=trace.count_messages(WORK_TAG),
        overhead_messages=protocol.overhead_messages(final),
        detected=protocol.has_detected(final),
        termination_index=_first_prefix_index(trace, protocol.is_terminated),
        detection_index=_first_prefix_index(trace, protocol.has_detected),
    )
    return run, trace


def run_polling_detector(
    workload: TerminationWorkload,
    scheduler: Scheduler | None = None,
    max_waves: int = 128,
) -> tuple[DetectionRun, SimulationTrace]:
    """Run the polling detector to quiescence and measure it."""
    protocol = PollingDetectorProtocol(workload, max_waves=max_waves)
    trace = simulate(protocol, scheduler or RandomScheduler(0), max_steps=1_000_000)
    final = trace.final_configuration
    run = DetectionRun(
        underlying_messages=trace.count_messages(WORK_TAG),
        overhead_messages=protocol.overhead_messages(final),
        detected=protocol.has_detected(final),
        termination_index=_first_prefix_index(trace, protocol.is_terminated),
        detection_index=_first_prefix_index(trace, protocol.has_detected),
    )
    return run, trace


def spontaneous_overhead_after_termination(
    trace: SimulationTrace, termination_index: int
) -> int:
    """Count overhead sends after termination not caused by a receive.

    The paper's step 1: detection needs at least one overhead message,
    after the underlying computation terminates, sent by a process that
    did not first receive a message after that point.  Returns the number
    of such *spontaneous* overhead sends (>= 1 in every detecting run).
    """
    events = trace.computation.events
    received_since: set[str] = set()
    spontaneous = 0
    for event in events[termination_index:]:
        if isinstance(event, ReceiveEvent):
            received_since.add(event.process)
        elif isinstance(event, SendEvent) and event.message.tag in OVERHEAD_TAGS:
            if event.process not in received_since:
                spontaneous += 1
    return spontaneous


def detector_receives_before_detection(
    trace: SimulationTrace,
    detector: str,
    termination_index: int,
    detection_index: int,
) -> bool:
    """Theorem 5's receive corollary, on one run.

    An *external* detector (no underlying events of its own) gains the
    knowledge "terminated" — a predicate local to its complement — so it
    must have a receive event between the point where termination became
    true and the point where it announced.
    """
    events = trace.computation.events
    return any(
        isinstance(event, ReceiveEvent) and event.process == detector
        for event in events[termination_index:detection_index + 1]
    )


def spontaneous_ds_workload() -> TerminationWorkload:
    """A workload realising the paper's step-1 scenario for DS.

    The root sends one work message and immediately falls idle; the
    worker idles after receiving it — at which instant the underlying
    computation has terminated with *no overhead message in flight*.  The
    worker's parent acknowledgement is then necessarily sent after
    termination, spontaneously (its last receive predates termination).
    """
    return TerminationWorkload(
        processes=("root", "worker"),
        root="root",
        plans={"root": (Activation(("worker",)),)},
    )


def detector_ambiguity(universe: Universe) -> dict[str, int]:
    """The paper's step 2, over an exhaustively explored detector universe.

    Counts non-terminated configurations that are isomorphic, with respect
    to the detector process, to some terminated configuration — exactly
    the situations in which the detector must probe although the
    computation is still running.
    """
    protocol = universe.protocol
    if not isinstance(protocol, PollingDetectorProtocol):
        raise TypeError("detector_ambiguity needs a PollingDetectorProtocol")
    detector = frozenset((protocol.detector,))
    terminated = [
        configuration
        for configuration in universe
        if protocol.is_terminated(configuration)
    ]
    ambiguous = 0
    not_terminated = 0
    for configuration in universe:
        if protocol.is_terminated(configuration):
            continue
        not_terminated += 1
        if any(
            isomorphic(configuration, other, detector) for other in terminated
        ):
            ambiguous += 1
    return {
        "universe": len(universe),
        "not_terminated": not_terminated,
        "ambiguous": ambiguous,
        "terminated": len(terminated),
    }


@dataclass(frozen=True)
class OverheadRow:
    """One row of the E12 series."""

    processes: int
    seed: int
    underlying: int
    ds_overhead: int
    polling_overhead: int
    ds_meets_bound: bool

    def as_tuple(self) -> tuple:
        return (
            self.processes,
            self.seed,
            self.underlying,
            self.ds_overhead,
            self.polling_overhead,
            self.ds_meets_bound,
        )


def overhead_table(
    process_counts: Sequence[int] = (3, 4, 5, 6),
    seeds: Sequence[int] = (0, 1, 2),
    activations_per_process: int = 3,
    max_fanout: int = 2,
) -> list[OverheadRow]:
    """The E12 table: underlying vs overhead messages per detector."""
    rows: list[OverheadRow] = []
    for count in process_counts:
        names = tuple(f"w{i}" for i in range(count))
        for seed in seeds:
            workload = generate_workload(
                names,
                seed=seed,
                activations_per_process=activations_per_process,
                max_fanout=max_fanout,
            )
            ds_run, _ = run_dijkstra_scholten(workload, RandomScheduler(seed))
            polling_run, _ = run_polling_detector(workload, RandomScheduler(seed))
            rows.append(
                OverheadRow(
                    processes=count,
                    seed=seed,
                    underlying=workload.total_work_messages(),
                    ds_overhead=ds_run.overhead_messages,
                    polling_overhead=polling_run.overhead_messages,
                    ds_meets_bound=ds_run.meets_lower_bound,
                )
            )
    return rows
