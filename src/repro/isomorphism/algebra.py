"""Algebraic properties of isomorphism relations (paper, §3, items 1–10).

Two kinds of machinery live here:

* :func:`normalise_sequence` — rewrite a sequence of process sets to a
  canonical form using the paper's laws (idempotence ``[P P] = [P]`` and
  absorption ``Q ⊇ P  implies  [Q P] = [P] = [P Q]``, of which idempotence
  is the special case ``Q = P``).
* ``check_*`` functions — exhaustive verifiers of each numbered property
  over a concrete universe.  They return ``True`` when the property holds
  on every instance, and are the machinery behind experiment E2 and the
  algebra test-suite.  Each check is a *universally quantified* statement,
  so a single ``False`` would falsify the reproduction.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.relation import (
    SetSequence,
    composed_class,
    composed_isomorphic,
    isomorphic,
)
from repro.universe.explorer import Universe


def normalise_sequence(sets: SetSequence) -> tuple[frozenset, ...]:
    """Canonical form of ``[P1 P2 … Pn]`` under idempotence/absorption.

    Repeatedly collapses an adjacent pair in which one set contains the
    other to the *smaller* set, which is sound by property 10
    (``Q ⊇ P`` implies ``[Q P] = [P] = [P Q]``).  The result denotes the
    same relation over every universe.
    """
    current = [as_process_set(entry) for entry in sets]
    changed = True
    while changed:
        changed = False
        for index in range(len(current) - 1):
            first, second = current[index], current[index + 1]
            if first >= second:
                del current[index]
                changed = True
                break
            if second >= first:
                del current[index + 1]
                changed = True
                break
    return tuple(current)


def sequences_equal(
    universe: Universe, left: SetSequence, right: SetSequence
) -> bool:
    """Extensional equality ``[left] = [right]`` over the universe.

    Compares the composed classes of every configuration.
    """
    for configuration in universe:
        if composed_class(universe, configuration, left) != composed_class(
            universe, configuration, right
        ):
            return False
    return True


# ----------------------------------------------------------------------
# Properties 1-10, numbered as in the paper.
# ----------------------------------------------------------------------
def check_equivalence(universe: Universe, processes: ProcessSetLike) -> bool:
    """Property 1: ``[P]`` is an equivalence relation.

    Reflexivity and symmetry are structural (projection equality); this
    verifies transitivity exhaustively and spot-checks the other two.
    """
    p_set = as_process_set(processes)
    configurations = list(universe)
    for x in configurations:
        if not isomorphic(x, x, p_set):
            return False
    for x in configurations:
        for y in universe.iso_class(x, p_set):
            if not isomorphic(y, x, p_set):
                return False
            for z in universe.iso_class(y, p_set):
                if not isomorphic(x, z, p_set):
                    return False
    return True


def check_substitution(
    universe: Universe,
    beta: SetSequence,
    delta: SetSequence,
    alpha: SetSequence,
    gamma: SetSequence,
) -> bool:
    """Property 2: ``[β] = [δ]`` implies ``[α β γ] = [α δ γ]``."""
    if not sequences_equal(universe, beta, delta):
        return True  # antecedent false; implication holds vacuously
    return sequences_equal(
        universe,
        list(alpha) + list(beta) + list(gamma),
        list(alpha) + list(delta) + list(gamma),
    )


def check_idempotence(universe: Universe, processes: ProcessSetLike) -> bool:
    """Property 3: ``[P P] = [P]``."""
    p_set = as_process_set(processes)
    return sequences_equal(universe, [p_set, p_set], [p_set])


def check_reflexivity(universe: Universe, sets: SetSequence) -> bool:
    """Property 4: ``x [P1 … Pn] x`` for every computation ``x``."""
    return all(
        composed_isomorphic(universe, configuration, sets, configuration)
        for configuration in universe
    )


def check_inversion(universe: Universe, sets: SetSequence) -> bool:
    """Property 5: ``x [P1 … Pn] y  =  y [Pn … P1] x``."""
    reversed_sets = list(reversed(list(sets)))
    for x in universe:
        forward = composed_class(universe, x, sets)
        for y in universe:
            backward = composed_isomorphic(universe, y, reversed_sets, x)
            if (y in forward) != backward:
                return False
    return True


def check_concatenation(
    universe: Universe, prefix_sets: SetSequence, suffix_sets: SetSequence
) -> bool:
    """Property 6: ``∃y: x [P1…Pm] y and y [Pm+1…Pn] z  =  x [P1…Pn] z``."""
    combined = list(prefix_sets) + list(suffix_sets)
    for x in universe:
        via_definition: set[Configuration] = set()
        for y in composed_class(universe, x, prefix_sets):
            via_definition.update(composed_class(universe, y, suffix_sets))
        if via_definition != composed_class(universe, x, combined):
            return False
    return True


def check_union(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 7: ``[P ∪ Q] = [P] ∩ [Q]``."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    union = p_set | q_set
    for x in universe:
        for y in universe:
            combined = isomorphic(x, y, union)
            separate = isomorphic(x, y, p_set) and isomorphic(x, y, q_set)
            if combined != separate:
                return False
    return True


def check_containment(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 8: ``Q ⊇ P  =  [Q] ⊆ [P]``.

    The forward direction is checked exhaustively.  The converse needs the
    model's "every process has an event in some computation" assumption;
    it is checked whenever each process of ``P - Q`` has an event in the
    universe, and skipped (treated as holding) otherwise.
    """
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    relation_contained = True
    for x in universe:
        for y in universe.iso_class(x, q_set):
            if not isomorphic(x, y, p_set):
                relation_contained = False
                break
        if not relation_contained:
            break
    if q_set >= p_set:
        return relation_contained
    # Q does not contain P: the property demands [Q] ⊄ [P], provided the
    # missing processes actually have events somewhere in this universe.
    active = {event.process for event in universe.events()}
    if not (p_set - q_set) & active:
        return True
    return not relation_contained


def check_extensionality(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 9: ``P = Q  =  [P] = [Q]`` (same caveat as property 8)."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    return check_containment(universe, p_set, q_set) and check_containment(
        universe, q_set, p_set
    )


def check_absorption(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 10: ``Q ⊇ P`` implies ``[Q P] = [P] = [P Q]``."""
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    if not q_set >= p_set:
        return True
    return sequences_equal(universe, [q_set, p_set], [p_set]) and sequences_equal(
        universe, [p_set, q_set], [p_set]
    )


def check_all_properties(
    universe: Universe, max_sets: int | None = None
) -> dict[str, bool]:
    """Run every property check over all (pairs of) subsets of ``D``.

    Returns a map from property name to verdict.  ``max_sets`` caps the
    number of subsets considered (smallest first) to keep the sweep
    tractable on larger process sets.
    """
    processes = sorted(universe.processes)
    subsets: list[frozenset] = []
    for size in range(len(processes) + 1):
        for combo in itertools.combinations(processes, size):
            subsets.append(frozenset(combo))
    if max_sets is not None:
        subsets = subsets[:max_sets]

    results: dict[str, bool] = {}
    results["1-equivalence"] = all(
        check_equivalence(universe, subset) for subset in subsets
    )
    results["3-idempotence"] = all(
        check_idempotence(universe, subset) for subset in subsets
    )
    results["4-reflexivity"] = all(
        check_reflexivity(universe, [subset]) for subset in subsets
    )
    results["5-inversion"] = all(
        check_inversion(universe, [first, second])
        for first in subsets
        for second in subsets
    )
    results["6-concatenation"] = all(
        check_concatenation(universe, [first], [second])
        for first in subsets
        for second in subsets
    )
    results["7-union"] = all(
        check_union(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["8-containment"] = all(
        check_containment(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["9-extensionality"] = all(
        check_extensionality(universe, first, second)
        for first in subsets
        for second in subsets
        if first == second
    )
    results["10-absorption"] = all(
        check_absorption(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["2-substitution"] = all(
        check_substitution(universe, [first], [first], [second], [second])
        for first in subsets[: min(len(subsets), 4)]
        for second in subsets[: min(len(subsets), 4)]
    )
    return results
