"""Algebraic properties of isomorphism relations (paper, §3, items 1–10).

Two kinds of machinery live here:

* :func:`normalise_sequence` — rewrite a sequence of process sets to a
  canonical form using the paper's laws (idempotence ``[P P] = [P]`` and
  absorption ``Q ⊇ P  implies  [Q P] = [P] = [P Q]``, of which idempotence
  is the special case ``Q = P``).
* ``check_*`` functions — exhaustive verifiers of each numbered property
  over a concrete universe.  They return ``True`` when the property holds
  on every instance, and are the machinery behind experiment E2 and the
  algebra test-suite.  Each check is a *universally quantified* statement,
  so a single ``False`` would falsify the reproduction.

The checkers run on the universe's partition tables: a ``[P]``-relation
is a partition of the dense configuration ids, a composed relation
``[P1 … Pn]`` propagates along the cached class-adjacency graph, and each
universally quantified property collapses to bitwise subset/equality
tests over class masks and O(n) passes over class-index arrays — never a
nested loop over ``Configuration`` objects.  The original object-level
checkers survive in :mod:`repro.isomorphism.reference`; the cross-check
tests assert both agree verdict-for-verdict.
"""

from __future__ import annotations

import itertools

from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.relation import SetSequence, fold_classes
from repro.universe.explorer import PartitionTable, Universe


def normalise_sequence(sets: SetSequence) -> tuple[frozenset, ...]:
    """Canonical form of ``[P1 P2 … Pn]`` under idempotence/absorption.

    Repeatedly collapses an adjacent pair in which one set contains the
    other to the *smaller* set, which is sound by property 10
    (``Q ⊇ P`` implies ``[Q P] = [P] = [P Q]``).  The result denotes the
    same relation over every universe.
    """
    current = [as_process_set(entry) for entry in sets]
    changed = True
    while changed:
        changed = False
        for index in range(len(current) - 1):
            first, second = current[index], current[index + 1]
            if first >= second:
                del current[index]
                changed = True
                break
            if second >= first:
                del current[index + 1]
                changed = True
                break
    return tuple(current)


# ----------------------------------------------------------------------
# Class-graph pipeline: composed relations at class granularity.
# ----------------------------------------------------------------------
def _frontier_classes(
    universe: Universe, sets: list[frozenset]
) -> tuple[PartitionTable, PartitionTable, list[frozenset[int]]]:
    """Propagate every ``[P1]``-class through ``[P2 … Pn]`` at class level.

    Returns ``(base, final, frontiers)`` where ``frontiers[k]`` is the set
    of ``final``-partition class indices reachable from class ``k`` of the
    ``base`` (``[P1]``) partition.  Because every intermediate step unions
    whole classes, the composed image of a configuration ``x`` is exactly
    the union of the ``final`` classes in ``frontiers[class_of(x)]`` — no
    masks are materialised until a caller asks for them.

    Results are memoised per universe keyed by the frozen-set sequence:
    the property sweep asks for the same composed relations from several
    checkers (inversion folds ``[P Q]`` and ``[Q P]``, concatenation
    folds the full chain again, both quantified over all subset pairs),
    so sharing the class-graph folds across checkers removes the
    dominant repeated work of the n=7 sweep residue.
    """
    key = tuple(sets)
    memo = getattr(universe, "_frontier_class_memo", None)
    if memo is None:
        memo = universe._frontier_class_memo = {}
    cached = memo.get(key)
    if cached is not None:
        return cached
    base = universe.partition_table(sets[0])
    frontiers = [
        frozenset(fold_classes(universe, {index}, sets[0], sets[1:]))
        for index in range(base.num_classes)
    ]
    result = (base, universe.partition_table(sets[-1]), frontiers)
    memo[key] = result
    return result


def _materialise_frontiers(
    final: PartitionTable, frontiers: list[frozenset[int]]
) -> list[int]:
    """One composed-image mask per base class, shared between equal
    frontiers (distinct frontier sets are typically few)."""
    memo: dict[frozenset[int], int] = {}
    results: list[int] = []
    for frontier in frontiers:
        mask = memo.get(frontier)
        if mask is None:
            mask = final.classes_mask(frontier)
            memo[frontier] = mask
        results.append(mask)
    return results


def _composed_is_identity(universe: Universe, sets: list[frozenset]) -> bool:
    """``[P1 … Pn]`` equals the identity relation over the universe.

    The composed image of ``x`` always contains the whole base class of
    ``x``, so the relation is the identity iff every base class is a
    singleton whose frontier is a single singleton final class holding
    the same configuration — checked per class, no masks, no O(n) pass.
    """
    base, final, frontiers = _frontier_classes(universe, sets)
    final_members = final.members
    for index, frontier in enumerate(frontiers):
        members = base.members[index]
        if len(members) != 1 or len(frontier) != 1:
            return False
        (final_class,) = frontier
        reached = final_members[final_class]
        if len(reached) != 1 or reached[0] != members[0]:
            return False
    return True


def sequences_equal(
    universe: Universe, left: SetSequence, right: SetSequence
) -> bool:
    """Extensional equality ``[left] = [right]`` over the universe.

    Single-set sides compare as partitions (fingerprint + one C-level
    array compare).  Composed sides compare their per-class images,
    deduplicated by the realised (left class, right class) pairs — which
    are exactly the rows of the cached
    :meth:`~repro.universe.explorer.Universe.class_adjacency` graph, so
    no per-configuration pass remains; when both pipelines end in the
    same partition the images compare as final-class *sets*, with no
    masks materialised at all.
    """
    left_n = [as_process_set(entry) for entry in left]
    right_n = [as_process_set(entry) for entry in right]
    if left_n == right_n:
        return True  # syntactically identical sequences denote one relation
    if not left_n and not right_n:
        return True
    if not left_n or not right_n:
        # One side is the identity relation.
        return _composed_is_identity(universe, left_n or right_n)
    if len(left_n) == 1 and len(right_n) == 1:
        return universe.partition_table(left_n[0]).same_partition_as(
            universe.partition_table(right_n[0])
        )
    left_base, left_final, left_frontiers = _frontier_classes(universe, left_n)
    right_base, right_final, right_frontiers = _frontier_classes(
        universe, right_n
    )
    pair_rows = universe.class_adjacency(left_n[0], right_n[0])
    if left_final is right_final:
        # Images are unions of final classes; with one shared final
        # partition the unions are equal iff the class sets are.
        for left_class, row in enumerate(pair_rows):
            left_frontier = left_frontiers[left_class]
            for right_class in row:
                if left_frontier != right_frontiers[right_class]:
                    return False
        return True
    left_results = _materialise_frontiers(left_final, left_frontiers)
    right_results = _materialise_frontiers(right_final, right_frontiers)
    for left_class, row in enumerate(pair_rows):
        left_image = left_results[left_class]
        for right_class in row:
            if left_image != right_results[right_class]:
                return False
    return True


# ----------------------------------------------------------------------
# Properties 1-10, numbered as in the paper.
# ----------------------------------------------------------------------
def check_equivalence(universe: Universe, processes: ProcessSetLike) -> bool:
    """Property 1: ``[P]`` is an equivalence relation.

    Symmetry and transitivity are structural once the relation is a
    partition; this verifies the partition: every class mask decodes to
    exactly its member ids, the members agree with the index array, and
    the rows partition the id range — which gives disjointness, covering
    and reflexivity together.  The verification is the memoised
    :meth:`~repro.universe.explorer.PartitionTable.verify_consistency`,
    shared with :func:`check_concatenation`'s definitional side.
    """
    return universe.partition_table(processes).verify_consistency()


def check_substitution(
    universe: Universe,
    beta: SetSequence,
    delta: SetSequence,
    alpha: SetSequence,
    gamma: SetSequence,
) -> bool:
    """Property 2: ``[β] = [δ]`` implies ``[α β γ] = [α δ γ]``."""
    if not sequences_equal(universe, beta, delta):
        return True  # antecedent false; implication holds vacuously
    return sequences_equal(
        universe,
        list(alpha) + list(beta) + list(gamma),
        list(alpha) + list(delta) + list(gamma),
    )


def check_idempotence(universe: Universe, processes: ProcessSetLike) -> bool:
    """Property 3: ``[P P] = [P]``.

    Checked by closing every ``[P]``-class under ``[P]`` again: the
    one-pass :meth:`~repro.universe.explorer.Universe.compose_masks`
    closure must return the class unchanged.
    """
    p_set = as_process_set(processes)
    table = universe.partition_table(p_set)
    for index in range(table.num_classes):
        mask = table.class_mask(index)
        if universe.compose_masks(mask, p_set) != mask:
            return False
    return True


def check_reflexivity(universe: Universe, sets: SetSequence) -> bool:
    """Property 4: ``x [P1 … Pn] x`` for every computation ``x``.

    ``x``'s image must contain its own final class, for every ``x`` —
    i.e. for every *realised* (base class, final class) pair, the final
    class must sit in the base class's frontier.  The realised pairs are
    the rows of the cached class-adjacency graph, so the universal
    quantifier costs O(pairs), not O(n) per sequence.
    """
    normalised = [as_process_set(entry) for entry in sets]
    if not normalised:
        return True
    base, final, frontiers = _frontier_classes(universe, normalised)
    pair_rows = universe.class_adjacency(normalised[0], normalised[-1])
    return all(
        final_class in frontiers[base_class]
        for base_class, row in enumerate(pair_rows)
        for final_class in row
    )


def check_inversion(universe: Universe, sets: SetSequence) -> bool:
    """Property 5: ``x [P1 … Pn] y  =  y [Pn … P1] x``.

    The forward image of a ``[P1]``-class is a union of ``[Pn]``-classes
    (and vice versa), so the property reduces to the transpose of the
    forward class graph equalling the backward class graph — checked with
    set operations on class indices, no masks at all.
    """
    normalised = [as_process_set(entry) for entry in sets]
    if not normalised:
        return True  # the identity relation is symmetric
    _, forward_final, forward = _frontier_classes(universe, normalised)
    _, _, backward = _frontier_classes(universe, list(reversed(normalised)))
    transpose: list[set[int]] = [set() for _ in range(forward_final.num_classes)]
    for source, frontier in enumerate(forward):
        for target in frontier:
            transpose[target].add(source)
    return all(
        backward[target] == transpose[target]
        for target in range(forward_final.num_classes)
    )


def check_concatenation(
    universe: Universe, prefix_sets: SetSequence, suffix_sets: SetSequence
) -> bool:
    """Property 6: ``∃y: x [P1…Pm] y and y [Pm+1…Pn] z  =  x [P1…Pn] z``.

    The definitional side quantifies over the intermediates ``y``: the
    prefix image's mask↔index consistency is verified once per
    prefix-final table (memoised ``verify_consistency`` — previously this
    bit-by-bit re-derivation ran per subset pair and dominated the
    sweep), then the suffix is applied to each whole prefix frontier and
    compared against an independent stepwise fold of the full chain.
    Distinct prefix frontiers are processed once.
    """
    prefix_n = [as_process_set(entry) for entry in prefix_sets]
    suffix_n = [as_process_set(entry) for entry in suffix_sets]
    combined = prefix_n + suffix_n
    if not prefix_n or not suffix_n:
        # One side is the identity: the definitional union over {x} (or
        # over the image itself) is the composed image verbatim.
        return True
    base, prefix_final, prefix_frontiers = _frontier_classes(universe, prefix_n)
    # The definitional side materialises the intermediate image ``{y}``
    # as a mask and re-derives its classes from the class-index arrays.
    # That mask↔index re-derivation is a property of the prefix-final
    # table alone, so it is verified once per table (memoised in
    # ``verify_consistency``) instead of once per (pair, class) — the
    # O(n·pairs) bit re-derivation this sweep used to pay.
    if not prefix_final.verify_consistency():
        return False
    # The direct side is the full-chain class fold per base class —
    # exactly the combined sequence's frontiers, shared with inversion
    # and the other checkers through the per-universe frontier memo.
    _, _, combined_frontiers = _frontier_classes(universe, combined)
    via_memo: dict[frozenset[int], frozenset[int]] = {}
    for index in range(base.num_classes):
        frontier = prefix_frontiers[index]
        via_definition = via_memo.get(frontier)
        if via_definition is None:
            # Quantify over the intermediates as one batch: fold the
            # whole frontier through the suffix sets.
            via_definition = frozenset(
                fold_classes(universe, set(frontier), prefix_n[-1], suffix_n)
            )
            via_memo[frontier] = via_definition
        if via_definition != combined_frontiers[index]:
            return False
    return True


def check_union(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 7: ``[P ∪ Q] = [P] ∩ [Q]``.

    Holds iff the ``[P ∪ Q]`` partition coincides with the common
    refinement of ``[P]`` and ``[Q]`` — one O(n) pass matching union-class
    indices against (P-class, Q-class) pairs, in both directions.
    """
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    # [P] ∩ [Q] is the memoised refinement product — built from the
    # class-index arrays, canonically labelled in first-occurrence order
    # and shared across subset pairs (and with check_containment).  The
    # [P ∪ Q] table is built independently, from projection keys; both
    # labellings are canonical, so the property holds iff the two
    # class_of arrays are equal — fingerprint fast-path, then one
    # C-level array comparison.
    refinement = universe.refinement_product(p_set, q_set)
    union_table = universe.partition_table(p_set | q_set)
    return refinement.same_partition_as(union_table)


def check_containment(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 8: ``Q ⊇ P  =  [Q] ⊆ [P]``.

    ``[Q] ⊆ [P]`` is exactly "the ``[Q]`` partition refines the ``[P]``
    partition": every ``[Q]``-class maps into a single ``[P]``-class.
    The converse needs the model's "every process has an event in some
    computation" assumption; it is checked whenever each process of
    ``P - Q`` has an event in the universe, and skipped (treated as
    holding) otherwise.
    """
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    # [Q] ⊆ [P] iff every [Q]-class meets exactly one [P]-class — the
    # rows of the cached class-adjacency graph (derived from the shared
    # refinement product) are those meets.
    relation_contained = all(
        len(row) == 1 for row in universe.class_adjacency(q_set, p_set)
    )
    if q_set >= p_set:
        return relation_contained
    # Q does not contain P: the property demands [Q] ⊄ [P], provided the
    # missing processes actually have events somewhere in this universe.
    if not (p_set - q_set) & universe.active_processes:
        return True
    return not relation_contained


def check_extensionality(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 9: ``P = Q  =  [P] = [Q]`` (same caveat as property 8)."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    return check_containment(universe, p_set, q_set) and check_containment(
        universe, q_set, p_set
    )


def check_absorption(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 10: ``Q ⊇ P`` implies ``[Q P] = [P] = [P Q]``."""
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    if not q_set >= p_set:
        return True
    return sequences_equal(universe, [q_set, p_set], [p_set]) and sequences_equal(
        universe, [p_set, q_set], [p_set]
    )


def check_all_properties(
    universe: Universe, max_sets: int | None = None
) -> dict[str, bool]:
    """Run every property check over all (pairs of) subsets of ``D``.

    Returns a map from property name to verdict.  ``max_sets`` caps the
    number of subsets considered (smallest first) to keep the sweep
    tractable on larger process sets.
    """
    processes = sorted(universe.processes)
    subsets: list[frozenset] = []
    for size in range(len(processes) + 1):
        for combo in itertools.combinations(processes, size):
            subsets.append(frozenset(combo))
    if max_sets is not None:
        subsets = subsets[:max_sets]

    results: dict[str, bool] = {}
    results["1-equivalence"] = all(
        check_equivalence(universe, subset) for subset in subsets
    )
    results["3-idempotence"] = all(
        check_idempotence(universe, subset) for subset in subsets
    )
    results["4-reflexivity"] = all(
        check_reflexivity(universe, [subset]) for subset in subsets
    )
    results["5-inversion"] = all(
        check_inversion(universe, [first, second])
        for first in subsets
        for second in subsets
    )
    results["6-concatenation"] = all(
        check_concatenation(universe, [first], [second])
        for first in subsets
        for second in subsets
    )
    results["7-union"] = all(
        check_union(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["8-containment"] = all(
        check_containment(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["9-extensionality"] = all(
        check_extensionality(universe, first, second)
        for first in subsets
        for second in subsets
        if first == second
    )
    results["10-absorption"] = all(
        check_absorption(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["2-substitution"] = all(
        check_substitution(universe, [first], [first], [second], [second])
        for first in subsets[: min(len(subsets), 4)]
        for second in subsets[: min(len(subsets), 4)]
    )
    return results
