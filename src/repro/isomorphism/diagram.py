"""Isomorphism diagrams (paper, §3 and Figure 3-1).

An isomorphism diagram is an undirected labelled graph whose vertices are
computations, with an edge labelled ``[P]`` between ``x`` and ``y`` when
``P`` is the *largest* set of processes for which ``x [P] y``.  Every
vertex carries a self-loop labelled ``[D]``; distinct vertices related by
``[D]`` are permutations of one another.

Vertices may be linear :class:`~repro.core.computation.Computation` objects
(as in the paper's Figure 3-1, where the permutations ``x`` and ``z`` are
distinct vertices joined by a ``[D]`` edge) or canonical
:class:`~repro.core.configuration.Configuration` objects (one vertex per
``[D]``-class).  The diagram is backed by :mod:`networkx`, so standard
graph algorithms (paths, components) apply directly; composed relations
``x [P1 … Pn] z`` correspond to labelled paths, as the paper notes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Union

import networkx as nx

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.process import (
    ProcessId,
    ProcessSetLike,
    as_process_set,
    format_process_set,
)
from repro.isomorphism.relation import SetSequence
from repro.universe.explorer import Universe

Vertex = Union[Computation, Configuration]
"""Diagram vertices: linear computations or canonical configurations."""


def _history(vertex: Vertex, process: ProcessId) -> tuple:
    if isinstance(vertex, Configuration):
        return vertex.history(process)
    return vertex.projection(process)


class IsomorphismDiagram:
    """The isomorphism diagram of a finite set of computations.

    ``names`` optionally assigns display names (``x``, ``y``…) to
    vertices; unnamed vertices are numbered in insertion order.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex],
        all_processes: ProcessSetLike,
        names: Mapping[str, Vertex] | None = None,
    ) -> None:
        self._all_processes = as_process_set(all_processes)
        self._vertices: list[Vertex] = []
        seen: set[Vertex] = set()
        for vertex in vertices:
            if vertex not in seen:
                seen.add(vertex)
                self._vertices.append(vertex)
        self._names: dict[Vertex, str] = {}
        if names:
            for name, vertex in names.items():
                self._names[vertex] = name
        for index, vertex in enumerate(self._vertices):
            self._names.setdefault(vertex, f"c{index}")
        # Diagram-local partition tables: for each process, vertices are
        # bucketed by projection and assigned a class index, so every
        # agreement question is an integer comparison instead of a
        # history-tuple comparison.
        self._ordered_processes = tuple(sorted(self._all_processes))
        self._class_ids: dict[ProcessId, dict[Vertex, int]] = {}
        self._class_keys: dict[ProcessId, dict[tuple, int]] = {}
        for process in self._ordered_processes:
            classes: dict[tuple, int] = {}
            ids: dict[Vertex, int] = {}
            for vertex in self._vertices:
                key = _history(vertex, process)
                index = classes.setdefault(key, len(classes))
                ids[vertex] = index
            self._class_ids[process] = ids
            self._class_keys[process] = classes
        self._graph = nx.Graph()
        self._build()

    @staticmethod
    def of_universe(universe: Universe) -> "IsomorphismDiagram":
        """Diagram over every configuration of a universe."""
        return IsomorphismDiagram(universe, universe.processes)

    def _build(self) -> None:
        for vertex in self._vertices:
            self._graph.add_node(vertex)
            # Self loop labelled [D], as the paper observes.
            self._graph.add_edge(vertex, vertex, label=self._all_processes)
        for index, first in enumerate(self._vertices):
            for second in self._vertices[index + 1 :]:
                label = self.largest_label(first, second)
                if label:
                    self._graph.add_edge(first, second, label=label)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (labels in edge data ``label``)."""
        return self._graph

    @property
    def vertices(self) -> Sequence[Vertex]:
        return tuple(self._vertices)

    def name_of(self, vertex: Vertex) -> str:
        return self._names[vertex]

    def largest_label(self, first: Vertex, second: Vertex) -> frozenset[ProcessId]:
        """The largest ``P ⊆ D`` with ``first [P] second``.

        Processes having no event in either computation agree vacuously
        and are included, matching the ``[D]`` self-loop convention.
        Known vertices compare per-process class indices; foreign
        vertices fall back to projection comparison.
        """
        class_ids = self._class_ids
        try:
            return frozenset(
                process
                for process in self._ordered_processes
                if class_ids[process][first] == class_ids[process][second]
            )
        except KeyError:
            return frozenset(
                process
                for process in self._all_processes
                if _history(first, process) == _history(second, process)
            )

    def label(self, first: Vertex, second: Vertex) -> frozenset[ProcessId] | None:
        """The edge label between two vertices, or ``None`` if no edge."""
        if not self._graph.has_edge(first, second):
            return None
        return self._graph.edges[first, second]["label"]

    def related(
        self, first: Vertex, second: Vertex, processes: ProcessSetLike
    ) -> bool:
        """``first [P] second`` read off the diagram."""
        label = self.largest_label(first, second)
        return as_process_set(processes) <= label

    def has_labelled_path(
        self, start: Vertex, sets: SetSequence, end: Vertex
    ) -> bool:
        """Is there a path ``start —[Q1]— … —[Qn]— end`` with ``Qi ⊇ Pi``?

        This is the diagram reading of ``start [P1 … Pn] end`` *restricted
        to the diagram's vertex set* (the universe-based
        :func:`repro.isomorphism.relation.composed_isomorphic` quantifies
        over all computations instead).
        """
        frontier: set[Vertex] = {start}
        for entry in sets:
            processes = sorted(as_process_set(entry))

            def signature(vertex: Vertex) -> tuple:
                # Per-process class indices resolved through the history
                # key, so vertices outside the diagram (e.g. a foreign
                # `start`) land in the same bucket as the diagram
                # vertices they agree with.  Histories unseen in the
                # diagram keep the raw key: they match no bucket, which
                # is correct — no vertex shares that projection.
                parts = []
                for process in processes:
                    key = _history(vertex, process)
                    keys = self._class_keys.get(process)
                    if keys is None:
                        parts.append(key)
                    else:
                        index = keys.get(key)
                        parts.append(key if index is None else index)
                return tuple(parts)

            buckets: dict[tuple, list[Vertex]] = {}
            for vertex in self._vertices:
                buckets.setdefault(signature(vertex), []).append(vertex)
            next_frontier: set[Vertex] = set()
            for vertex in frontier:
                next_frontier.update(buckets.get(signature(vertex), ()))
            frontier = next_frontier
        return end in frontier

    def edge_list(self) -> list[tuple[str, str, frozenset[ProcessId]]]:
        """All edges as ``(name, name, label)`` triples, self-loops
        included, deterministically ordered."""
        edges = []
        for first, second, data in self._graph.edges(data=True):
            name_a, name_b = sorted((self.name_of(first), self.name_of(second)))
            edges.append((name_a, name_b, data["label"]))
        edges.sort(key=lambda item: (item[0], item[1]))
        return edges

    def render(self) -> str:
        """ASCII rendering: one line per edge, e.g. ``x --[{p}]-- y``."""
        lines = []
        for first, second, label in self.edge_list():
            rendered = format_process_set(label)
            if first == second:
                lines.append(f"{first} --[{rendered}]-- {first}  (self loop)")
            else:
                lines.append(f"{first} --[{rendered}]-- {second}")
        return "\n".join(lines)

    def to_dot(self, include_self_loops: bool = False) -> str:
        """Graphviz DOT source for the diagram.

        Renders with e.g. ``dot -Tsvg diagram.dot -o diagram.svg``.  Self
        loops (all labelled ``[D]``) are omitted by default, matching how
        the paper draws Figure 3-1.
        """
        lines = ["graph isomorphism {", "  node [shape=circle];"]
        for first, second, label in self.edge_list():
            if first == second and not include_self_loops:
                continue
            rendered = format_process_set(label)
            lines.append(f'  "{first}" -- "{second}" [label="{rendered}"];')
        lines.append("}")
        return "\n".join(lines)
