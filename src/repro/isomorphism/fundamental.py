"""Theorem 1: the Fundamental Theorem of Process Chains (paper, §3.2).

    Let ``z`` be a computation and ``x`` a prefix of ``z``; let
    ``P1, …, Pn`` (n >= 1) be sets of processes.  Then

        ``x [P1 P2 … Pn] z``   or   there is a process chain
        ``<P1 P2 … Pn>`` in ``(x, z)``.

(The disjunction is inclusive.)  This is the bridge between the paper's
nonoperational notion (isomorphism) and the operational one (chains):
if no information flowed along a ``P1 → P2 → … → Pn`` chain in the
suffix, the suffix can be rearranged into intermediate computations
witnessing the composed isomorphism.

Beside the exhaustive checker, :func:`composition_witness_by_chains`
*constructs* the intermediate computations directly from the causal
structure — the constructive content of the theorem's proof — via the
*chain rank* of each suffix event: the length of the longest prefix of
``<P1 … Pn>`` matched by a chain ending at that event.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.causality.chains import find_process_chain
from repro.causality.order import CausalOrder
from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.relation import composed_isomorphic
from repro.universe.explorer import Universe


def chain_ranks(
    order: CausalOrder, sets: Sequence[ProcessSetLike]
) -> dict[Event, int]:
    """The chain rank ``g(e)`` of every event of the segment.

    ``g(e)`` is the largest ``i`` such that some chain of events
    ``e1 -> … -> e`` (ending at ``e``, events not necessarily distinct)
    matches the set-sequence prefix ``<P1 … Pi>``.  Computed by dynamic
    programming over a topological order: take the maximum rank of the
    immediate predecessors, then repeatedly "consume" further sets while
    the event's process belongs to the next one (an event may play several
    chain roles because ``->`` is reflexive).

    A chain ``<P1 … Pn>`` exists in the segment iff some event has rank
    ``n``.
    """
    normalised = [as_process_set(entry) for entry in sets]
    ranks: dict[Event, int] = {}
    for event in order.topological_order:
        best = 0
        for predecessor in order.immediate_predecessors(event):
            best = max(best, ranks[predecessor])
        while best < len(normalised) and event.process in normalised[best]:
            best += 1
        ranks[event] = best
    return ranks


def theorem_1_holds(
    universe: Universe,
    x: Configuration,
    z: Configuration,
    sets: Sequence[ProcessSetLike],
) -> bool:
    """Decide the disjunction of Theorem 1 for one instance.

    ``x`` must be a sub-configuration of ``z`` and both must belong to the
    universe.
    """
    chain = find_process_chain(z.suffix_after(x), sets)
    if chain is not None:
        return True
    return composed_isomorphic(universe, x, sets, z)


def check_theorem_1(
    universe: Universe,
    set_sequences: Sequence[Sequence[ProcessSetLike]],
) -> int:
    """Verify Theorem 1 for every prefix pair and every given sequence.

    Returns the number of instances checked; raises
    :class:`AssertionError` with a counterexample on failure.
    """
    checked = 0
    for x, z in universe.sub_configuration_pairs():
        for sets in set_sequences:
            if not theorem_1_holds(universe, x, z, sets):
                raise AssertionError(
                    "Theorem 1 fails: no chain "
                    f"{[sorted(as_process_set(s)) for s in sets]} in suffix and "
                    f"no composed isomorphism, for x={x!r}, z={z!r}"
                )
            checked += 1
    return checked


def composition_witness_by_chains(
    x: Configuration,
    z: Configuration,
    sets: Sequence[ProcessSetLike],
) -> list[Configuration] | None:
    """Construct intermediates ``x = y0 [P1] y1 … [Pn] yn = z`` from the
    causal structure, or return ``None`` when a chain ``<P1 … Pn>`` exists
    in the suffix (in which case Theorem 1 promises nothing).

    Construction: with ``g`` the chain rank, let ``yi`` extend ``x`` by the
    suffix events of rank ``< i``.  Each ``yi`` is causally downward closed
    (ranks are monotone along ``->``), the step from ``yi`` to ``yi+1``
    adds only rank-``i`` events, and a rank-``i`` event is never on
    ``Pi+1`` (it would have consumed that set too) — so
    ``yi [Pi+1] yi+1``.  Absence of the full chain makes every rank
    ``< n``, hence ``y(n-1) ⊆ yn = z`` differ only in rank-``(n-1)``
    events, none of which are on ``Pn``.
    """
    suffix = z.suffix_after(x)
    order = CausalOrder(suffix)
    ranks = chain_ranks(order, sets)
    count = len(sets)
    if any(rank >= count for rank in ranks.values()):
        return None

    witnesses: list[Configuration] = [x]
    for level in range(1, count):
        kept = {event for event, rank in ranks.items() if rank < level}
        histories = {
            process: tuple(event for event in history if event in kept)
            for process, history in suffix.items()
        }
        merged = {
            process: x.history(process) + histories.get(process, ())
            for process in set(x.histories) | set(histories)
        }
        witnesses.append(Configuration(merged))
    witnesses.append(z)
    return witnesses
