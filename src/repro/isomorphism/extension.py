"""Event semantics: the Principle of Computation Extension and Theorem 3.

The Principle of Computation Extension (paper, §3.4) relates what a
process may do in isomorphic computations:

1. if ``e`` is an internal or send event on ``P``, ``x [P] y`` and
   ``(x;e)`` is a computation, then ``(y;e)`` is a computation, and
   ``(x;e) [P] (y;e)``;
2. if ``e`` is an internal or receive event on ``P`` and ``(x;e) [P] y``,
   then ``(y - e)`` is a computation, and ``x [P] (y - e)``.

Theorem 3 casts the three event types in terms of the composed relation
``[P P̄]``: a receive can only *shrink*, a send can only *grow*, and an
internal event preserves, the set of computations related to the current
one by ``[P P̄]`` — the formal version of "reception rules out
computations that do not include the corresponding send".

All statements here are checked exhaustively over explored universes;
the checkers return the number of instances verified so callers can
assert non-vacuity.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.relation import composed_class, isomorphic
from repro.universe.explorer import Universe


def extension_event(
    smaller: Configuration, larger: Configuration
) -> Event | None:
    """The single event ``e`` with ``larger = (smaller; e)``, if any."""
    if len(larger) != len(smaller) + 1:
        return None
    if not smaller.is_sub_configuration_of(larger):
        return None
    for process, history in larger.histories.items():
        if len(history) == len(smaller.history(process)) + 1:
            return history[-1]
    return None


def check_extension_principle_part1(universe: Universe) -> int:
    """Verify part 1 on every applicable instance; return the count.

    Instances: configurations ``x``, events ``e`` (internal or send, on
    process ``p``) with ``(x;e)`` in the universe, and every ``y`` with
    ``x [p] y`` — then ``(y;e)`` must be in the universe, and
    ``(x;e) [p] (y;e)``.

    Raises :class:`AssertionError` with a counterexample on failure.
    """
    checked = 0
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None or event.is_receive:
                continue
            process = event.process
            for y in universe.iso_class(x, {process}):
                y_extended = y.extend(event)
                if y_extended not in universe:
                    raise AssertionError(
                        "extension principle part 1 fails: "
                        f"(y;e) missing for x={x!r}, y={y!r}, e={event}"
                    )
                if not isomorphic(extended, y_extended, {process}):
                    raise AssertionError(
                        "extension principle part 1 fails: (x;e) not [P] (y;e)"
                    )
                checked += 1
    return checked


def check_extension_principle_part2(universe: Universe) -> int:
    """Verify part 2 on every applicable instance; return the count.

    Instances: ``(x;e)`` in the universe with ``e`` internal or receive on
    ``p``, and every ``y`` with ``(x;e) [p] y`` — then ``y`` with ``e``
    deleted must be in the universe, and ``x [p] (y - e)``.
    """
    checked = 0
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None or event.is_send:
                continue
            process = event.process
            for y in universe.iso_class(extended, {process}):
                reduced = _delete_last_event(y, event)
                if reduced not in universe:
                    raise AssertionError(
                        "extension principle part 2 fails: "
                        f"(y - e) missing for y={y!r}, e={event}"
                    )
                if not isomorphic(x, reduced, {process}):
                    raise AssertionError(
                        "extension principle part 2 fails: x not [P] (y - e)"
                    )
                checked += 1
    return checked


def _delete_last_event(configuration: Configuration, event: Event) -> Configuration:
    """``(y - e)`` where ``e`` is the last event of its process in ``y``."""
    histories = dict(configuration.histories)
    history = histories[event.process]
    if history[-1] != event:
        raise ValueError(f"{event} is not the last event of its process")
    histories[event.process] = history[:-1]
    return Configuration(histories)


def check_extension_corollary(universe: Universe) -> int:
    """Corollary: for a receive ``e`` on ``P`` whose send is on ``Q``,
    ``x [P ∪ Q] y`` and ``(x;e)`` a computation imply ``(y;e)`` is too.

    Uses singleton ``P`` and ``Q`` (receiver and sender); returns the
    number of instances checked.
    """
    checked = 0
    for x in universe:
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None or not event.is_receive:
                continue
            receiver = event.process
            sender = event.message.sender  # type: ignore[attr-defined]
            both = frozenset((receiver, sender))
            for y in universe.iso_class(x, both):
                y_extended = y.extend(event)
                if y_extended not in universe:
                    raise AssertionError(
                        "extension corollary fails: (y;e) missing for "
                        f"y={y!r}, e={event}"
                    )
                checked += 1
    return checked


def related_set(
    universe: Universe, configuration: Configuration, processes: ProcessSetLike
) -> frozenset[Configuration]:
    """The set ``{z : configuration [P P̄] z}`` of Theorem 3's statement."""
    p_set = as_process_set(processes)
    complement = universe.complement(p_set)
    return frozenset(composed_class(universe, configuration, [p_set, complement]))


def _related_mask_for(
    universe: Universe, processes: frozenset
) -> Callable[[int], int]:
    """Per-configuration ``[P P̄]`` image masks, memoised per ``[P]``-class.

    The image of ``x`` depends only on the ``[P]``-class of ``x``, so
    Theorem 3's quantifier over transitions needs one composed mask per
    class, not per configuration.
    """
    complement = universe.complement(processes)
    table = universe.partition_table(processes)
    class_of = table.class_of
    results: dict[int, int] = {}

    def mask_of(config_id: int) -> int:
        index = class_of[config_id]
        mask = results.get(index)
        if mask is None:
            mask = universe.compose_masks(table.class_mask(index), complement)
            results[index] = mask
        return mask

    return mask_of


def check_theorem_3(
    universe: Universe, process_sets: Iterable[ProcessSetLike] | None = None
) -> dict[str, int]:
    """Exhaustively verify Theorem 3's three cases over a universe.

    For each transition ``x -> (x;e)`` and each candidate set ``P``
    containing the event's process:

    * receive: ``{z : (x;e) [P P̄] z}  ⊆  {z : x [P P̄] z}`` (shrinks);
    * send:    ``{z : x [P P̄] z}  ⊆  {z : (x;e) [P P̄] z}`` (grows);
    * internal: the two sets are equal.

    Returns counts per case.  Raises :class:`AssertionError` with a
    counterexample on failure.
    """
    if process_sets is None:
        candidate_sets = [frozenset((process,)) for process in sorted(universe.processes)]
    else:
        candidate_sets = [as_process_set(entry) for entry in process_sets]
    related_masks = {
        p_set: _related_mask_for(universe, p_set) for p_set in candidate_sets
    }
    counts = {"receive": 0, "send": 0, "internal": 0}
    for x in universe:
        x_id = universe.config_id(x)
        for extended in universe.successors(x):
            event = extension_event(x, extended)
            if event is None:
                continue
            extended_id = universe.config_id(extended)
            for p_set in candidate_sets:
                if event.process not in p_set:
                    continue
                mask_of = related_masks[p_set]
                before = mask_of(x_id)
                after = mask_of(extended_id)
                if event.is_receive:
                    if after & before != after:
                        raise AssertionError(
                            f"Theorem 3 (receive) fails at x={x!r}, e={event}"
                        )
                    counts["receive"] += 1
                elif event.is_send:
                    if before & after != before:
                        raise AssertionError(
                            f"Theorem 3 (send) fails at x={x!r}, e={event}"
                        )
                    counts["send"] += 1
                else:
                    if before != after:
                        raise AssertionError(
                            f"Theorem 3 (internal) fails at x={x!r}, e={event}"
                        )
                    counts["internal"] += 1
    return counts
