"""Object-level reference implementations of the isomorphism layer.

These are the pre-mask-engine implementations of the composed relation
``[P1 … Pn]`` and of the ten algebraic property checkers: they walk
:class:`~repro.core.configuration.Configuration` objects, ``projection()``
keys and Python sets, quantifying by explicit loops.  They are kept —
verbatim in behaviour — for two jobs:

* **oracles**: the cross-check tests assert the mask pipelines in
  :mod:`repro.isomorphism.relation` and :mod:`repro.isomorphism.algebra`
  are bit-identical to these on complete and truncated universes;
* **baselines**: ``repro bench`` times them against the mask engine so
  the recorded speedups are controlled before/after pairs.

Nothing here should be called on hot paths; the public API lives in
:mod:`repro.isomorphism.relation` / :mod:`repro.isomorphism.algebra`.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.isomorphism.relation import SetSequence, isomorphic
from repro.universe.explorer import Universe


def composed_class_reference(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
) -> frozenset[Configuration]:
    """All ``z`` with ``x [P1 … Pn] z`` — iterated closure on object sets."""
    universe.require(x)
    frontier: set[Configuration] = {x}
    for entry in sets:
        p_set = as_process_set(entry)
        next_frontier: set[Configuration] = set()
        seen_keys: set = set()
        for configuration in frontier:
            key = configuration.projection(p_set)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            next_frontier.update(universe.iso_class(configuration, p_set))
        frontier = next_frontier
    return frozenset(frontier)


def composed_isomorphic_reference(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> bool:
    """``x [P1 P2 … Pn] z`` by membership in the object-level class."""
    universe.require(z)
    if not sets:
        return x == z
    return z in composed_class_reference(universe, x, sets)


def find_composition_witness_reference(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> list[Configuration] | None:
    """Witness chain ``x = y0 [P1] y1 … [Pn] yn = z`` via object-set BFS."""
    universe.require(x)
    universe.require(z)
    if not sets:
        return [x] if x == z else None

    layers: list[set[Configuration]] = [{x}]
    for entry in sets:
        p_set = as_process_set(entry)
        frontier: set[Configuration] = set()
        for configuration in layers[-1]:
            frontier.update(universe.iso_class(configuration, p_set))
        layers.append(frontier)
    if z not in layers[-1]:
        return None

    witness = [z]
    current = z
    for index in range(len(sets) - 1, -1, -1):
        p_set = as_process_set(sets[index])
        for candidate in sorted(layers[index], key=lambda c: (len(c), repr(c))):
            if isomorphic(candidate, current, p_set):
                witness.append(candidate)
                current = candidate
                break
        else:
            raise AssertionError("BFS layers inconsistent with membership")
    witness.reverse()
    return witness


def sequences_equal_reference(
    universe: Universe, left: SetSequence, right: SetSequence
) -> bool:
    """Extensional equality ``[left] = [right]`` by per-configuration sets."""
    for configuration in universe:
        if composed_class_reference(
            universe, configuration, left
        ) != composed_class_reference(universe, configuration, right):
            return False
    return True


# ----------------------------------------------------------------------
# Properties 1-10, object-level (the pre-mask-engine checker bodies).
# ----------------------------------------------------------------------
def check_equivalence_reference(
    universe: Universe, processes: ProcessSetLike
) -> bool:
    """Property 1 by exhaustive transitivity scan over object classes."""
    p_set = as_process_set(processes)
    configurations = list(universe)
    for x in configurations:
        if not isomorphic(x, x, p_set):
            return False
    for x in configurations:
        for y in universe.iso_class(x, p_set):
            if not isomorphic(y, x, p_set):
                return False
            for z in universe.iso_class(y, p_set):
                if not isomorphic(x, z, p_set):
                    return False
    return True


def check_substitution_reference(
    universe: Universe,
    beta: SetSequence,
    delta: SetSequence,
    alpha: SetSequence,
    gamma: SetSequence,
) -> bool:
    """Property 2: ``[β] = [δ]`` implies ``[α β γ] = [α δ γ]``."""
    if not sequences_equal_reference(universe, beta, delta):
        return True
    return sequences_equal_reference(
        universe,
        list(alpha) + list(beta) + list(gamma),
        list(alpha) + list(delta) + list(gamma),
    )


def check_idempotence_reference(
    universe: Universe, processes: ProcessSetLike
) -> bool:
    """Property 3: ``[P P] = [P]``."""
    p_set = as_process_set(processes)
    return sequences_equal_reference(universe, [p_set, p_set], [p_set])


def check_reflexivity_reference(universe: Universe, sets: SetSequence) -> bool:
    """Property 4: ``x [P1 … Pn] x`` for every computation ``x``."""
    return all(
        composed_isomorphic_reference(universe, configuration, sets, configuration)
        for configuration in universe
    )


def check_inversion_reference(universe: Universe, sets: SetSequence) -> bool:
    """Property 5: ``x [P1 … Pn] y  =  y [Pn … P1] x``."""
    reversed_sets = list(reversed(list(sets)))
    for x in universe:
        forward = composed_class_reference(universe, x, sets)
        for y in universe:
            backward = composed_isomorphic_reference(universe, y, reversed_sets, x)
            if (y in forward) != backward:
                return False
    return True


def check_concatenation_reference(
    universe: Universe, prefix_sets: SetSequence, suffix_sets: SetSequence
) -> bool:
    """Property 6: ``∃y: x [P1…Pm] y and y [Pm+1…Pn] z  =  x [P1…Pn] z``."""
    combined = list(prefix_sets) + list(suffix_sets)
    for x in universe:
        via_definition: set[Configuration] = set()
        for y in composed_class_reference(universe, x, prefix_sets):
            via_definition.update(
                composed_class_reference(universe, y, suffix_sets)
            )
        if via_definition != composed_class_reference(universe, x, combined):
            return False
    return True


def check_union_reference(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 7: ``[P ∪ Q] = [P] ∩ [Q]``."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    union = p_set | q_set
    for x in universe:
        for y in universe:
            combined = isomorphic(x, y, union)
            separate = isomorphic(x, y, p_set) and isomorphic(x, y, q_set)
            if combined != separate:
                return False
    return True


def check_containment_reference(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 8: ``Q ⊇ P  =  [Q] ⊆ [P]`` (with the activity caveat)."""
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    relation_contained = True
    for x in universe:
        for y in universe.iso_class(x, q_set):
            if not isomorphic(x, y, p_set):
                relation_contained = False
                break
        if not relation_contained:
            break
    if q_set >= p_set:
        return relation_contained
    active = {event.process for event in universe.events()}
    if not (p_set - q_set) & active:
        return True
    return not relation_contained


def check_extensionality_reference(
    universe: Universe, first: ProcessSetLike, second: ProcessSetLike
) -> bool:
    """Property 9: ``P = Q  =  [P] = [Q]`` (same caveat as property 8)."""
    p_set = as_process_set(first)
    q_set = as_process_set(second)
    return check_containment_reference(
        universe, p_set, q_set
    ) and check_containment_reference(universe, q_set, p_set)


def check_absorption_reference(
    universe: Universe, larger: ProcessSetLike, smaller: ProcessSetLike
) -> bool:
    """Property 10: ``Q ⊇ P`` implies ``[Q P] = [P] = [P Q]``."""
    q_set = as_process_set(larger)
    p_set = as_process_set(smaller)
    if not q_set >= p_set:
        return True
    return sequences_equal_reference(
        universe, [q_set, p_set], [p_set]
    ) and sequences_equal_reference(universe, [p_set, q_set], [p_set])


def check_all_properties_reference(
    universe: Universe, max_sets: int | None = None
) -> dict[str, bool]:
    """Object-level mirror of
    :func:`repro.isomorphism.algebra.check_all_properties` — same subset
    sweep, reference checkers.  Cubic in class sizes; feasible only on
    small universes (it is the "before" column of the bench pairing).
    """
    import itertools

    processes = sorted(universe.processes)
    subsets: list[frozenset] = []
    for size in range(len(processes) + 1):
        for combo in itertools.combinations(processes, size):
            subsets.append(frozenset(combo))
    if max_sets is not None:
        subsets = subsets[:max_sets]

    results: dict[str, bool] = {}
    results["1-equivalence"] = all(
        check_equivalence_reference(universe, subset) for subset in subsets
    )
    results["3-idempotence"] = all(
        check_idempotence_reference(universe, subset) for subset in subsets
    )
    results["4-reflexivity"] = all(
        check_reflexivity_reference(universe, [subset]) for subset in subsets
    )
    results["5-inversion"] = all(
        check_inversion_reference(universe, [first, second])
        for first in subsets
        for second in subsets
    )
    results["6-concatenation"] = all(
        check_concatenation_reference(universe, [first], [second])
        for first in subsets
        for second in subsets
    )
    results["7-union"] = all(
        check_union_reference(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["8-containment"] = all(
        check_containment_reference(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["9-extensionality"] = all(
        check_extensionality_reference(universe, first, second)
        for first in subsets
        for second in subsets
        if first == second
    )
    results["10-absorption"] = all(
        check_absorption_reference(universe, first, second)
        for first in subsets
        for second in subsets
    )
    results["2-substitution"] = all(
        check_substitution_reference(universe, [first], [first], [second], [second])
        for first in subsets[: min(len(subsets), 4)]
        for second in subsets[: min(len(subsets), 4)]
    )
    return results


PROPERTY_CHECKERS_REFERENCE = {
    "1-equivalence": check_equivalence_reference,
    "2-substitution": check_substitution_reference,
    "3-idempotence": check_idempotence_reference,
    "4-reflexivity": check_reflexivity_reference,
    "5-inversion": check_inversion_reference,
    "6-concatenation": check_concatenation_reference,
    "7-union": check_union_reference,
    "8-containment": check_containment_reference,
    "9-extensionality": check_extensionality_reference,
    "10-absorption": check_absorption_reference,
}
"""Property name → object-level checker, for oracle-driven test sweeps."""
