"""The isomorphism relations ``[P]`` and ``[P1 P2 … Pn]`` (paper, §3).

``x [P] y`` holds iff every process in ``P`` has the same projection in
``x`` and ``y`` — checked directly on computations or configurations.

The composed relation ``[P1 … Pn] = [P1] ∘ … ∘ [Pn]`` existentially
quantifies over intermediate computations ("for some computation y"), so
deciding it needs a quantification domain: a :class:`repro.universe.Universe`.
:func:`composed_isomorphic` answers it by breadth-first search through
isomorphism classes, using the universe's projection indexes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.universe.explorer import Universe

SetSequence = Sequence[ProcessSetLike]
"""A sequence of process sets, written ``[P1 P2 … Pn]`` in the paper."""


def isomorphic(
    x: Computation | Configuration,
    y: Computation | Configuration,
    processes: ProcessSetLike,
) -> bool:
    """``x [P] y``: the projections of ``x`` and ``y`` on ``P`` are equal.

    ``x [{}] y`` is true for all computations, as the paper notes.
    Computations and configurations may be mixed; both are compared via
    their canonical per-process projections.
    """
    p_set = as_process_set(processes)
    x_config = _as_configuration(x)
    y_config = _as_configuration(y)
    return x_config.projection(p_set) == y_config.projection(p_set)


def _as_configuration(value: Computation | Configuration) -> Configuration:
    if isinstance(value, Configuration):
        return value
    return Configuration.from_computation(value)


def agreement_set(
    x: Computation | Configuration, y: Computation | Configuration
) -> frozenset[str]:
    """The largest ``P`` with ``x [P] y`` *among processes appearing in
    either computation*.

    This is the edge label of the isomorphism diagram.  Processes with no
    event in either computation trivially agree and are omitted; diagram
    construction adds them back relative to its universe's ``D``.
    """
    x_config = _as_configuration(x)
    y_config = _as_configuration(y)
    candidates = x_config.processes | y_config.processes
    return frozenset(
        process
        for process in candidates
        if x_config.history(process) == y_config.history(process)
    )


def composed_class(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
) -> frozenset[Configuration]:
    """All ``z`` in the universe with ``x [P1 … Pn] z``.

    Implemented as iterated closure: start from ``{x}`` and replace the
    frontier by the union of its ``[Pi]``-classes for each ``Pi`` in turn.
    """
    universe.require(x)
    frontier: set[Configuration] = {x}
    for entry in sets:
        p_set = as_process_set(entry)
        next_frontier: set[Configuration] = set()
        seen_keys: set = set()
        for configuration in frontier:
            key = configuration.projection(p_set)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            next_frontier.update(universe.iso_class(configuration, p_set))
        frontier = next_frontier
    return frozenset(frontier)


def composed_isomorphic(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> bool:
    """``x [P1 P2 … Pn] z`` relative to the universe.

    For a complete universe this is the paper's relation exactly; for a
    truncated universe it is a sound under-approximation (intermediate
    computations outside the bound are not considered).
    """
    universe.require(z)
    if not sets:
        return x == z
    return z in composed_class(universe, x, sets)


def find_composition_witness(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> list[Configuration] | None:
    """Intermediate computations ``x = y0 [P1] y1 [P2] … [Pn] yn = z``.

    Returns the full list ``[y0, …, yn]`` or ``None`` when the relation
    does not hold.  Used to render paths in isomorphism diagrams.
    """
    universe.require(x)
    universe.require(z)
    if not sets:
        return [x] if x == z else None

    # Forward BFS recording, for each layer, the set of reachable
    # configurations; then walk backwards choosing predecessors.
    layers: list[set[Configuration]] = [{x}]
    for entry in sets:
        p_set = as_process_set(entry)
        frontier: set[Configuration] = set()
        for configuration in layers[-1]:
            frontier.update(universe.iso_class(configuration, p_set))
        layers.append(frontier)
    if z not in layers[-1]:
        return None

    witness = [z]
    current = z
    for index in range(len(sets) - 1, -1, -1):
        p_set = as_process_set(sets[index])
        for candidate in sorted(layers[index], key=lambda c: (len(c), repr(c))):
            if isomorphic(candidate, current, p_set):
                witness.append(candidate)
                current = candidate
                break
        else:
            raise AssertionError("BFS layers inconsistent with membership")
    witness.reverse()
    return witness
