"""The isomorphism relations ``[P]`` and ``[P1 P2 … Pn]`` (paper, §3).

``x [P] y`` holds iff every process in ``P`` has the same projection in
``x`` and ``y`` — checked directly on computations or configurations.

The composed relation ``[P1 … Pn] = [P1] ∘ … ∘ [Pn]`` existentially
quantifies over intermediate computations ("for some computation y"), so
deciding it needs a quantification domain: a :class:`repro.universe.Universe`.
:func:`composed_isomorphic` answers it as a **mask pipeline**: the frontier
is an int bitmask over dense configuration ids, and each ``[Pi]`` step is
one :meth:`~repro.universe.explorer.Universe.compose_masks` closure (each
touched class unioned exactly once).  Witness extraction walks the layer
masks backwards with bit arithmetic.  The pre-mask object-level
implementations survive in :mod:`repro.isomorphism.reference` as the
oracles the cross-check tests compare against.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.process import ProcessSetLike, as_process_set
from repro.universe.explorer import Universe, iter_bit_ids

SetSequence = Sequence[ProcessSetLike]
"""A sequence of process sets, written ``[P1 P2 … Pn]`` in the paper."""


def isomorphic(
    x: Computation | Configuration,
    y: Computation | Configuration,
    processes: ProcessSetLike,
) -> bool:
    """``x [P] y``: the projections of ``x`` and ``y`` on ``P`` are equal.

    ``x [{}] y`` is true for all computations, as the paper notes.
    Computations and configurations may be mixed; both are compared via
    their canonical per-process projections.
    """
    p_set = as_process_set(processes)
    x_config = _as_configuration(x)
    y_config = _as_configuration(y)
    return x_config.projection(p_set) == y_config.projection(p_set)


def _as_configuration(value: Computation | Configuration) -> Configuration:
    if isinstance(value, Configuration):
        return value
    return Configuration.from_computation(value)


def agreement_set(
    x: Computation | Configuration, y: Computation | Configuration
) -> frozenset[str]:
    """The largest ``P`` with ``x [P] y`` *among processes appearing in
    either computation*.

    This is the edge label of the isomorphism diagram.  Processes with no
    event in either computation trivially agree and are omitted; diagram
    construction adds them back relative to its universe's ``D``.
    """
    x_config = _as_configuration(x)
    y_config = _as_configuration(y)
    candidates = x_config.processes | y_config.processes
    return frozenset(
        process
        for process in candidates
        if x_config.history(process) == y_config.history(process)
    )


def fold_classes(
    universe: Universe,
    classes: set[int],
    current: ProcessSetLike,
    rest: SetSequence,
) -> set[int]:
    """Propagate ``[current]``-partition class indices through ``rest``.

    One step per entry along the cached class-adjacency graph (derived
    from the memoised refinement products, so one O(n) pass per
    unordered pair serves every pipeline and property checker).
    Singleton frontiers — the common case in the per-class sweeps — skip
    the n-ary union.
    """
    for entry in rest:
        adjacency = universe.class_adjacency(current, entry)
        if len(classes) == 1:
            (index,) = classes
            classes = set(adjacency[index])
        else:
            classes = set().union(*(adjacency[index] for index in classes))
        current = entry
    return classes


def _frontier_class_sets(
    universe: Universe,
    mask: int,
    sets: SetSequence,
) -> list[set[int]]:
    """Per-layer frontier class sets of the pipeline ``mask [P1] … [Pn]``.

    Entry ``i`` (``i >= 1``) holds the ``[Pi]``-partition class indices
    reachable after ``i`` steps; entry 0 is ``None`` (the raw mask).  Only
    the first step touches configuration bits — afterwards the frontier
    propagates along the cached class-adjacency graph, so a step costs
    set operations on class indices rather than bit scans of ever-growing
    masks.
    """
    first = universe.partition_table(sets[0])
    class_of = first.class_of
    frontier = {class_of[config_id] for config_id in iter_bit_ids(mask)}
    layers: list[set[int]] = [None, frontier]  # type: ignore[list-item]
    for previous, entry in zip(sets, sets[1:]):
        frontier = fold_classes(universe, frontier, previous, [entry])
        layers.append(frontier)
    return layers


def composed_class_mask(
    universe: Universe,
    mask: int,
    sets: SetSequence,
) -> int:
    """The composed image of ``mask`` under ``[P1 … Pn]``, as a bitmask.

    The frontier is propagated at class granularity (see
    :func:`_frontier_class_sets`) and materialised once at the end via the
    final partition's memoised class-union masks.
    """
    if not sets:
        return mask
    layers = _frontier_class_sets(universe, mask, sets)
    return universe.partition_table(sets[-1]).classes_mask(layers[-1])


def composed_class(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
) -> frozenset[Configuration]:
    """All ``z`` in the universe with ``x [P1 … Pn] z``.

    A thin view over :func:`composed_class_mask` starting from the
    singleton mask of ``x``.
    """
    mask = composed_class_mask(universe, 1 << universe.config_id(x), sets)
    return frozenset(universe.configurations_in_mask(mask))


def composed_isomorphic(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> bool:
    """``x [P1 P2 … Pn] z`` relative to the universe.

    For a complete universe this is the paper's relation exactly; for a
    truncated universe it is a sound under-approximation (intermediate
    computations outside the bound are not considered).
    """
    z_id = universe.config_id(z)
    if not sets:
        return x == z
    mask = composed_class_mask(universe, 1 << universe.config_id(x), sets)
    return bool(mask >> z_id & 1)


def find_composition_witness(
    universe: Universe,
    x: Configuration,
    sets: SetSequence,
    z: Configuration,
) -> list[Configuration] | None:
    """Intermediate computations ``x = y0 [P1] y1 [P2] … [Pn] yn = z``.

    Returns the full list ``[y0, …, yn]`` or ``None`` when the relation
    does not hold.  Used to render paths in isomorphism diagrams.
    """
    x_id = universe.config_id(x)
    z_id = universe.config_id(z)
    if not sets:
        return [x] if x == z else None

    # Forward pass recording each layer's reachable classes; then walk
    # backwards intersecting each layer's mask with the [Pi]-class of the
    # current configuration and taking its lowest id (ids are in BFS
    # order, so the lowest set bit is a shortest candidate).
    layers = _frontier_class_sets(universe, 1 << x_id, sets)
    if not universe.partition_table(sets[-1]).classes_mask(
        layers[-1]
    ) >> z_id & 1:
        return None

    witness = [z]
    current = z
    for index in range(len(sets) - 1, -1, -1):
        if index == 0:
            layer_mask = 1 << x_id
        else:
            layer_mask = universe.partition_table(sets[index - 1]).classes_mask(
                layers[index]
            )
        candidates = layer_mask & universe.iso_class_mask(current, sets[index])
        if not candidates:
            raise AssertionError("composition layers inconsistent with membership")
        low = candidates & -candidates
        current = universe.configuration_of_id(low.bit_length() - 1)
        witness.append(current)
    witness.reverse()
    return witness
