"""Fusing computations (paper, §3.3: Lemma 1 and Theorem 2).

Theorem 2 (Fusion of Computations): for computations ``x <= y`` and
``x <= z`` and a process set ``P`` such that there is no process chain
``<P̄ P>`` in ``(x, y)`` and no chain ``<P P̄>`` in ``(x, z)``, there is a
computation ``w`` with ``x <= w``, ``y [P] w`` and ``z [P̄] w`` — that is,
``w`` consists of all events on ``P`` from ``y`` and all events on ``P̄``
from ``z``.

(Note on the side conditions: the scanned paper's chain directions are
typographically ambiguous; the directions above are forced by the
conclusion.  ``w`` keeps ``y``'s *P*-events while dropping ``y``'s
P̄-suffix, so no kept event may causally depend on a dropped one — i.e.
no ``<P̄ P>`` chain in ``(x, y)`` — and symmetrically for ``z``.  The
exhaustive fusion tests over explored universes confirm these are exactly
the conditions under which the construction always yields a valid
computation.)

Lemma 1 is the special case in which ``(x, y)`` has events only on ``P̄``
and ``(x, z)`` only on ``Q̄`` with ``P ∪ Q = D``: then
``w = x; (x,y); (x,z)``.

:func:`fuse` constructs ``w`` directly (take ``P``'s histories from ``y``
and ``P̄``'s from ``z``), after checking the chain side-conditions; the
construction is validated before being returned, so a successful call is
itself a proof instance of the theorem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.causality.chains import chain_in_suffix
from repro.core.configuration import Configuration
from repro.core.errors import FusionError
from repro.core.process import ProcessSetLike, as_process_set
from repro.core.validation import find_configuration_defect

if TYPE_CHECKING:
    from repro.universe.explorer import Universe


def fusion_side_conditions(
    x: Configuration,
    y: Configuration,
    z: Configuration,
    processes: ProcessSetLike,
    all_processes: ProcessSetLike,
) -> list[str]:
    """The violated hypotheses of Theorem 2, as human-readable strings.

    Empty list means the fusion is licensed.
    """
    p_set = as_process_set(processes)
    d_set = as_process_set(all_processes)
    complement = d_set - p_set
    problems: list[str] = []
    if not p_set <= d_set:
        problems.append(f"P = {sorted(p_set)} is not a subset of D")
        return problems
    if not x.is_sub_configuration_of(y):
        problems.append("x is not a prefix of y")
    if not x.is_sub_configuration_of(z):
        problems.append("x is not a prefix of z")
    if problems:
        return problems
    chain_in_y = chain_in_suffix(y, x, [complement, p_set])
    if chain_in_y is not None:
        problems.append(
            f"process chain <P̄ P> in (x, y): {[str(e) for e in chain_in_y]}"
        )
    chain_in_z = chain_in_suffix(z, x, [p_set, complement])
    if chain_in_z is not None:
        problems.append(
            f"process chain <P P̄> in (x, z): {[str(e) for e in chain_in_z]}"
        )
    return problems


def fuse(
    x: Configuration,
    y: Configuration,
    z: Configuration,
    processes: ProcessSetLike,
    all_processes: ProcessSetLike,
) -> Configuration:
    """Theorem 2's fused computation ``w``.

    ``w`` takes every process of ``P`` from ``y`` and every process of
    ``P̄`` from ``z``.  Raises :class:`FusionError` when a hypothesis fails
    or — which the theorem rules out — the assembled configuration is not
    a valid computation.
    """
    problems = fusion_side_conditions(x, y, z, processes, all_processes)
    if problems:
        raise FusionError("; ".join(problems))
    p_set = as_process_set(processes)
    d_set = as_process_set(all_processes)
    histories = {}
    for process in d_set:
        source = y if process in p_set else z
        history = source.history(process)
        if history:
            histories[process] = history
    fused = Configuration(histories)
    defect = find_configuration_defect(fused)
    if defect is not None:
        raise FusionError(
            f"fusion hypotheses held but the fused computation is invalid: {defect}"
        )
    return fused


def fusion_census(universe: "Universe", processes: ProcessSetLike) -> dict[str, int]:
    """Exhaustive Theorem-2 sweep over a universe, on partition tables.

    For every ``x <= y``, ``x <= z`` (supersets collected in one
    :meth:`~repro.universe.explorer.Universe.sub_configuration_pairs`
    pass), attempts the fusion and verifies the conclusion ``y [P] w``
    and ``z [P̄] w`` by comparing class indices in the universe's
    ``[P]``/``[P̄]`` partition tables — no projection comparisons.

    Returns ``{"licensed", "blocked", "escaped"}`` counts; ``escaped``
    (fusions leaving a *truncated* universe) is always 0 on complete
    universes, where an escape would falsify the theorem and raises.
    """
    p_set = as_process_set(processes)
    complement = universe.complement(p_set)
    p_of = universe.partition_table(p_set).class_of
    c_of = universe.partition_table(complement).class_of
    supersets: dict[Configuration, list[Configuration]] = {}
    for smaller, larger in universe.sub_configuration_pairs():
        supersets.setdefault(smaller, []).append(larger)
    licensed = blocked = escaped = 0
    for x, candidates in supersets.items():
        for y in candidates:
            for z in candidates:
                problems = fusion_side_conditions(
                    x, y, z, p_set, universe.processes
                )
                if problems:
                    blocked += 1
                    continue
                w = fuse(x, y, z, p_set, universe.processes)
                if w not in universe:
                    if universe.is_complete:
                        raise FusionError(
                            f"fusion of y={y!r}, z={z!r} escaped a complete "
                            "universe"
                        )
                    escaped += 1
                    continue
                w_id = universe.config_id(w)
                if p_of[w_id] != p_of[universe.config_id(y)]:
                    raise FusionError(f"fused w not [P]-isomorphic to y={y!r}")
                if c_of[w_id] != c_of[universe.config_id(z)]:
                    raise FusionError(f"fused w not [P̄]-isomorphic to z={z!r}")
                licensed += 1
    return {"licensed": licensed, "blocked": blocked, "escaped": escaped}


def fuse_disjoint(
    x: Configuration,
    y: Configuration,
    z: Configuration,
    processes_p: ProcessSetLike,
    processes_q: ProcessSetLike,
    all_processes: ProcessSetLike,
) -> Configuration:
    """Lemma 1's fusion: ``P ∪ Q = D``, ``x [P] y`` and ``x [Q] z``.

    Then ``w = x; (x,y); (x,z)`` satisfies ``x <= w``, ``y [Q] w`` and
    ``z [P] w``.  Implemented via :func:`fuse` with ``P' = Q`` (events of
    ``(x,y)`` are all on ``P̄``, i.e. ``y`` contributes the ``Q̄``… = ``P̄``
    side): ``w`` takes ``Q``'s histories from ``z``'s complement side.
    Raises :class:`FusionError` if ``P ∪ Q != D`` or an isomorphism
    hypothesis fails.
    """
    p_set = as_process_set(processes_p)
    q_set = as_process_set(processes_q)
    d_set = as_process_set(all_processes)
    if p_set | q_set != d_set:
        raise FusionError("Lemma 1 requires P ∪ Q = D")
    if x.projection(p_set) != y.projection(p_set):
        raise FusionError("Lemma 1 requires x [P] y")
    if x.projection(q_set) != z.projection(q_set):
        raise FusionError("Lemma 1 requires x [Q] z")
    if not (x.is_sub_configuration_of(y) and x.is_sub_configuration_of(z)):
        raise FusionError("Lemma 1 requires x <= y and x <= z")
    # (x,y) has events only on P̄ and (x,z) only on Q̄, and P̄ ∩ Q̄ = {}:
    # take P̄'s processes from y and the rest from z (processes in P ∩ Q
    # changed in neither suffix, so either source agrees there).
    histories = {}
    for process in d_set:
        source = y if process not in p_set else z
        history = source.history(process)
        if history:
            histories[process] = history
    fused = Configuration(histories)
    defect = find_configuration_defect(fused)
    if defect is not None:
        raise FusionError(
            f"Lemma 1 hypotheses held but the fused computation is invalid: {defect}"
        )
    return fused
