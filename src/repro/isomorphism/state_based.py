"""State-based isomorphism — the first generalisation of §6.

The paper closes: *"we can define isomorphism based on states of
processes, rather than computations … Most of the results in this paper
are applicable in the first case."*  This module makes that
generalisation executable.

A :class:`StateAbstraction` maps each process's local history to an
abstract *state* (any hashable value).  Two computations are
**state-isomorphic with respect to P**, written ``x [P]_s y``, when every
process of ``P`` is in the same abstract state in both.  Since equal
histories yield equal states, ``[P] ⊆ [P]_s``: the state relation is
coarser, and state-based knowledge is *weaker* — a process may know a
fact by history yet not by state (its state has forgotten how it got
there).

Executable consequences (verified by the test-suite and the E13 ablation
bench):

* ``[P]_s`` is an equivalence relation, and properties 1, 3, 4, 5, 6, 7
  of §3 carry over verbatim (they use only relation algebra);
* the knowledge facts 1–12 of §4.1 hold for state-based knowledge (the
  proofs use only that ``[P]_s`` is an equivalence indexed by ``P`` with
  ``[P ∪ Q]_s = [P]_s ∩ [Q]_s``);
* state-based knowledge is implied by computation-based knowledge for
  the same predicate, never the converse —
  :func:`knowledge_gap` measures the configurations where the two
  differ;
* Theorems 5/6 (chains) survive in the *sound* direction: gaining
  state-knowledge still requires the chain, because state-knowledge gain
  implies computation-knowledge gain of the induced predicate.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping

from repro.core.configuration import Configuration
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Formula
from repro.universe.explorer import Universe

StateFn = Callable[[tuple], Hashable]
"""Maps a local history (tuple of events) to an abstract state."""


class StateAbstraction:
    """Per-process state functions.

    ``default`` applies to processes without an explicit entry; the
    identity abstraction (``None``) keeps the full history, making
    state-isomorphism coincide with computation-isomorphism.
    """

    def __init__(
        self,
        per_process: Mapping[ProcessId, StateFn] | None = None,
        default: StateFn | None = None,
    ) -> None:
        self._per_process = dict(per_process or {})
        self._default = default

    def state_of(self, process: ProcessId, history: tuple) -> Hashable:
        fn = self._per_process.get(process, self._default)
        if fn is None:
            return history
        return fn(history)

    def configuration_state(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> tuple:
        """The canonical key of ``configuration``'s ``[P]_s``-class."""
        p_set = as_process_set(processes)
        return tuple(
            (process, self.state_of(process, configuration.history(process)))
            for process in sorted(p_set)
        )


def counting_abstraction(*tags: str) -> StateFn:
    """A standard abstraction: per-tag counts of sends/receives/internal
    events — the 'counters' view many protocol states reduce to."""

    def fn(history: tuple) -> Hashable:
        counts: dict[tuple[str, str], int] = {}
        for event in history:
            tag = getattr(event, "tag", None)
            if tag is None:
                tag = event.message.tag  # type: ignore[attr-defined]
            if tags and tag not in tags:
                continue
            key = (event.kind.value, tag)
            counts[key] = counts.get(key, 0) + 1
        return tuple(sorted(counts.items()))

    return fn


def length_abstraction() -> StateFn:
    """The coarsest useful abstraction: only the history length survives.

    Forgets message payloads entirely, so knowledge carried *in* payloads
    (e.g. a reported bit value) is lost — the abstraction that maximises
    :func:`knowledge_gap`.
    """

    def fn(history: tuple) -> Hashable:
        return len(history)

    return fn


def state_isomorphic(
    abstraction: StateAbstraction,
    x: Configuration,
    y: Configuration,
    processes: ProcessSetLike,
) -> bool:
    """``x [P]_s y``: equal abstract states on every process of ``P``."""
    p_set = as_process_set(processes)
    return abstraction.configuration_state(
        x, p_set
    ) == abstraction.configuration_state(y, p_set)


class StateKnowledgeEvaluator:
    """Model-check knowledge under state-based isomorphism.

    Mirrors :class:`~repro.knowledge.evaluator.KnowledgeEvaluator` but
    partitions the universe by abstract state.  Only the modal layer
    changes; boolean structure is delegated to a base-predicate
    evaluator.
    """

    def __init__(
        self,
        universe: Universe,
        abstraction: StateAbstraction,
        allow_incomplete: bool = False,
    ) -> None:
        self._universe = universe
        self._abstraction = abstraction
        self._base = KnowledgeEvaluator(universe, allow_incomplete=allow_incomplete)
        self._partitions: dict[frozenset[ProcessId], list[list[Configuration]]] = {}

    @property
    def universe(self) -> Universe:
        return self._universe

    def partition(self, processes: ProcessSetLike) -> list[list[Configuration]]:
        """The ``[P]_s``-classes of the universe."""
        p_set = as_process_set(processes)
        cached = self._partitions.get(p_set)
        if cached is None:
            buckets: dict[tuple, list[Configuration]] = {}
            for configuration in self._universe:
                key = self._abstraction.configuration_state(configuration, p_set)
                buckets.setdefault(key, []).append(configuration)
            cached = list(buckets.values())
            self._partitions[p_set] = cached
        return cached

    def knows_extension(
        self, processes: ProcessSetLike, formula: Formula
    ) -> frozenset[Configuration]:
        """Configurations at which ``P`` state-knows ``formula``."""
        body = self._base.extension(formula)
        satisfied: set[Configuration] = set()
        for iso_class in self.partition(processes):
            if all(member in body for member in iso_class):
                satisfied.update(iso_class)
        return frozenset(satisfied)

    def holds(
        self,
        processes: ProcessSetLike,
        formula: Formula,
        configuration: Configuration,
    ) -> bool:
        """``(P knows_s formula) at configuration``."""
        self._universe.require(configuration)
        return configuration in self.knows_extension(processes, formula)


def knowledge_gap(
    universe: Universe,
    abstraction: StateAbstraction,
    processes: ProcessSetLike,
    formula: Formula,
) -> dict[str, int]:
    """How much knowledge the state abstraction loses.

    Returns counts of configurations where the process set knows the
    formula by computation but not by state (``forgotten``), by both
    (``retained``), and by neither (``neither``).  State-knowledge
    without computation-knowledge is impossible (the state relation is
    coarser); the returned ``impossible`` count asserts that (always 0).
    """
    base = KnowledgeEvaluator(universe)
    from repro.knowledge.formula import Knows

    p_set = as_process_set(processes)
    by_computation = base.extension(Knows(p_set, formula))
    state_evaluator = StateKnowledgeEvaluator(universe, abstraction)
    by_state = state_evaluator.knows_extension(p_set, formula)
    forgotten = len(by_computation - by_state)
    retained = len(by_computation & by_state)
    impossible = len(by_state - by_computation)
    neither = len(universe) - len(by_computation | by_state)
    return {
        "retained": retained,
        "forgotten": forgotten,
        "impossible": impossible,
        "neither": neither,
    }


def check_state_knowledge_facts(
    universe: Universe,
    abstraction: StateAbstraction,
    formula: Formula,
    processes: ProcessSetLike,
) -> dict[str, bool]:
    """The §4.1 facts that only need an equivalence relation, re-proved
    for state-based knowledge on a concrete universe.

    Covers veridicality, totality, positive and negative introspection,
    and class-stability — the facts the paper says carry over.
    """
    evaluator = StateKnowledgeEvaluator(universe, abstraction)
    base = KnowledgeEvaluator(universe)
    p_set = as_process_set(processes)
    body = base.extension(formula)
    knows = evaluator.knows_extension(p_set, formula)

    results: dict[str, bool] = {}
    results["4-veridical"] = knows <= body
    results["5-total"] = True  # extensions are total by construction
    # Class stability: knowledge is constant on each [P]_s-class.
    stable = True
    for iso_class in evaluator.partition(p_set):
        values = {member in knows for member in iso_class}
        if len(values) > 1:
            stable = False
    results["1-class-property"] = stable
    # Positive introspection: K b -> K K b, i.e. the class of a knowing
    # configuration lies inside the knows-extension (holds iff stable).
    results["10-positive-introspection"] = stable
    # Negative introspection likewise reduces to class stability of the
    # complement.
    complement = frozenset(universe) - knows
    stable_negative = True
    for iso_class in evaluator.partition(p_set):
        values = {member in complement for member in iso_class}
        if len(values) > 1:
            stable_negative = False
    results["11-negative-introspection"] = stable_negative
    # State-knowledge never exceeds computation-knowledge ([P] refines
    # [P]_s, so the universal quantifier ranges over a superset).
    from repro.knowledge.formula import Knows

    results["weaker-than-computation"] = knows <= base.extension(
        Knows(p_set, formula)
    )
    return results
