"""State-based isomorphism — the first generalisation of §6.

The paper closes: *"we can define isomorphism based on states of
processes, rather than computations … Most of the results in this paper
are applicable in the first case."*  This module makes that
generalisation executable.

A :class:`StateAbstraction` maps each process's local history to an
abstract *state* (any hashable value).  Two computations are
**state-isomorphic with respect to P**, written ``x [P]_s y``, when every
process of ``P`` is in the same abstract state in both.  Since equal
histories yield equal states, ``[P] ⊆ [P]_s``: the state relation is
coarser, and state-based knowledge is *weaker* — a process may know a
fact by history yet not by state (its state has forgotten how it got
there).

Executable consequences (verified by the test-suite and the E13 ablation
bench):

* ``[P]_s`` is an equivalence relation, and properties 1, 3, 4, 5, 6, 7
  of §3 carry over verbatim (they use only relation algebra);
* the knowledge facts 1–12 of §4.1 hold for state-based knowledge (the
  proofs use only that ``[P]_s`` is an equivalence indexed by ``P`` with
  ``[P ∪ Q]_s = [P]_s ∩ [Q]_s``);
* state-based knowledge is implied by computation-based knowledge for
  the same predicate, never the converse —
  :func:`knowledge_gap` measures the configurations where the two
  differ;
* Theorems 5/6 (chains) survive in the *sound* direction: gaining
  state-knowledge still requires the chain, because state-knowledge gain
  implies computation-knowledge gain of the induced predicate.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping

from repro.core.configuration import Configuration
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Formula
from repro.universe.explorer import PartitionTable, Universe

StateFn = Callable[[tuple], Hashable]
"""Maps a local history (tuple of events) to an abstract state."""


class StateAbstraction:
    """Per-process state functions.

    ``default`` applies to processes without an explicit entry; the
    identity abstraction (``None``) keeps the full history, making
    state-isomorphism coincide with computation-isomorphism.
    """

    def __init__(
        self,
        per_process: Mapping[ProcessId, StateFn] | None = None,
        default: StateFn | None = None,
    ) -> None:
        self._per_process = dict(per_process or {})
        self._default = default

    def state_of(self, process: ProcessId, history: tuple) -> Hashable:
        fn = self._per_process.get(process, self._default)
        if fn is None:
            return history
        return fn(history)

    def configuration_state(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> tuple:
        """The canonical key of ``configuration``'s ``[P]_s``-class."""
        p_set = as_process_set(processes)
        return tuple(
            (process, self.state_of(process, configuration.history(process)))
            for process in sorted(p_set)
        )


def counting_abstraction(*tags: str) -> StateFn:
    """A standard abstraction: per-tag counts of sends/receives/internal
    events — the 'counters' view many protocol states reduce to."""

    def fn(history: tuple) -> Hashable:
        counts: dict[tuple[str, str], int] = {}
        for event in history:
            tag = getattr(event, "tag", None)
            if tag is None:
                tag = event.message.tag  # type: ignore[attr-defined]
            if tags and tag not in tags:
                continue
            key = (event.kind.value, tag)
            counts[key] = counts.get(key, 0) + 1
        return tuple(sorted(counts.items()))

    return fn


def length_abstraction() -> StateFn:
    """The coarsest useful abstraction: only the history length survives.

    Forgets message payloads entirely, so knowledge carried *in* payloads
    (e.g. a reported bit value) is lost — the abstraction that maximises
    :func:`knowledge_gap`.
    """

    def fn(history: tuple) -> Hashable:
        return len(history)

    return fn


def state_isomorphic(
    abstraction: StateAbstraction,
    x: Configuration,
    y: Configuration,
    processes: ProcessSetLike,
) -> bool:
    """``x [P]_s y``: equal abstract states on every process of ``P``."""
    p_set = as_process_set(processes)
    return abstraction.configuration_state(
        x, p_set
    ) == abstraction.configuration_state(y, p_set)


class StateKnowledgeEvaluator:
    """Model-check knowledge under state-based isomorphism.

    Mirrors :class:`~repro.knowledge.evaluator.KnowledgeEvaluator` but
    partitions the universe by abstract state.  Only the modal layer
    changes; boolean structure is delegated to a base-predicate
    evaluator.
    """

    def __init__(
        self,
        universe: Universe,
        abstraction: StateAbstraction,
        allow_incomplete: bool = False,
    ) -> None:
        self._universe = universe
        self._abstraction = abstraction
        self._base = KnowledgeEvaluator(universe, allow_incomplete=allow_incomplete)
        self._tables: dict[frozenset[ProcessId], PartitionTable] = {}

    @property
    def universe(self) -> Universe:
        return self._universe

    def partition_table(self, processes: ProcessSetLike) -> PartitionTable:
        """The ``[P]_s``-partition on dense configuration ids.

        Same :class:`~repro.universe.explorer.PartitionTable` machinery as
        the universe's computation-based ``[P]`` partitions, keyed by
        abstract state instead of projection — the modal layer runs on
        class masks either way.
        """
        p_set = as_process_set(processes)
        table = self._tables.get(p_set)
        if table is None:
            buckets: dict[tuple, list[int]] = {}
            for config_id, configuration in enumerate(self._universe):
                key = self._abstraction.configuration_state(configuration, p_set)
                buckets.setdefault(key, []).append(config_id)
            table = PartitionTable(len(self._universe), buckets)
            self._tables[p_set] = table
        return table

    def partition(self, processes: ProcessSetLike) -> list[list[Configuration]]:
        """The ``[P]_s``-classes of the universe, as configuration lists."""
        universe = self._universe
        return [
            [universe.configuration_of_id(config_id) for config_id in members]
            for members in self.partition_table(processes).members
        ]

    def knows_extension_mask(
        self, processes: ProcessSetLike, formula: Formula
    ) -> int:
        """Bitmask of configurations at which ``P`` state-knows ``formula``."""
        body = self._base.extension_mask(formula)
        return self.partition_table(processes).contained_classes_mask(body)

    def knows_extension(
        self, processes: ProcessSetLike, formula: Formula
    ) -> frozenset[Configuration]:
        """Configurations at which ``P`` state-knows ``formula``."""
        return frozenset(
            self._universe.configurations_in_mask(
                self.knows_extension_mask(processes, formula)
            )
        )

    def holds(
        self,
        processes: ProcessSetLike,
        formula: Formula,
        configuration: Configuration,
    ) -> bool:
        """``(P knows_s formula) at configuration``."""
        config_id = self._universe.config_id(configuration)
        return bool(
            self.knows_extension_mask(processes, formula) >> config_id & 1
        )


def knowledge_gap(
    universe: Universe,
    abstraction: StateAbstraction,
    processes: ProcessSetLike,
    formula: Formula,
) -> dict[str, int]:
    """How much knowledge the state abstraction loses.

    Returns counts of configurations where the process set knows the
    formula by computation but not by state (``forgotten``), by both
    (``retained``), and by neither (``neither``).  State-knowledge
    without computation-knowledge is impossible (the state relation is
    coarser); the returned ``impossible`` count asserts that (always 0).
    """
    base = KnowledgeEvaluator(universe)
    from repro.knowledge.formula import Knows

    p_set = as_process_set(processes)
    by_computation = base.extension_mask(Knows(p_set, formula))
    state_evaluator = StateKnowledgeEvaluator(universe, abstraction)
    by_state = state_evaluator.knows_extension_mask(p_set, formula)
    return {
        "retained": (by_computation & by_state).bit_count(),
        "forgotten": (by_computation & ~by_state).bit_count(),
        "impossible": (by_state & ~by_computation).bit_count(),
        "neither": len(universe) - (by_computation | by_state).bit_count(),
    }


def check_state_knowledge_facts(
    universe: Universe,
    abstraction: StateAbstraction,
    formula: Formula,
    processes: ProcessSetLike,
) -> dict[str, bool]:
    """The §4.1 facts that only need an equivalence relation, re-proved
    for state-based knowledge on a concrete universe.

    Covers veridicality, totality, positive and negative introspection,
    and class-stability — the facts the paper says carry over.
    """
    evaluator = StateKnowledgeEvaluator(universe, abstraction)
    base = KnowledgeEvaluator(universe)
    p_set = as_process_set(processes)
    body = base.extension_mask(formula)
    knows = evaluator.knows_extension_mask(p_set, formula)
    table = evaluator.partition_table(p_set)

    results: dict[str, bool] = {}
    results["4-veridical"] = knows & body == knows
    results["5-total"] = True  # extensions are total by construction
    # Class stability: knowledge is constant on each [P]_s-class — every
    # class mask lies wholly inside or wholly outside the extension.
    stable = True
    stable_negative = True
    for index in range(table.num_classes):
        class_mask = table.class_mask(index)
        overlap = class_mask & knows
        if overlap and overlap != class_mask:
            stable = False
            stable_negative = False
            break
    results["1-class-property"] = stable
    # Positive introspection: K b -> K K b, i.e. the class of a knowing
    # configuration lies inside the knows-extension (holds iff stable).
    results["10-positive-introspection"] = stable
    # Negative introspection likewise reduces to class stability of the
    # complement.
    results["11-negative-introspection"] = stable_negative
    # State-knowledge never exceeds computation-knowledge ([P] refines
    # [P]_s, so the universal quantifier ranges over a superset).
    from repro.knowledge.formula import Knows

    computation_knows = base.extension_mask(Knows(p_set, formula))
    results["weaker-than-computation"] = knows & computation_knows == knows
    return results
