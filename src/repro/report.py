"""One-shot verification report: every theorem checker, one document.

:func:`verification_report` runs the complete battery — isomorphism
properties, Theorem 1, fusion, event semantics, knowledge facts, local
predicates, common knowledge, transfer theorems, the token-bus example,
the §5 applications and the §6 generalisations — on freshly explored
universes and renders a markdown summary.  It is the library's
self-check: a downstream user (or CI job) can regenerate the entire
reproduction verdict with

    python -m repro.cli report

in well under a minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.applications.failure_detection import analyse_async, analyse_sync
from repro.applications.termination_bounds import (
    overhead_table,
    run_dijkstra_scholten,
    spontaneous_ds_workload,
    spontaneous_overhead_after_termination,
)
from repro.applications.tracking import analyse_tracking
from repro.isomorphism.algebra import check_all_properties
from repro.isomorphism.extension import check_theorem_3
from repro.isomorphism.fundamental import check_theorem_1
from repro.isomorphism.state_based import (
    StateAbstraction,
    check_state_knowledge_facts,
    length_abstraction,
)
from repro.knowledge.axioms import check_all_facts
from repro.knowledge.belief import false_belief_census
from repro.knowledge.common import check_common_knowledge
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Not
from repro.knowledge.predicates import (
    check_all_local_facts,
    has_received,
    has_sent,
)
from repro.knowledge.transfer import (
    check_theorem_4,
    check_theorem_5_gain,
    check_theorem_6_loss,
)
from repro.protocols.commit import TwoPhaseCommitProtocol
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.protocols.mutex import TokenRingMutexProtocol, check_mutual_exclusion
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.toggle import ToggleProtocol
from repro.protocols.token_bus import TokenBusProtocol, check_paper_example
from repro.simulation.scheduler import RandomScheduler
from repro.universe.explorer import Universe


@dataclass
class ReportItem:
    """One verdict line of the report."""

    experiment: str
    claim: str
    verdict: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All verdicts, renderable as markdown."""

    items: list[ReportItem] = field(default_factory=list)

    def add(self, experiment: str, claim: str, verdict: bool, detail: str = "") -> None:
        self.items.append(ReportItem(experiment, claim, verdict, detail))

    @property
    def all_hold(self) -> bool:
        return all(item.verdict for item in self.items)

    def to_markdown(self) -> str:
        lines = [
            "# Verification report — How Processes Learn (Chandy & Misra 1985)",
            "",
            f"Overall: **{'ALL CLAIMS VERIFIED' if self.all_hold else 'FAILURES FOUND'}**"
            f" ({sum(item.verdict for item in self.items)}/{len(self.items)})",
            "",
            "| experiment | claim | verdict | detail |",
            "|---|---|---|---|",
        ]
        for item in self.items:
            mark = "✓" if item.verdict else "✗ FAIL"
            lines.append(
                f"| {item.experiment} | {item.claim} | {mark} | {item.detail} |"
            )
        return "\n".join(lines)


def verification_report() -> VerificationReport:
    """Run the complete checker battery on small complete universes."""
    report = VerificationReport()

    pingpong = Universe(PingPongProtocol(rounds=2))
    evaluator = KnowledgeEvaluator(pingpong)
    b = has_received("q", "ping")
    b2 = has_sent("p", "ping")
    p_set, q_set = frozenset("p"), frozenset("q")

    # --- Section 3 -----------------------------------------------------
    properties = check_all_properties(pingpong)
    report.add(
        "E2",
        "isomorphism properties 1-10",
        all(properties.values()),
        f"{sum(properties.values())}/10 over {len(pingpong)} computations",
    )
    instances = check_theorem_1(
        pingpong, [[p_set], [q_set], [p_set, q_set], [q_set, p_set]]
    )
    report.add("E3", "Theorem 1 (chains vs isomorphism)", True,
               f"{instances} instances")
    semantics = check_theorem_3(pingpong)
    report.add(
        "E5",
        "Theorem 3 (receive shrinks / send grows)",
        semantics["receive"] > 0 and semantics["send"] > 0,
        f"{sum(semantics.values())} transitions",
    )

    # --- Section 4 -----------------------------------------------------
    facts = check_all_facts(pingpong, b, b2, p_set, q_set, evaluator=evaluator)
    report.add("E6", "knowledge facts 1-12 (incl. Lemma 2)",
               all(facts.values()), f"{sum(facts.values())}/12")
    local = check_all_local_facts(pingpong, b, q_set, p_set, evaluator=evaluator)
    report.add("E8", "local-predicate facts 1-8 + corollaries",
               all(local.values()), f"{sum(local.values())}/{len(local)}")
    common = check_common_knowledge(pingpong, b, evaluator=evaluator)
    report.add("E8", "common knowledge constant (never gained)",
               all(common.values()), "fixpoint + hierarchy + constancy")
    t4 = check_theorem_4(evaluator, [p_set, q_set], b)
    t5 = check_theorem_5_gain(evaluator, [p_set], b)
    t6 = check_theorem_6_loss(evaluator, [p_set, q_set], Not(has_sent("q", "pong")))
    report.add("E9", "Theorems 4/5/6 (knowledge transfer)",
               t4.holds and t5.holds and t6.holds,
               f"{t4.checked}+{t5.checked}+{t6.checked} instances")

    token_bus = Universe(TokenBusProtocol(max_hops=3))
    example = check_paper_example(token_bus)
    report.add("E7", "token-bus nested knowledge (§4.1)",
               bool(example["valid"]), f"{example['r_holds_count']} r-holding configs")

    # --- Section 5 -----------------------------------------------------
    tracking = analyse_tracking(Universe(ToggleProtocol(max_flips=2)))
    report.add("E10", "tracking impossibility (§5a)",
               tracking.observer_unsure_at_every_flip
               and tracking.owner_knows_observer_unsure
               and tracking.tracking_impossible,
               f"{tracking.flip_transitions} flip points")
    async_report = analyse_async(Universe(AsyncFailureMonitorProtocol(heartbeats=2)))
    report.add("E11", "failure detection impossible without timeouts (§5b)",
               async_report.impossibility_holds,
               f"{async_report.crash_configurations} crash configs, never sure")
    sync_report = analyse_sync(Universe(SyncFailureMonitorProtocol(rounds=2)))
    report.add("E11", "timeout detection possible and sound (§5b)",
               sync_report.detection_possible and sync_report.detection_sound,
               f"{sync_report.detection_configurations} detection configs")
    rows = overhead_table(process_counts=(3, 4), seeds=(0,))
    bound_met = all(row.ds_meets_bound and row.ds_overhead == row.underlying
                    for row in rows)
    scenario_run, scenario_trace = run_dijkstra_scholten(
        spontaneous_ds_workload(), RandomScheduler(0)
    )
    spontaneous = spontaneous_overhead_after_termination(
        scenario_trace, scenario_run.termination_index
    )
    report.add("E12", "termination bound: DS overhead == underlying (§5c)",
               bound_met, f"{len(rows)} workloads")
    report.add("E12", "overhead after termination, sent spontaneously (§5c)",
               spontaneous >= 1, f"{spontaneous} message(s)")

    # --- Section 6 -----------------------------------------------------
    commit = TwoPhaseCommitProtocol(("p1", "p2"))
    commit_universe = Universe(commit)
    state_facts = check_state_knowledge_facts(
        commit_universe,
        StateAbstraction(default=length_abstraction()),
        commit.all_voted_yes(),
        {"p1"},
    )
    report.add("E14", "state-based isomorphism: surviving facts (§6)",
               all(state_facts.values()), f"{sum(state_facts.values())}/{len(state_facts)}")
    async_protocol = AsyncFailureMonitorProtocol(heartbeats=2)
    async_universe = Universe(async_protocol)
    crashed = async_protocol.crashed_atom()
    census = false_belief_census(
        async_universe, lambda c: not crashed.fn(c), {"m"}, Not(crashed)
    )
    report.add("E14", "belief is not veridical (§6)",
               census["false_beliefs"] > 0,
               f"{census['false_beliefs']} false beliefs")
    mutex = check_mutual_exclusion(
        Universe(TokenRingMutexProtocol(max_hops=3, max_sessions=1))
    )
    report.add("E14", "mutual exclusion safety is knowledge",
               bool(mutex["safe"] and mutex["epistemic"]),
               f"{mutex['sessions']} CS configs")
    return report
