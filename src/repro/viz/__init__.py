"""Terminal visualisations of computations and diagrams."""

from repro.viz.render import knowledge_timeline, space_time_diagram

__all__ = ["knowledge_timeline", "space_time_diagram"]
