"""ASCII renderings: space-time diagrams and knowledge timelines.

Purely textual (terminal-friendly, no plotting dependency).  The
space-time diagram is the classic Lamport picture: one row per process,
one column per global step, with ``●`` internal events, ``▲`` sends,
``▼`` receives, and message identity resolvable from the legend.
"""

from __future__ import annotations

from repro.core.computation import Computation
from repro.core.events import InternalEvent, ReceiveEvent, SendEvent


def space_time_diagram(
    computation: Computation, max_columns: int = 120
) -> str:
    """Render a computation as a space-time diagram.

    Events beyond ``max_columns`` are elided with a trailing ``…``.
    """
    processes = sorted(computation.processes)
    width = min(len(computation), max_columns)
    rows = {process: ["-"] * width for process in processes}
    legend: list[str] = []
    for index, event in enumerate(computation):
        if index >= max_columns:
            break
        if isinstance(event, SendEvent):
            symbol = "▲"
            legend.append(f"{index:>4}  {event.process}: send {event.message}")
        elif isinstance(event, ReceiveEvent):
            symbol = "▼"
            legend.append(f"{index:>4}  {event.process}: recv {event.message}")
        else:
            assert isinstance(event, InternalEvent)
            symbol = "●"
            legend.append(
                f"{index:>4}  {event.process}: {event.tag}#{event.seq}"
            )
        rows[event.process][index] = symbol
    name_width = max((len(process) for process in processes), default=0)
    lines = []
    for process in processes:
        body = "".join(rows[process])
        suffix = "…" if len(computation) > max_columns else ""
        lines.append(f"{process:>{name_width}} |{body}{suffix}")
    lines.append("")
    lines.extend(legend[:max_columns])
    return "\n".join(lines)


def knowledge_timeline(
    computation: Computation,
    flags: dict[int, str],
) -> str:
    """Annotate step indices with knowledge milestones.

    ``flags`` maps an event index to a short description (e.g. ``"m knows
    crash"``); the renderer interleaves them with the event stream.
    """
    lines = []
    for index, event in enumerate(computation):
        marker = f"  <-- {flags[index]}" if index in flags else ""
        lines.append(f"{index:>4}  {event}{marker}")
    return "\n".join(lines)
