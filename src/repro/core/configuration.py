"""Canonical ``[D]``-class representatives of system computations.

The paper observes that ``x [D] y`` (with ``D`` the set of all processes)
holds exactly when ``y`` is a permutation of ``x``, and restricts attention
to predicates whose value is invariant under such permutation.  The entire
theory therefore only ever depends on the *tuple of per-process
projections* of a computation.  A :class:`Configuration` stores exactly
that tuple, giving one canonical object per ``[D]``-equivalence class.

Working with configurations instead of linear computations shrinks
exhaustively explored universes by the number of interleavings per class
(often exponential) without changing any answer — this is the design
decision ablated by experiment E13 (see DESIGN.md).

Because every quantifier of the theory ranges over explored universes,
constructing and deduplicating configurations is *the* hot path of the
whole system.  Three invariants make it fast (see PERFORMANCE.md):

* ``_histories`` always keeps its keys in sorted order, so projections,
  canonical keys and iteration never re-sort;
* the content hash is an order-independent sum of per-entry hashes,
  maintained *incrementally* by :meth:`extend` (one entry re-hashed per
  event instead of the whole configuration);
* configurations produced by :meth:`extend` are interned in a weak
  registry, so on the exploration hot path equal configurations are the
  *same object* and set/dict membership is effectively by identity.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Iterator, Mapping
from functools import cached_property
from types import MappingProxyType
from typing import Optional

from repro.core.computation import Computation
from repro.core.errors import InvalidConfigurationError
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set


_HASH_MODULUS = (1 << 61) - 1
"""Content hashes are sums of per-entry rolling hashes reduced mod this prime.

The reduction keeps every stored hash inside ``Py_hash_t`` range so the
value survives Python's own ``hash()`` wrapping unchanged — which is what
lets :meth:`Configuration.extend` maintain the hash incrementally (one
modular multiply-add per event) while agreeing exactly with the lazy
full computation of publicly constructed configurations.
"""

_ROLL_MULTIPLIER = 1099511628211


def _entry_hash(process: ProcessId, history: tuple[Event, ...]) -> int:
    """Rolling hash of one ``(process, history)`` entry.

    Seeded by the process name and folded event by event, so the hash of
    ``history + (event,)`` derives from the hash of ``history`` in O(1) —
    the extend fast path never re-hashes a whole history.
    """
    acc = hash(process) % _HASH_MODULUS
    for event in history:
        acc = (acc * _ROLL_MULTIPLIER + hash(event)) % _HASH_MODULUS
    return acc


_REGISTRY: dict[int, list] = {}
"""Weak intern registry: content hash -> weakrefs of live configurations.

Collisions are resolved by full structural comparison at lookup time (see
``Configuration.extend``), so a hash bucket may in principle hold several
distinct configurations.  Dead references are pruned by the single shared
:func:`_registry_cleanup` callback via the ref -> hash side table, so
insertion never allocates a per-configuration closure — exploration
inserts thousands of configurations back to back and the closure
allocation was a measurable slice of cold-start time.
"""

_REF_HASHES: dict["weakref.ref", int] = {}
"""Reverse map ref -> content hash for the shared cleanup callback."""


def _registry_cleanup(reference: "weakref.ref") -> None:
    content_hash = _REF_HASHES.pop(reference, None)
    if content_hash is None:
        return
    bucket = _REGISTRY.get(content_hash)
    if bucket is not None:
        try:
            bucket.remove(reference)
        except ValueError:
            pass
        if not bucket:
            _REGISTRY.pop(content_hash, None)


def _registry_insert(content_hash: int, configuration: "Configuration") -> None:
    reference = weakref.ref(configuration, _registry_cleanup)
    _REF_HASHES[reference] = content_hash
    _REGISTRY.setdefault(content_hash, []).append(reference)


def registry_size() -> int:
    """Number of live interned configurations (tests and diagnostics)."""
    return sum(len(bucket) for bucket in _REGISTRY.values())


def hash_domain_token() -> int:
    """Fingerprint of this interpreter's content-hash domain.

    Content hashes fold ``hash()`` of process names and events, which
    depends on the interpreter's string-hash seed (``PYTHONHASHSEED``).
    Two processes compute interchangeable content hashes — the
    precondition for exchanging them, as the sharded exploration engine
    does — exactly when their tokens agree.  Forked workers inherit the
    parent's seed and always agree; spawn-style workers only agree under
    a pinned ``PYTHONHASHSEED``, and the mismatch is detected through
    this token instead of silently mis-merging shards.
    """
    probe = "__shard_probe__"
    return (
        _entry_hash(probe, ()) * _ROLL_MULTIPLIER + hash(probe)
    ) % _HASH_MODULUS


class Configuration:
    """Immutable map from process to its local event sequence.

    Processes with empty histories are normalised away, so two
    configurations are equal iff every process has the same projection in
    both — the definition of ``x [D] y``.
    """

    __slots__ = (
        "_histories",
        "_hash",
        "_entry_hashes",
        "_length",
        "__weakref__",
        "__dict__",
    )

    def __init__(self, histories: Mapping[ProcessId, Iterable[Event]] = ()) -> None:
        items: dict[ProcessId, tuple[Event, ...]] = {}
        mapping = dict(histories)
        for process in sorted(mapping):
            history = tuple(mapping[process])
            for event in history:
                if event.process != process:
                    raise InvalidConfigurationError(
                        f"event {event} filed under process {process!r}"
                    )
            if history:
                items[process] = history
        self._histories = items
        self._hash: Optional[int] = None
        self._entry_hashes: Optional[dict[ProcessId, int]] = None
        self._length: Optional[int] = None

    @classmethod
    def _from_trusted(
        cls,
        items: dict[ProcessId, tuple[Event, ...]],
        content_hash: int,
        entry_hashes: Optional[dict[ProcessId, int]],
    ) -> "Configuration":
        """No-validate constructor for the trusted fast paths.

        ``items`` must already be normalised: sorted keys, nonempty
        tuple histories, every event filed under its own process.
        ``content_hash`` must equal the modular sum of the per-entry
        rolling hashes (the same values :meth:`__hash__` computes
        lazily).  ``entry_hashes`` may be ``None``: the exploration
        kernel keeps rolling hashes in its own history-keyed memo
        instead of copying a dict per child, and the instance recomputes
        the map lazily if it is ever extended again.
        """
        configuration = object.__new__(cls)
        configuration._histories = items
        configuration._hash = content_hash
        configuration._entry_hashes = entry_hashes
        configuration._length = None
        return configuration

    @classmethod
    def _intern_from_histories(
        cls, items: dict[ProcessId, tuple[Event, ...]]
    ) -> "Configuration":
        """Interned no-validate constructor from normalised histories.

        ``items`` must satisfy the ``_from_trusted`` contract (sorted
        keys, nonempty tuple histories, events filed under their own
        process).  Resolves against the intern registry first, so equal
        configurations built elsewhere are returned as the same object —
        one registry lookup and at most one insertion, never the
        per-event churn of rebuilding through repeated ``extend``.
        """
        entry_hashes = {
            process: _entry_hash(process, history)
            for process, history in items.items()
        }
        content_hash = sum(entry_hashes.values()) % _HASH_MODULUS
        bucket = _REGISTRY.get(content_hash)
        if bucket is not None:
            for reference in bucket:
                candidate = reference()
                if candidate is not None and candidate._histories == items:
                    return candidate
        configuration = cls._from_trusted(items, content_hash, entry_hashes)
        _registry_insert(content_hash, configuration)
        return configuration

    def _entry_hash_map(self) -> dict[ProcessId, int]:
        entry_hashes = self._entry_hashes
        if entry_hashes is None:
            entry_hashes = {
                process: _entry_hash(process, history)
                for process, history in self._histories.items()
            }
            self._entry_hashes = entry_hashes
        return entry_hashes

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._histories == other._histories

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = sum(self._entry_hash_map().values()) % _HASH_MODULUS
            self._hash = h
        return h

    def __repr__(self) -> str:
        parts = []
        for process in self._histories:
            events = " ".join(str(event) for event in self._histories[process])
            parts.append(f"{process}: {events}")
        return "Configuration(" + "; ".join(parts) + ")"

    def __len__(self) -> int:
        length = self._length
        if length is None:
            length = sum(len(history) for history in self._histories.values())
            self._length = length
        return length

    def __getstate__(self):
        """Pickle state without the ``histories`` mapping-proxy cache.

        The view is a pure cache over ``_histories`` and mapping proxies
        cannot be pickled; it rebuilds lazily on first access after a
        round-trip.  (The shared ``EMPTY_CONFIGURATION`` singleton sits
        pinned at id 0 of every arena store, so a polluted cache on it
        would otherwise make whole stores unpicklable.)
        """
        cache = {
            key: value
            for key, value in self.__dict__.items()
            if key != "histories"
        }
        slots = {
            "_histories": self._histories,
            "_hash": self._hash,
            "_entry_hashes": self._entry_hashes,
            "_length": self._length,
        }
        return (cache or None, slots)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @cached_property
    def histories(self) -> Mapping[ProcessId, tuple[Event, ...]]:
        """Read-only view of the nonempty per-process histories."""
        return MappingProxyType(self._histories)

    @property
    def processes(self) -> frozenset[ProcessId]:
        """Processes with at least one event."""
        return frozenset(self._histories)

    def history(self, process: ProcessId) -> tuple[Event, ...]:
        """The projection of this configuration on one process."""
        return self._histories.get(process, ())

    def projection(self, processes: ProcessSetLike) -> tuple[
        tuple[ProcessId, tuple[Event, ...]], ...
    ]:
        """Canonical key for the ``[P]``-class of this configuration.

        Two configurations ``x, y`` satisfy ``x [P] y`` iff their
        projections on ``P`` are equal; empty histories are omitted so the
        key does not depend on which processes exist elsewhere.

        Keys are memoised per process set: universes and evaluators ask
        for the same projections over and over while indexing.
        """
        p_set = as_process_set(processes)
        cache = self.__dict__.get("_projection_cache")
        if cache is None:
            cache = {}
            self.__dict__["_projection_cache"] = cache
        key = cache.get(p_set)
        if key is None:
            key = tuple(
                entry for entry in self._histories.items() if entry[0] in p_set
            )
            cache[p_set] = key
        return key

    def events(self) -> Iterator[Event]:
        """All events, grouped by process (process order within groups)."""
        for history in self._histories.values():
            yield from history

    @cached_property
    def event_set(self) -> frozenset[Event]:
        return frozenset(self.events())

    @cached_property
    def sent_messages(self) -> frozenset[Message]:
        """Messages with a send event somewhere in the configuration."""
        return frozenset(
            event.message for event in self.events() if isinstance(event, SendEvent)
        )

    @cached_property
    def received_messages(self) -> frozenset[Message]:
        """Messages with a receive event somewhere in the configuration."""
        return frozenset(
            event.message for event in self.events() if isinstance(event, ReceiveEvent)
        )

    @cached_property
    def in_flight_messages(self) -> frozenset[Message]:
        """Messages sent but not yet received (the channel contents)."""
        return self.sent_messages - self.received_messages

    def count_on(self, processes: ProcessSetLike) -> int:
        """Number of events on the given process set."""
        p_set = as_process_set(processes)
        return sum(
            len(history)
            for process, history in self._histories.items()
            if process in p_set
        )

    # ------------------------------------------------------------------
    # Order and extension
    # ------------------------------------------------------------------
    def is_sub_configuration_of(self, other: "Configuration") -> bool:
        """True iff each history here is a prefix of the matching history
        in ``other``.

        For valid configurations this is the configuration-level analogue
        of the paper's prefix order: ``x <= z`` on computations implies the
        corresponding configurations are so related, and every
        sub-configuration is realised by a prefix of some linearization of
        ``other`` (it is a consistent cut).
        """
        if self is other:
            return True
        other_histories = other._histories
        for process, history in self._histories.items():
            other_history = other_histories.get(process, ())
            if other_history[: len(history)] != history:
                return False
        return True

    def _extension_parts(self, event: Event) -> tuple[tuple[Event, ...], int, int]:
        """``(new_history, content_hash, new_entry)`` of ``extend(event)``.

        Derives the child's content hash from this configuration's cached
        hash with one modular multiply-add — O(1), no child construction.
        Exploration kernels use the hash to dedup against their own id
        tables before deciding whether to build anything; ``new_history``
        has the parent history as a prefix, so ``len(new_history) == 1``
        tells builders the process is new to the configuration.
        """
        process = event.process
        entry_hashes = self._entry_hashes
        if entry_hashes is None:
            entry_hashes = self._entry_hash_map()
        parent_hash = self._hash
        if parent_hash is None:
            parent_hash = self.__hash__()
        try:
            event_hash = event._hash_cache
        except AttributeError:
            event_hash = hash(event)
        old_entry = entry_hashes.get(process)
        if old_entry is None:
            new_history: tuple[Event, ...] = (event,)
            new_entry = (
                (hash(process) % _HASH_MODULUS) * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            content_hash = (parent_hash + new_entry) % _HASH_MODULUS
        else:
            new_history = self._histories[process] + (event,)
            new_entry = (old_entry * _ROLL_MULTIPLIER + event_hash) % _HASH_MODULUS
            content_hash = (parent_hash - old_entry + new_entry) % _HASH_MODULUS
        return new_history, content_hash, new_entry

    def _matches_extension(
        self,
        candidate: "Configuration",
        process: ProcessId,
        new_history: tuple[Event, ...],
    ) -> bool:
        """True iff ``candidate == self.extend(event)``, without building
        the child — O(|P|) pointer comparisons against the parent."""
        candidate_histories = candidate._histories
        if candidate_histories.get(process) != new_history:
            return False
        parent_histories = self._histories
        if len(candidate_histories) != len(parent_histories) + (
            1 if len(new_history) == 1 else 0
        ):
            return False
        for existing, history in parent_histories.items():
            if existing != process:
                other = candidate_histories.get(existing)
                if other is not history and other != history:
                    return False
        return True

    def _build_extension(
        self,
        event: Event,
        new_history: tuple[Event, ...],
        content_hash: int,
        new_entry: int,
    ) -> "Configuration":
        """Construct the child described by :meth:`_extension_parts`.

        Trusted path: no validation, no re-sorting, no registry.  Must be
        called with the values ``_extension_parts(event)`` returned (which
        also guarantees ``_entry_hashes`` is populated).
        """
        process = event.process
        parent_histories = self._histories
        if len(new_history) > 1:
            items = dict(parent_histories)
            items[process] = new_history  # same key: position preserved
        else:
            # Insert the new process at its sorted position.
            items = {}
            placed = False
            for existing, history in parent_histories.items():
                if not placed and process < existing:
                    items[process] = new_history
                    placed = True
                items[existing] = history
            if not placed:
                items[process] = new_history

        child_entry_hashes = dict(self._entry_hashes)
        child_entry_hashes[process] = new_entry
        child = Configuration._from_trusted(items, content_hash, child_entry_hashes)
        if self._length is not None:
            child._length = self._length + 1
        self._propagate_caches(child, event)
        return child

    def extend(self, event: Event) -> "Configuration":
        """The configuration with ``event`` appended to its process.

        The result is built without re-validation or re-sorting, its hash
        is derived incrementally from this configuration's hash, and
        structurally equal results are interned so repeated discoveries
        return the same object.  (The exhaustive-exploration kernel no
        longer routes through here — it dedups against its own dense id
        table via :meth:`_extension_parts`; see
        :mod:`repro.universe.explorer`.)
        """
        new_history, content_hash, new_entry = self._extension_parts(event)
        process = event.process
        # Duplicate discovery resolves against the registry with O(|P|)
        # pointer comparisons and no allocation.
        bucket = _REGISTRY.get(content_hash)
        if bucket is not None:
            for reference in bucket:
                candidate = reference()
                if candidate is not None and self._matches_extension(
                    candidate, process, new_history
                ):
                    return candidate
        child = self._build_extension(event, new_history, content_hash, new_entry)
        _registry_insert(content_hash, child)
        return child

    def extend_unregistered(self, event: Event) -> "Configuration":
        """Like :meth:`extend`, but never touches the intern registry.

        For driver loops that extend along one path and discard (or
        privately index) the intermediates — the simulator's step loop and
        the exploration kernel — where interning each child would cycle
        the weak registry once per step for no dedup benefit.  The result
        hashes and compares exactly like an interned configuration, it is
        just never the canonical instance.
        """
        new_history, content_hash, new_entry = self._extension_parts(event)
        return self._build_extension(event, new_history, content_hash, new_entry)

    def _propagate_caches(self, child: "Configuration", event: Event) -> None:
        """Derive the child's message-set caches from this configuration's.

        Exploration computes ``in_flight_messages`` for every
        configuration it pops; deriving the child's sets from the parent's
        (sharing the frozensets outright when the event does not touch
        them) turns O(events) scans per configuration into O(msgs)
        updates.  Only populated when the parent has already built the
        caches, and kept exactly equal to the lazy definitions —
        including the degenerate re-send of a message value that was
        already received, where ``sent - received`` must stay empty.
        """
        parent_cache = self.__dict__
        received = parent_cache.get("received_messages")
        in_flight = parent_cache.get("in_flight_messages")
        if received is None or in_flight is None:
            return
        child_cache = child.__dict__
        if isinstance(event, SendEvent):
            message = event.message
            child_cache["received_messages"] = received
            child_cache["in_flight_messages"] = (
                in_flight if message in received else in_flight | {message}
            )
        elif isinstance(event, ReceiveEvent):
            message = event.message
            child_cache["received_messages"] = received | {message}
            child_cache["in_flight_messages"] = in_flight - {message}
        else:
            child_cache["received_messages"] = received
            child_cache["in_flight_messages"] = in_flight

    def suffix_after(
        self, prefix: "Configuration"
    ) -> dict[ProcessId, tuple[Event, ...]]:
        """Per-process suffixes ``(x, z)`` after removing ``prefix``.

        Raises :class:`InvalidConfigurationError` if ``prefix`` is not a
        sub-configuration.
        """
        if not prefix.is_sub_configuration_of(self):
            raise InvalidConfigurationError(
                "suffix_after requires a sub-configuration"
            )
        suffixes: dict[ProcessId, tuple[Event, ...]] = {}
        for process, history in self._histories.items():
            cut = len(prefix.history(process))
            if len(history) > cut:
                suffixes[process] = history[cut:]
        return suffixes

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @staticmethod
    def from_computation(computation: Computation) -> "Configuration":
        """The ``[D]``-class of a linear computation."""
        histories = {
            process: computation.projection(process)
            for process in computation.processes
        }
        return Configuration(histories)

    def linearize(self) -> Computation:
        """A deterministic linearization of this configuration.

        Uses Kahn's algorithm over process order plus send-before-receive
        edges, breaking ties by process name, so the result is reproducible.
        Raises :class:`InvalidConfigurationError` when no linearization
        exists (cyclic causality or a receive without its send).
        """
        cursors = {process: 0 for process in self._histories}
        sent: set[Message] = set()
        output: list[Event] = []
        total = len(self)
        while len(output) < total:
            progressed = False
            for process in sorted(cursors):
                index = cursors[process]
                history = self._histories[process]
                if index >= len(history):
                    continue
                event = history[index]
                if isinstance(event, ReceiveEvent) and event.message not in sent:
                    continue
                if isinstance(event, SendEvent):
                    sent.add(event.message)
                output.append(event)
                cursors[process] += 1
                progressed = True
            if not progressed:
                raise InvalidConfigurationError(
                    "configuration has no linearization (cyclic causality or "
                    "receive without corresponding send)"
                )
        return Computation(output)


EMPTY_CONFIGURATION = Configuration({})
"""The configuration of the empty computation."""


def iter_prefix_configurations(
    events: Iterable[Event],
) -> Iterator[Configuration]:
    """Configurations of every prefix of ``events``, empty prefix first.

    Maintains the histories, per-entry rolling hashes and content hash
    incrementally — O(|P|) per step — and snapshots each prefix through
    ``_from_trusted`` **without touching the intern registry**: a
    10^5-step simulation trace yields 10^5 throwaway configurations, and
    interning each one would churn the registry with weakrefs that die on
    the next step.  The yielded objects hash and compare exactly like
    publicly constructed configurations.
    """
    items: dict[ProcessId, tuple[Event, ...]] = {}
    entry_hashes: dict[ProcessId, int] = {}
    content_hash = 0
    count = 0
    yield EMPTY_CONFIGURATION
    for event in events:
        process = event.process
        old_history = items.get(process)
        try:
            event_hash = event._hash_cache
        except AttributeError:
            event_hash = hash(event)
        if old_history is None:
            new_entry = (
                (hash(process) % _HASH_MODULUS) * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            content_hash = (content_hash + new_entry) % _HASH_MODULUS
            # Insert the new process at its sorted position.
            rebuilt: dict[ProcessId, tuple[Event, ...]] = {}
            placed = False
            for existing, history in items.items():
                if not placed and process < existing:
                    rebuilt[process] = (event,)
                    placed = True
                rebuilt[existing] = history
            if not placed:
                rebuilt[process] = (event,)
            items = rebuilt
        else:
            old_entry = entry_hashes[process]
            new_entry = (
                old_entry * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            content_hash = (content_hash - old_entry + new_entry) % _HASH_MODULUS
            items = dict(items)
            items[process] = old_history + (event,)
        entry_hashes = dict(entry_hashes)
        entry_hashes[process] = new_entry
        count += 1
        snapshot = Configuration._from_trusted(items, content_hash, entry_hashes)
        snapshot._length = count
        yield snapshot
