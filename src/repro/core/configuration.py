"""Canonical ``[D]``-class representatives of system computations.

The paper observes that ``x [D] y`` (with ``D`` the set of all processes)
holds exactly when ``y`` is a permutation of ``x``, and restricts attention
to predicates whose value is invariant under such permutation.  The entire
theory therefore only ever depends on the *tuple of per-process
projections* of a computation.  A :class:`Configuration` stores exactly
that tuple, giving one canonical object per ``[D]``-equivalence class.

Working with configurations instead of linear computations shrinks
exhaustively explored universes by the number of interleavings per class
(often exponential) without changing any answer — this is the design
decision ablated by experiment E13 (see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from functools import cached_property
from typing import Optional

from repro.core.computation import Computation
from repro.core.errors import InvalidConfigurationError
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set


class Configuration:
    """Immutable map from process to its local event sequence.

    Processes with empty histories are normalised away, so two
    configurations are equal iff every process has the same projection in
    both — the definition of ``x [D] y``.
    """

    __slots__ = ("_histories", "_hash", "__dict__")

    def __init__(self, histories: Mapping[ProcessId, Iterable[Event]] = ()) -> None:
        items: dict[ProcessId, tuple[Event, ...]] = {}
        mapping = dict(histories)
        for process in sorted(mapping):
            history = tuple(mapping[process])
            for event in history:
                if event.process != process:
                    raise InvalidConfigurationError(
                        f"event {event} filed under process {process!r}"
                    )
            if history:
                items[process] = history
        self._histories = items
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._histories == other._histories

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._histories.items())))
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for process in sorted(self._histories):
            events = " ".join(str(event) for event in self._histories[process])
            parts.append(f"{process}: {events}")
        return "Configuration(" + "; ".join(parts) + ")"

    def __len__(self) -> int:
        return sum(len(history) for history in self._histories.values())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def histories(self) -> Mapping[ProcessId, tuple[Event, ...]]:
        """Read-only view of the nonempty per-process histories."""
        return dict(self._histories)

    @property
    def processes(self) -> frozenset[ProcessId]:
        """Processes with at least one event."""
        return frozenset(self._histories)

    def history(self, process: ProcessId) -> tuple[Event, ...]:
        """The projection of this configuration on one process."""
        return self._histories.get(process, ())

    def projection(self, processes: ProcessSetLike) -> tuple[
        tuple[ProcessId, tuple[Event, ...]], ...
    ]:
        """Canonical key for the ``[P]``-class of this configuration.

        Two configurations ``x, y`` satisfy ``x [P] y`` iff their
        projections on ``P`` are equal; empty histories are omitted so the
        key does not depend on which processes exist elsewhere.
        """
        p_set = as_process_set(processes)
        return tuple(
            (process, self._histories[process])
            for process in sorted(p_set & self._histories.keys())
        )

    def events(self) -> Iterator[Event]:
        """All events, grouped by process (process order within groups)."""
        for process in sorted(self._histories):
            yield from self._histories[process]

    @cached_property
    def event_set(self) -> frozenset[Event]:
        return frozenset(self.events())

    @cached_property
    def sent_messages(self) -> frozenset[Message]:
        """Messages with a send event somewhere in the configuration."""
        return frozenset(
            event.message for event in self.events() if isinstance(event, SendEvent)
        )

    @cached_property
    def received_messages(self) -> frozenset[Message]:
        """Messages with a receive event somewhere in the configuration."""
        return frozenset(
            event.message for event in self.events() if isinstance(event, ReceiveEvent)
        )

    @cached_property
    def in_flight_messages(self) -> frozenset[Message]:
        """Messages sent but not yet received (the channel contents)."""
        return self.sent_messages - self.received_messages

    def count_on(self, processes: ProcessSetLike) -> int:
        """Number of events on the given process set."""
        p_set = as_process_set(processes)
        return sum(
            len(history)
            for process, history in self._histories.items()
            if process in p_set
        )

    # ------------------------------------------------------------------
    # Order and extension
    # ------------------------------------------------------------------
    def is_sub_configuration_of(self, other: "Configuration") -> bool:
        """True iff each history here is a prefix of the matching history
        in ``other``.

        For valid configurations this is the configuration-level analogue
        of the paper's prefix order: ``x <= z`` on computations implies the
        corresponding configurations are so related, and every
        sub-configuration is realised by a prefix of some linearization of
        ``other`` (it is a consistent cut).
        """
        for process, history in self._histories.items():
            other_history = other.history(process)
            if other_history[: len(history)] != history:
                return False
        return True

    def extend(self, event: Event) -> "Configuration":
        """The configuration with ``event`` appended to its process."""
        histories = dict(self._histories)
        histories[event.process] = self.history(event.process) + (event,)
        return Configuration(histories)

    def suffix_after(
        self, prefix: "Configuration"
    ) -> dict[ProcessId, tuple[Event, ...]]:
        """Per-process suffixes ``(x, z)`` after removing ``prefix``.

        Raises :class:`InvalidConfigurationError` if ``prefix`` is not a
        sub-configuration.
        """
        if not prefix.is_sub_configuration_of(self):
            raise InvalidConfigurationError(
                "suffix_after requires a sub-configuration"
            )
        suffixes: dict[ProcessId, tuple[Event, ...]] = {}
        for process, history in self._histories.items():
            cut = len(prefix.history(process))
            if len(history) > cut:
                suffixes[process] = history[cut:]
        return suffixes

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @staticmethod
    def from_computation(computation: Computation) -> "Configuration":
        """The ``[D]``-class of a linear computation."""
        histories = {
            process: computation.projection(process)
            for process in computation.processes
        }
        return Configuration(histories)

    def linearize(self) -> Computation:
        """A deterministic linearization of this configuration.

        Uses Kahn's algorithm over process order plus send-before-receive
        edges, breaking ties by process name, so the result is reproducible.
        Raises :class:`InvalidConfigurationError` when no linearization
        exists (cyclic causality or a receive without its send).
        """
        cursors = {process: 0 for process in self._histories}
        sent: set[Message] = set()
        output: list[Event] = []
        total = len(self)
        while len(output) < total:
            progressed = False
            for process in sorted(cursors):
                index = cursors[process]
                history = self._histories[process]
                if index >= len(history):
                    continue
                event = history[index]
                if isinstance(event, ReceiveEvent) and event.message not in sent:
                    continue
                if isinstance(event, SendEvent):
                    sent.add(event.message)
                output.append(event)
                cursors[process] += 1
                progressed = True
            if not progressed:
                raise InvalidConfigurationError(
                    "configuration has no linearization (cyclic causality or "
                    "receive without corresponding send)"
                )
        return Computation(output)


EMPTY_CONFIGURATION = Configuration({})
"""The configuration of the empty computation."""
