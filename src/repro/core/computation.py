"""System computations: finite event sequences (paper, section 2).

A :class:`Computation` is a finite sequence of events.  It is a *system
computation* when (1) each per-process projection is a process computation
of that process — a protocol-relative condition checked by
:mod:`repro.universe.protocol` — and (2) every receive event is preceded by
its corresponding send.  Condition (2) is intrinsic and enforced here (see
:func:`repro.core.validation.check_system_computation`).

The paper's notational toolkit is implemented directly:

* ``zp`` — :meth:`Computation.projection`;
* ``y < z`` (prefix) — :meth:`Computation.is_prefix_of`;
* ``(y; z)`` (concatenation) — :meth:`Computation.concat`;
* ``(x, z)`` (suffix after a prefix) — :meth:`Computation.suffix_after`;
* ``null`` — :data:`NULL`;
* ``x [D] y`` with ``x != y`` implies ``y`` is a permutation of ``x`` —
  :meth:`Computation.is_permutation_of`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from functools import cached_property
from typing import Optional

from repro.core.errors import InvalidComputationError
from repro.core.events import Event, Message, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set


class Computation(Sequence[Event]):
    """An immutable finite sequence of events.

    Computations are hashable value objects: two computations are equal iff
    their event sequences are equal.  All derived views (projections, sent
    messages, ...) are cached; instances must therefore never be mutated.
    """

    __slots__ = ("_events", "_hash", "__dict__")

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: tuple[Event, ...] = tuple(events)
        for item in self._events:
            if not isinstance(item, Event):
                raise InvalidComputationError(
                    f"computation items must be events, got {item!r}"
                )
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Computation(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Computation):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._events)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(event) for event in self._events)
        return f"Computation([{inner}])"

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        """The underlying event tuple."""
        return self._events

    def projection(self, processes: ProcessSetLike) -> tuple[Event, ...]:
        """``zP``: the subsequence of events on any process in ``processes``."""
        p_set = as_process_set(processes)
        if len(p_set) == 1:
            (process,) = p_set
            return self._projection_single(process)
        return tuple(event for event in self._events if event.process in p_set)

    def _projection_single(self, process: ProcessId) -> tuple[Event, ...]:
        return self._projection_cache.get(process, ())

    @cached_property
    def _projection_cache(self) -> dict[ProcessId, tuple[Event, ...]]:
        buckets: dict[ProcessId, list[Event]] = {}
        for event in self._events:
            buckets.setdefault(event.process, []).append(event)
        return {process: tuple(events) for process, events in buckets.items()}

    @cached_property
    def processes(self) -> frozenset[ProcessId]:
        """The processes that have at least one event in this computation."""
        return frozenset(self._projection_cache)

    def events_on(self, processes: ProcessSetLike) -> tuple[Event, ...]:
        """Alias of :meth:`projection`, reads better in chain arguments."""
        return self.projection(processes)

    def is_prefix_of(self, other: "Computation") -> bool:
        """``self <= other`` in the paper's prefix order on sequences."""
        if len(self) > len(other):
            return False
        return other._events[: len(self._events)] == self._events

    def is_proper_prefix_of(self, other: "Computation") -> bool:
        """``self < other``: prefix and strictly shorter."""
        return len(self) < len(other) and self.is_prefix_of(other)

    def suffix_after(self, prefix: "Computation") -> tuple[Event, ...]:
        """``(x, z)``: the suffix of ``self`` obtained by removing ``prefix``.

        Raises :class:`InvalidComputationError` when ``prefix`` is not a
        prefix of ``self`` — the paper's ``(x, z)`` is only defined for
        ``x <= z``.
        """
        if not prefix.is_prefix_of(self):
            raise InvalidComputationError(
                "suffix_after requires the argument to be a prefix"
            )
        return self._events[len(prefix) :]

    def concat(self, extra: Iterable[Event]) -> "Computation":
        """``(y; z)``: this computation followed by the events ``extra``."""
        return Computation(self._events + tuple(extra))

    def then(self, *extra: Event) -> "Computation":
        """Variadic :meth:`concat`, convenient for building examples."""
        return Computation(self._events + extra)

    def without_event(self, event: Event) -> "Computation":
        """``(y - e)``: delete the (unique) occurrence of ``event``.

        Used by part 2 of the Principle of Computation Extension.  Raises
        :class:`InvalidComputationError` if the event does not occur.
        """
        try:
            index = self._events.index(event)
        except ValueError as exc:
            raise InvalidComputationError(
                f"event {event} does not occur in this computation"
            ) from exc
        return Computation(self._events[:index] + self._events[index + 1 :])

    def prefixes(self) -> Iterator["Computation"]:
        """All prefixes, shortest first (system computations are prefix
        closed, so these are all system computations whenever ``self`` is)."""
        for length in range(len(self._events) + 1):
            yield Computation(self._events[:length])

    def is_permutation_of(self, other: "Computation") -> bool:
        """True iff the two computations have equal projections on every
        process — the paper's observation that ``x [D] y`` with ``x != y``
        means ``y`` is a permutation of ``x``."""
        return self._projection_cache == other._projection_cache

    # ------------------------------------------------------------------
    # Message bookkeeping
    # ------------------------------------------------------------------
    @cached_property
    def sent_messages(self) -> frozenset[Message]:
        """All messages with a send event in this computation."""
        return frozenset(
            event.message for event in self._events if isinstance(event, SendEvent)
        )

    @cached_property
    def received_messages(self) -> frozenset[Message]:
        """All messages with a receive event in this computation."""
        return frozenset(
            event.message for event in self._events if isinstance(event, ReceiveEvent)
        )

    @cached_property
    def in_flight_messages(self) -> frozenset[Message]:
        """Messages sent but not yet received (the channel contents)."""
        return self.sent_messages - self.received_messages

    def count_on(self, processes: ProcessSetLike) -> int:
        """Number of events on the given process set."""
        return len(self.projection(processes))


NULL = Computation(())
"""The empty computation, the paper's ``null``."""


def computation_of(*events: Event) -> Computation:
    """Build a computation from events given as positional arguments."""
    return Computation(events)
