"""Process identifiers and process-set utilities.

The paper (section 2) ranges over processes ``p, q`` and process *sets*
``P, Q``; the set of all processes is ``D`` and the complement of ``P`` is
written ``P̄ = D - P``.  This module provides the small amount of
machinery needed to manipulate those sets: normalisation of user input
(a single name, an iterable, or a frozenset) and complementation with
respect to an explicit ``D``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

ProcessId = str
"""Processes are identified by plain strings, e.g. ``"p"`` or ``"worker-3"``."""

ProcessSet = frozenset
"""A set of processes; always stored as ``frozenset[ProcessId]``."""

ProcessSetLike = Union[ProcessId, Iterable[ProcessId]]
"""Anything accepted where a process set is expected."""


def as_process_set(processes: ProcessSetLike) -> frozenset[ProcessId]:
    """Normalise ``processes`` to a ``frozenset`` of process ids.

    Accepts a single process name or any iterable of names::

        >>> sorted(as_process_set("p"))
        ['p']
        >>> sorted(as_process_set(["p", "q"]))
        ['p', 'q']
    """
    if isinstance(processes, str):
        return frozenset((processes,))
    if type(processes) is frozenset:
        return processes
    return frozenset(processes)


def complement(
    processes: ProcessSetLike, all_processes: ProcessSetLike
) -> frozenset[ProcessId]:
    """Return ``P̄ = D - P`` for ``P = processes`` and ``D = all_processes``.

    Raises :class:`ValueError` if ``P`` is not a subset of ``D`` — that is
    always a caller bug and silently ignoring it would make complement
    computations (and hence every theorem check built on them) wrong.
    """
    p_set = as_process_set(processes)
    d_set = as_process_set(all_processes)
    if not p_set <= d_set:
        raise ValueError(
            f"process set {sorted(p_set)} is not contained in D = {sorted(d_set)}"
        )
    return d_set - p_set


def format_process_set(processes: ProcessSetLike) -> str:
    """Human-readable rendering, e.g. ``{p,q}`` — used in diagram labels."""
    p_set = as_process_set(processes)
    return "{" + ",".join(sorted(p_set)) + "}"
