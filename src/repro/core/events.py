"""Events and messages of the Chandy–Misra model (paper, section 2).

An event on a process is a *send*, a *receive* or an *internal* event.
Events and messages are value objects: two computations that schedule the
"same" local step contain *equal* event objects, which is what makes
projection equality — and hence isomorphism ``x [P] y`` — meaningful
across different system computations.

The paper requires all events and all messages to be distinguished
("multiple occurrences of the same message are distinguished by affixing
sequence numbers to them"); the ``seq`` fields below implement exactly
that convention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.process import ProcessId


class EventKind(enum.Enum):
    """The three event types of the model."""

    SEND = "send"
    RECEIVE = "receive"
    INTERNAL = "internal"


def _cached_value_hash(self) -> int:
    """Shared ``__hash__`` for event/message value objects.

    Events and messages are hashed constantly on the exploration hot path
    (as members of history tuples and set elements); the generated
    dataclass hash re-hashes every field on every call.  Computing it once
    and stashing it on the instance makes repeated hashing O(1).
    """
    try:
        return self._hash_cache
    except AttributeError:
        value = hash(tuple(getattr(self, name) for name in self.__match_args__))
        object.__setattr__(self, "_hash_cache", value)
        return value


def _value_object_getstate(self) -> dict:
    """Pickle events/messages WITHOUT the cached hash.

    ``hash()`` values are process-local (string hashing is salted per
    interpreter, and some singleton hashes are address-derived), so a
    cached hash shipped inside a pickle silently poisons the receiving
    process: replayed objects would hash under the *writer's* salt while
    freshly built ones hash under the reader's, and content-hash dedup
    falls apart.  Stripping the cache forces every process to recompute
    under its own salt — this is what makes checkpoints genuinely
    portable across interpreter hash seeds.
    """
    state = dict(self.__dict__)
    state.pop("_hash_cache", None)
    return state


@dataclass(frozen=True, order=True)
class Message:
    """A distinguished message from ``sender`` to ``receiver``.

    ``tag`` is the protocol-level label (e.g. ``"token"``); ``seq``
    distinguishes repeated occurrences of the same logical message, per the
    paper's convention.  ``payload`` carries optional protocol data and must
    be hashable so that events remain usable as dictionary keys.
    """

    sender: ProcessId
    receiver: ProcessId
    tag: str
    seq: int = 0
    payload: Hashable = None

    __hash__ = _cached_value_hash
    __getstate__ = _value_object_getstate

    def __str__(self) -> str:
        return f"{self.tag}#{self.seq}({self.sender}->{self.receiver})"


@dataclass(frozen=True, order=True)
class Event:
    """Base class for events; use the three concrete subclasses.

    Events compare and hash structurally.  ``process`` is the process the
    event is *on* (the sender for sends, the receiver for receives).
    """

    process: ProcessId

    __hash__ = _cached_value_hash
    __getstate__ = _value_object_getstate

    @property
    def kind(self) -> EventKind:
        raise NotImplementedError

    @property
    def is_send(self) -> bool:
        return self.kind is EventKind.SEND

    @property
    def is_receive(self) -> bool:
        return self.kind is EventKind.RECEIVE

    @property
    def is_internal(self) -> bool:
        return self.kind is EventKind.INTERNAL


@dataclass(frozen=True, order=True)
class SendEvent(Event):
    """Sending of ``message`` by ``message.sender`` (== ``process``)."""

    message: Message = field(default=None)  # type: ignore[assignment]

    __hash__ = _cached_value_hash

    def __post_init__(self) -> None:
        if self.message is None:
            raise ValueError("SendEvent requires a message")
        if self.message.sender != self.process:
            raise ValueError(
                f"send event on {self.process!r} but message sender is "
                f"{self.message.sender!r}"
            )

    @property
    def kind(self) -> EventKind:
        return EventKind.SEND

    def __str__(self) -> str:
        return f"snd[{self.message}]"


@dataclass(frozen=True, order=True)
class ReceiveEvent(Event):
    """Reception of ``message`` by ``message.receiver`` (== ``process``)."""

    message: Message = field(default=None)  # type: ignore[assignment]

    __hash__ = _cached_value_hash

    def __post_init__(self) -> None:
        if self.message is None:
            raise ValueError("ReceiveEvent requires a message")
        if self.message.receiver != self.process:
            raise ValueError(
                f"receive event on {self.process!r} but message receiver is "
                f"{self.message.receiver!r}"
            )

    @property
    def kind(self) -> EventKind:
        return EventKind.RECEIVE

    def __str__(self) -> str:
        return f"rcv[{self.message}]"


@dataclass(frozen=True, order=True)
class InternalEvent(Event):
    """An internal step of ``process`` with no external communication.

    ``tag`` names the step; ``seq`` distinguishes repeated occurrences of
    the same logical step, mirroring the message convention.
    """

    tag: str = "step"
    seq: int = 0
    payload: Hashable = None

    __hash__ = _cached_value_hash

    @property
    def kind(self) -> EventKind:
        return EventKind.INTERNAL

    def __str__(self) -> str:
        return f"int[{self.process}:{self.tag}#{self.seq}]"


def send(message: Message) -> SendEvent:
    """Build the send event of ``message`` (on the message's sender)."""
    return SendEvent(process=message.sender, message=message)


def receive(message: Message) -> ReceiveEvent:
    """Build the receive event of ``message`` (on the message's receiver).

    The event is cached on the message: exploration re-offers the same
    in-flight message at every configuration along an interleaving, and
    events are value objects, so returning the same instance is sound.
    """
    try:
        return message._receive_event
    except AttributeError:
        event = ReceiveEvent(process=message.receiver, message=message)
        object.__setattr__(message, "_receive_event", event)
        return event


def internal(
    process: ProcessId, tag: str = "step", seq: int = 0, payload: Hashable = None
) -> InternalEvent:
    """Build an internal event on ``process``."""
    return InternalEvent(process=process, tag=tag, seq=seq, payload=payload)


def message_pair(
    sender: ProcessId,
    receiver: ProcessId,
    tag: str,
    seq: int = 0,
    payload: Hashable = None,
) -> tuple[SendEvent, ReceiveEvent]:
    """Build the (send, receive) event pair of one message.

    Convenience for hand-built computations::

        >>> s, r = message_pair("p", "q", "hello")
        >>> s.message is r.message
        True
    """
    msg = Message(sender=sender, receiver=receiver, tag=tag, seq=seq, payload=payload)
    return send(msg), receive(msg)


def corresponds(send_event: Event, receive_event: Event) -> bool:
    """True iff ``send_event`` is the send corresponding to ``receive_event``.

    Correspondence is by message identity: the model distinguishes all
    messages, so each receive has exactly one corresponding send.
    """
    return (
        isinstance(send_event, SendEvent)
        and isinstance(receive_event, ReceiveEvent)
        and send_event.message == receive_event.message
    )
