"""Validity checks for computations and configurations (paper, section 2).

A finite sequence of events ``z`` is a *system computation* when

1. for all processes ``p``, ``zp`` is a process computation of ``p`` —
   this half is protocol-relative and checked by
   :meth:`repro.universe.protocol.Protocol.is_process_computation`;
2. every receive event in ``z`` is preceded by its corresponding send.

This module checks condition (2) together with the paper's standing
assumption that all events and all messages are distinguished (no event
occurs twice, no message is sent or received twice).
"""

from __future__ import annotations

from repro.core.computation import Computation
from repro.core.configuration import Configuration
from repro.core.errors import InvalidComputationError, InvalidConfigurationError
from repro.core.events import Event, Message, ReceiveEvent, SendEvent


def find_computation_defect(computation: Computation) -> str | None:
    """Return a description of the first defect, or ``None`` if valid.

    Checked defects: duplicated events, duplicated sends/receives of one
    message, and receives not preceded by their corresponding send.
    """
    seen_events: set[Event] = set()
    sent: set[Message] = set()
    received: set[Message] = set()
    for event in computation:
        if event in seen_events:
            return f"event {event} occurs more than once"
        seen_events.add(event)
        if isinstance(event, SendEvent):
            if event.message in sent:
                return f"message {event.message} is sent more than once"
            sent.add(event.message)
        elif isinstance(event, ReceiveEvent):
            if event.message in received:
                return f"message {event.message} is received more than once"
            if event.message not in sent:
                return (
                    f"receive of {event.message} has no earlier corresponding send"
                )
            received.add(event.message)
    return None


def is_system_computation(computation: Computation) -> bool:
    """True iff the sequence satisfies the intrinsic validity conditions."""
    return find_computation_defect(computation) is None


def check_system_computation(computation: Computation) -> Computation:
    """Validate and return ``computation``.

    Raises :class:`InvalidComputationError` describing the first defect.
    """
    defect = find_computation_defect(computation)
    if defect is not None:
        raise InvalidComputationError(defect)
    return computation


def find_configuration_defect(configuration: Configuration) -> str | None:
    """Return a description of the first defect, or ``None`` if valid.

    A configuration is valid when its events are distinct, no message is
    sent or received twice, every received message is sent somewhere, and
    a linearization exists (equivalently: some system computation has these
    per-process projections).
    """
    seen_events: set[Event] = set()
    sent: set[Message] = set()
    received: set[Message] = set()
    for event in configuration.events():
        if event in seen_events:
            return f"event {event} occurs more than once"
        seen_events.add(event)
        if isinstance(event, SendEvent):
            if event.message in sent:
                return f"message {event.message} is sent more than once"
            sent.add(event.message)
        elif isinstance(event, ReceiveEvent):
            if event.message in received:
                return f"message {event.message} is received more than once"
            received.add(event.message)
    missing = received - sent
    if missing:
        message = sorted(missing)[0]
        return f"message {message} is received but never sent"
    try:
        configuration.linearize()
    except InvalidConfigurationError:
        return "configuration has no linearization (cyclic causality)"
    return None


def is_valid_configuration(configuration: Configuration) -> bool:
    """True iff some system computation has these projections."""
    return find_configuration_defect(configuration) is None


def check_configuration(configuration: Configuration) -> Configuration:
    """Validate and return ``configuration``.

    Raises :class:`InvalidConfigurationError` describing the first defect.
    """
    defect = find_configuration_defect(configuration)
    if defect is not None:
        raise InvalidConfigurationError(defect)
    return configuration
