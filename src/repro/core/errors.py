"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base type.  Each subclass corresponds to a distinct failure mode
of the Chandy–Misra model: malformed computations, invalid fusions,
protocol misuse, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidComputationError(ReproError):
    """A sequence of events is not a valid system computation.

    Raised when a receive event has no earlier corresponding send, when an
    event appears more than once, or when a projection is not a process
    computation of the protocol under consideration (paper, section 2).
    """


class InvalidConfigurationError(ReproError):
    """Per-process histories are not mutually consistent.

    A configuration is the canonical representative of a ``[D]``-class of
    computations.  It is invalid when some received message was never sent,
    when a message is received more than once, or when the induced causal
    order is cyclic (no linearization exists).
    """


class FusionError(ReproError):
    """The side conditions of the fusion theorem (Theorem 2) do not hold."""


class ProtocolError(ReproError):
    """A protocol definition or protocol step is ill-formed."""


class UniverseError(ReproError):
    """An operation needs a computation that is not part of the universe."""


class FormulaError(ReproError):
    """A knowledge formula is ill-formed or refers to unknown processes."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
