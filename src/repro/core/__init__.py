"""Core model of the Chandy–Misra distributed system (paper, section 2).

Events, messages, computations (linear event sequences), configurations
(canonical ``[D]``-class representatives) and their validity checks.
"""

from repro.core.computation import NULL, Computation, computation_of
from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.errors import (
    FormulaError,
    FusionError,
    InvalidComputationError,
    InvalidConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    UniverseError,
)
from repro.core.events import (
    Event,
    EventKind,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    corresponds,
    internal,
    message_pair,
    receive,
    send,
)
from repro.core.process import (
    ProcessId,
    ProcessSetLike,
    as_process_set,
    complement,
    format_process_set,
)
from repro.core.validation import (
    check_configuration,
    check_system_computation,
    find_computation_defect,
    find_configuration_defect,
    is_system_computation,
    is_valid_configuration,
)

__all__ = [
    "NULL",
    "EMPTY_CONFIGURATION",
    "Computation",
    "Configuration",
    "Event",
    "EventKind",
    "InternalEvent",
    "Message",
    "ReceiveEvent",
    "SendEvent",
    "ProcessId",
    "ProcessSetLike",
    "ReproError",
    "InvalidComputationError",
    "InvalidConfigurationError",
    "FusionError",
    "ProtocolError",
    "UniverseError",
    "FormulaError",
    "SimulationError",
    "as_process_set",
    "complement",
    "format_process_set",
    "computation_of",
    "corresponds",
    "internal",
    "message_pair",
    "receive",
    "send",
    "check_configuration",
    "check_system_computation",
    "find_computation_defect",
    "find_configuration_defect",
    "is_system_computation",
    "is_valid_configuration",
]
