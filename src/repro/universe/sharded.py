"""Multiprocess sharded frontier exploration (``Universe(..., workers=K)``).

The single-process kernel (:meth:`repro.universe.explorer.Universe._explore`)
walks the frontier one BFS layer at a time.  Because every edge extends a
configuration by exactly one event, each layer holds configurations of one
uniform event count — so duplicate discoveries can only collide *within*
the layer being expanded, never against earlier layers.  That invariant is
what makes the frontier partitionable:

* the frontier of layer ``L`` is split into ``K`` shards by the parent's
  *content hash* (``hash % K`` — shard-stable because the rolling content
  hash is a pure function of the configuration, see
  :mod:`repro.core.configuration`);
* worker ``w`` expands the parents of its shard: compiled-table enabled
  events, rolling child hashes, and *local* duplicate resolution with the
  same structural checks the kernel performs (transient children are
  materialised per locally-distinct candidate so hash collisions are
  detected exactly, not probabilistically);
* workers ship per-parent **edge batches** — a duplicate edge is one
  ``int`` (the index of the worker-local candidate it collapsed into), a
  candidate-new edge is ``(event, child_hash)``;
* the coordinator merges the batches *in global BFS order* (ascending
  parent id, original enabled-event order within a parent), resolving
  cross-worker duplicates against its authoritative id table with the
  kernel's own dedup logic, constructing each first-discovered child
  exactly once, and appending the CSR successor rows;
* the merged discovery stream ``[(parent_id, event), ...]`` is broadcast
  back (pickled once, sent ``K`` times) and every worker replays it to
  keep its replica — configurations, id table, rolling entry-hash memo —
  bit-identical to the coordinator's.

Determinism: the coordinator replay *is* the kernel's inner loop fed by a
pre-computed enabled-event stream, so the resulting universe — dense ids,
CSR successor arrays, hash table (including collision buckets),
completeness flag, truncation point under ``on_limit="truncate"`` — is
bit-identical to single-process exploration.  The test suite asserts this
on star/tree/ring broadcast, token bus, ping-pong and custom-enabling
protocols.

Workers are forked (``multiprocessing`` ``"fork"`` context): the protocol
object and its :class:`~repro.universe.protocol.CompiledStepTable` are
inherited copy-on-write, so no table handoff cost is paid up front (the
table also pickles, for explicit handoffs — see
``CompiledStepTable.__getstate__``).  Fork also inherits the interpreter's
hash seed, which the content hashes of processes and events depend on;
each worker verifies :func:`repro.core.configuration.hash_domain_token`
against the coordinator's before exploring, so a spawn-style context with
a different ``PYTHONHASHSEED`` fails loudly instead of mis-sharding.
"""

from __future__ import annotations

import gc
import multiprocessing
import pickle
import traceback
from math import inf

from repro.core.configuration import (
    _HASH_MODULUS,
    _ROLL_MULTIPLIER,
    _entry_hash,
    EMPTY_CONFIGURATION,
    Configuration,
    hash_domain_token,
)
from repro.core.errors import UniverseError

_BOUND_MESSAGE = (
    "exploration exceeded %s configurations; raise the bound or shrink "
    "the protocol"
)

_MAX_WORKERS = 64
"""Safety cap on the worker count (each worker replicates the universe)."""


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument: ``None``/``0``/``1`` mean the
    in-process kernel; ``K > 1`` means ``K`` sharded worker processes."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise UniverseError(f"workers must be >= 0, got {workers}")
    if workers > _MAX_WORKERS:
        raise UniverseError(
            f"workers must be <= {_MAX_WORKERS}, got {workers}"
        )
    return max(workers, 1)


class _Replica:
    """A worker's private copy of the universe under construction.

    Grown exclusively by :meth:`apply` — replaying the coordinator's merged
    discovery stream — so every replica (and the coordinator) holds the
    same configurations at the same dense ids, with the same hash-table
    collision buckets.
    """

    __slots__ = (
        "protocol",
        "configurations",
        "ids_by_hash",
        "entry_hash_of",
        "seed_of",
        "max_events",
        "initial_steps",
    )

    def __init__(self, protocol, max_events) -> None:
        self.protocol = protocol
        self.configurations: list[Configuration] = [EMPTY_CONFIGURATION]
        self.ids_by_hash: dict[int, int | list[int]] = {
            hash(EMPTY_CONFIGURATION): 0
        }
        # Rolling entry hashes keyed by history-tuple identity, exactly as
        # in the kernel: histories are pinned by `configurations`.
        self.entry_hash_of: dict[int, int] = {}
        self.seed_of = {
            process: hash(process) % _HASH_MODULUS
            for process in protocol.ordered_processes
        }
        self.max_events = max_events
        table = protocol.step_table
        self.initial_steps = {
            process: table.steps(process, ())
            for process in protocol.ordered_processes
        }

    # -- shared hash math ----------------------------------------------
    def _child_parts(self, parent: Configuration, event):
        """``(process, new_history, new_entry, child_hash)`` of one edge.

        The kernel's rolling-hash math verbatim: O(1) per edge via the
        history-identity entry memo.
        """
        process = event.process
        try:
            event_hash = event._hash_cache
        except AttributeError:
            event_hash = hash(event)
        parent_hash = parent._hash
        if parent_hash is None:
            parent_hash = hash(parent)
        old_history = parent._histories.get(process)
        if old_history is None:
            new_history = (event,)
            new_entry = (
                self.seed_of[process] * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            child_hash = (parent_hash + new_entry) % _HASH_MODULUS
        else:
            memo = self.entry_hash_of
            old_entry = memo.get(id(old_history))
            if old_entry is None:
                old_entry = _entry_hash(process, old_history)
                memo[id(old_history)] = old_entry
            new_history = old_history + (event,)
            new_entry = (
                old_entry * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            child_hash = (parent_hash - old_entry + new_entry) % _HASH_MODULUS
        return process, new_history, new_entry, child_hash

    @staticmethod
    def _child_items(parent: Configuration, process, new_history):
        """The child's normalised history dict (kernel construction)."""
        parent_histories = parent._histories
        if len(new_history) > 1:
            items = dict(parent_histories)
            items[process] = new_history
        else:
            items = {}
            placed = False
            for existing_process, history in parent_histories.items():
                if not placed and process < existing_process:
                    items[process] = new_history
                    placed = True
                items[existing_process] = history
            if not placed:
                items[process] = new_history
        return items

    # -- replay ---------------------------------------------------------
    def apply(self, records) -> None:
        """Replay one layer's merged discovery stream ``[(parent_id,
        event), ...]`` — append the children in stream order."""
        configurations = self.configurations
        ids_by_hash = self.ids_by_hash
        from_trusted = Configuration._from_trusted
        for parent_id, event in records:
            parent = configurations[parent_id]
            process, new_history, new_entry, child_hash = self._child_parts(
                parent, event
            )
            self.entry_hash_of[id(new_history)] = new_entry
            items = self._child_items(parent, process, new_history)
            child = from_trusted(items, child_hash, None)
            parent._propagate_caches(child, event)
            child_id = len(configurations)
            configurations.append(child)
            existing = ids_by_hash.get(child_hash)
            if existing is None:
                ids_by_hash[child_hash] = child_id
            elif type(existing) is int:
                ids_by_hash[child_hash] = [existing, child_id]
            else:
                existing.append(child_id)

    # -- expansion ------------------------------------------------------
    def expand(self, layer_start: int, layer_end: int, shard: int, shards: int):
        """Expand this shard's parents of one frontier layer.

        Returns ``(records, incomplete)``: per owned parent, in ascending
        id order, ``(parent_id, edges)`` where ``edges`` is ``None`` for a
        ``max_events``-capped parent, else a list whose elements are
        either an ``int`` (duplicate of the batch-local candidate with
        that index) or ``(event, child_hash)`` (candidate-new edge, first
        local discovery).  ``incomplete`` is True iff a capped parent
        still had enabled events (the kernel's completeness rule).
        """
        protocol = self.protocol
        configurations = self.configurations
        max_events = self.max_events
        table = protocol.step_table
        steps_for = table.steps
        by_history = table._by_history
        ordered = protocol.ordered_processes
        selective = protocol.is_selective
        custom_enabling = protocol.has_custom_enabling
        receive_sets = protocol.receive_events_for
        selective_receives = protocol.selective_receive_events
        compiled_enabled = protocol.compiled_enabled_events
        initial_steps = self.initial_steps
        child_parts = self._child_parts
        child_items = self._child_items
        from_trusted = Configuration._from_trusted

        records = []
        incomplete = False
        candidates = 0
        # Batch-local candidate table: child_hash -> [(index, transient)].
        # Transient children are materialised so local duplicate edges get
        # the kernel's structural check, not a hash-only equality.
        layer_candidates: dict[int, list] = {}
        for parent_id in range(layer_start, layer_end):
            current = configurations[parent_id]
            parent_hash = current._hash
            if parent_hash is None:
                parent_hash = hash(current)
            if parent_hash % shards != shard:
                continue
            if max_events is not None and len(current) >= max_events:
                if compiled_enabled(current):
                    incomplete = True
                records.append((parent_id, None))
                continue
            if custom_enabling:
                enabled = list(protocol.enabled_events(current))
            else:
                history_of = current._histories.get
                enabled = []
                for process in ordered:
                    history = history_of(process)
                    if history is None:
                        enabled += initial_steps[process]
                    else:
                        steps = by_history[process].get(history)
                        enabled += (
                            steps
                            if steps is not None
                            else steps_for(process, history)
                        )
                in_flight = current.in_flight_messages
                if in_flight:
                    if not selective:
                        enabled += receive_sets(in_flight)
                    else:
                        enabled += selective_receives(
                            current._histories.get, in_flight
                        )
            matches = current._matches_extension
            edges: list = []
            for event in enabled:
                process, new_history, _, child_hash = child_parts(
                    current, event
                )
                bucket = layer_candidates.get(child_hash)
                if bucket is not None:
                    resolved = None
                    for candidate_index, transient in bucket:
                        if matches(transient, process, new_history):
                            resolved = candidate_index
                            break
                    if resolved is not None:
                        edges.append(resolved)
                        continue
                transient = from_trusted(
                    child_items(current, process, new_history),
                    child_hash,
                    None,
                )
                if bucket is None:
                    layer_candidates[child_hash] = [(candidates, transient)]
                else:
                    bucket.append((candidates, transient))
                edges.append((event, child_hash))
                candidates += 1
            records.append((parent_id, edges))
        return records, incomplete


def _worker_main(connection, protocol, shard, shards, max_events, token):
    """Body of one shard worker process."""
    gc.disable()
    try:
        if hash_domain_token() != token:
            connection.send(
                (
                    "error",
                    "worker hash domain differs from the coordinator's "
                    "(sharded exploration requires the fork start method "
                    "or a pinned PYTHONHASHSEED)",
                )
            )
            return
        replica = _Replica(protocol, max_events)
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "stop":
                return
            # ("expand", records_blob, layer_start, layer_end)
            _, blob, layer_start, layer_end = message
            replica.apply(pickle.loads(blob))
            if len(replica.configurations) != layer_end:
                connection.send(
                    (
                        "error",
                        f"replica desync: {len(replica.configurations)} "
                        f"configurations, expected {layer_end}",
                    )
                )
                return
            batch, incomplete = replica.expand(
                layer_start, layer_end, shard, shards
            )
            connection.send(("batch", batch, incomplete))
    except BaseException:
        try:
            connection.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        connection.close()


class ShardedExplorer:
    """Coordinator of the multiprocess sharded frontier exploration.

    Drives ``workers`` forked shard workers through the per-layer batch
    exchange protocol described in the module docstring and merges their
    edge batches into the owning :class:`~repro.universe.explorer.Universe`
    — deterministically, so the result is bit-identical to the
    single-process kernel.
    """

    def __init__(self, protocol, max_events, workers: int) -> None:
        if workers < 2:
            raise UniverseError(
                f"sharded exploration needs at least 2 workers, got {workers}"
            )
        self._protocol = protocol
        self._max_events = max_events
        self._workers = workers

    def explore_into(self, universe, max_configurations, on_limit) -> None:
        """Run the sharded exploration, filling ``universe``'s stores."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX only
            raise UniverseError(
                "sharded exploration requires the 'fork' multiprocessing "
                "start method (content hashes depend on the interpreter's "
                "hash seed, which fork inherits)"
            ) from error
        protocol = self._protocol
        workers = self._workers
        # Warm the root's message-set caches before forking so the
        # propagate chain is unbroken in every process, as in the kernel.
        EMPTY_CONFIGURATION.received_messages
        EMPTY_CONFIGURATION.in_flight_messages
        token = hash_domain_token()
        connections = []
        processes = []
        try:
            for shard in range(workers):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_end,
                        protocol,
                        shard,
                        workers,
                        self._max_events,
                        token,
                    ),
                    daemon=True,
                )
                process.start()
                child_end.close()
                connections.append(parent_end)
                processes.append(process)
            self._explore_loop(universe, max_configurations, on_limit, connections)
            for connection in connections:
                try:
                    connection.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        finally:
            for connection in connections:
                connection.close()
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=5.0)

    def _explore_loop(
        self, universe, max_configurations, on_limit, connections
    ) -> None:
        """The coordinator side: broadcast, gather, merge, repeat."""
        workers = self._workers
        configurations = universe._configurations
        ids_by_hash = universe._ids_by_hash
        succ_ids = universe._succ_ids
        succ_offsets = universe._succ_offsets
        from_trusted = Configuration._from_trusted
        child_items = _Replica._child_items
        limit = max_configurations if max_configurations is not None else inf

        configurations.append(EMPTY_CONFIGURATION)
        ids_by_hash[hash(EMPTY_CONFIGURATION)] = 0
        count = 1
        edges = 0
        layer_start = 0
        replay: list = []  # previous layer's merged discovery stream
        bound_error: str | None = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while True:
                layer_end = count
                blob = pickle.dumps(replay, protocol=pickle.HIGHEST_PROTOCOL)
                for connection in connections:
                    connection.send(("expand", blob, layer_start, layer_end))
                batches: list = [None] * workers
                for shard, connection in enumerate(connections):
                    reply = self._receive(connection)
                    if reply[0] == "error":
                        raise UniverseError(
                            f"sharded exploration worker {shard} failed:\n"
                            f"{reply[1]}"
                        )
                    batches[shard] = reply[1]
                    if reply[2]:
                        universe._complete = False
                replay = []
                cursors = [0] * workers
                # Per worker, candidate index -> resolved global id, filled
                # in batch order as the merge walks the layer.
                candidate_ids: list[list[int]] = [[] for _ in range(workers)]
                for parent_id in range(layer_start, layer_end):
                    parent = configurations[parent_id]
                    parent_hash = parent._hash
                    if parent_hash is None:
                        parent_hash = hash(parent)
                    shard = parent_hash % workers
                    record = batches[shard][cursors[shard]]
                    cursors[shard] += 1
                    if record[0] != parent_id:
                        raise UniverseError(
                            f"sharded merge desync: worker {shard} sent "
                            f"parent {record[0]}, expected {parent_id}"
                        )
                    edge_list = record[1]
                    if edge_list is None:  # max_events-capped parent
                        succ_offsets.append(edges)
                        continue
                    resolved = candidate_ids[shard]
                    propagate = parent._propagate_caches
                    matches = parent._matches_extension
                    for edge in edge_list:
                        if type(edge) is int:
                            succ_ids.append(resolved[edge])
                            edges += 1
                            continue
                        event, child_hash = edge
                        process = event.process
                        old_history = parent._histories.get(process)
                        new_history = (
                            old_history + (event,)
                            if old_history is not None
                            else (event,)
                        )
                        existing = ids_by_hash.get(child_hash)
                        if existing is None:
                            if count >= limit:
                                bound_error = (
                                    _BOUND_MESSAGE % max_configurations
                                )
                                break
                            child_id = count
                        elif type(existing) is int:
                            if matches(
                                configurations[existing], process, new_history
                            ):
                                resolved.append(existing)
                                succ_ids.append(existing)
                                edges += 1
                                continue
                            # content-hash collision: open the bucket
                            if count >= limit:
                                bound_error = (
                                    _BOUND_MESSAGE % max_configurations
                                )
                                break
                            child_id = count
                            ids_by_hash[child_hash] = [existing, child_id]
                        else:
                            for candidate_id in existing:
                                if matches(
                                    configurations[candidate_id],
                                    process,
                                    new_history,
                                ):
                                    child_id = candidate_id
                                    break
                            else:
                                if count >= limit:
                                    bound_error = (
                                        _BOUND_MESSAGE % max_configurations
                                    )
                                    break
                                child_id = count
                                existing.append(child_id)
                            if child_id != count:
                                resolved.append(child_id)
                                succ_ids.append(child_id)
                                edges += 1
                                continue
                        # First discovery.
                        if existing is None:
                            ids_by_hash[child_hash] = child_id
                        count += 1
                        child = from_trusted(
                            child_items(parent, process, new_history),
                            child_hash,
                            None,
                        )
                        propagate(child, event)
                        configurations.append(child)
                        replay.append((parent_id, event))
                        resolved.append(child_id)
                        succ_ids.append(child_id)
                        edges += 1
                    succ_offsets.append(edges)
                    if bound_error is not None:
                        break
                if bound_error is not None:
                    break
                layer_start = layer_end
                if count == layer_end:  # no new configurations: done
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        if bound_error is not None:
            if on_limit == "raise":
                raise UniverseError(bound_error)
            universe._complete = False
            while len(succ_offsets) < len(configurations) + 1:
                succ_offsets.append(len(succ_ids))

    @staticmethod
    def _receive(connection):
        try:
            return connection.recv()
        except EOFError as error:
            raise UniverseError(
                "sharded exploration worker exited unexpectedly"
            ) from error


__all__ = ["ShardedExplorer", "resolve_workers"]
