"""Multiprocess sharded frontier exploration (``Universe(..., workers=K)``).

The single-process kernel (:meth:`repro.universe.explorer.Universe._explore`)
walks the frontier one BFS layer at a time.  Because every edge extends a
configuration by exactly one event, each layer holds configurations of one
uniform event count — so duplicate discoveries can only collide *within*
the layer being expanded, never against earlier layers.  That invariant is
what makes the frontier partitionable:

* the frontier of layer ``L`` is split into ``K`` shards by the parent's
  *content hash* (``hash % K`` — shard-stable because the rolling content
  hash is a pure function of the configuration, see
  :mod:`repro.core.configuration`);
* worker ``w`` expands the parents of its shard: compiled-table enabled
  events, rolling child hashes, and *local* duplicate resolution with the
  same structural checks the kernel performs (transient children are
  materialised per locally-distinct candidate so hash collisions are
  detected exactly, not probabilistically);
* workers ship per-parent **edge batches** — a duplicate edge is one
  ``int`` (the index of the worker-local candidate it collapsed into), a
  candidate-new edge is ``(event, child_hash)``; the batch is packed with
  the shared batch codec (:func:`repro.universe.arena.compress_batch`)
  in the worker and framed with a CRC-32 so a corrupted payload is
  rejected before it is ever inflated or unpickled;
* the coordinator merges the batches *in global BFS order* (ascending
  parent id, original enabled-event order within a parent), resolving
  cross-worker duplicates against its authoritative id table with the
  kernel's own dedup logic, constructing each first-discovered child
  exactly once, and appending the CSR successor rows;
* the merged discovery stream ``[(parent_id, event), ...]`` is broadcast
  back (batch-compressed once, sent ``K`` times) and every worker replays
  it to keep its replica bit-identical to the coordinator's frontier.

Worker replicas are **packed** (PR 9, :class:`_PackedReplica`): because
shard expansion only ever reads the *current* frontier layer — batch
dedup is layer-local by the uniform-event-count argument above, and
cross-layer collisions are resolved coordinator-side — a worker keeps no
``Configuration`` objects and no id table at all.  Its state is one
window of packed history rows (fixed-width tuples in
``ordered_processes`` order, exactly the representation of the arena
kernel ``Universe._explore_packed``) plus per-layer-interned
received/in-flight message frozensets; replaying the discovery stream
advances the window floor parent-by-parent, so replaying the *full*
stream after a respawn still peaks at one layer of rows.  That removes
the (K+1)× object-store replication that made sharded n≥8 RAM-infeasible.
The object-store replica (:class:`_Replica`) survives as the
coordinator's fold-in fallback and as the measured baseline of the
``sharded_rss_*`` bench pair.

Determinism: the coordinator replay *is* the kernel's inner loop fed by a
pre-computed enabled-event stream, so the resulting universe — dense ids,
CSR successor arrays, hash table (including collision buckets),
completeness flag, truncation point under ``on_limit="truncate"`` — is
bit-identical to single-process exploration.  The test suite asserts this
on star/tree/ring broadcast, token bus, ping-pong and custom-enabling
protocols.

Fault tolerance (PR 6).  The coordinator never blocks on a bare
``recv()``: every wait is a bounded ``multiprocessing.connection.wait``
poll, workers send heartbeats while expanding (every
``SupervisionPolicy.heartbeat_parents`` parents and every
``heartbeat_records`` replayed records), and a worker that crashes
(``EOFError``/``BrokenPipeError``), hangs (heartbeat timeout) or ships a
corrupt frame (CRC mismatch) surfaces as a typed :class:`WorkerFailure`
instead of a deadlock.  Recovery leans on the same purity that makes the
engine deterministic: **shard expansion is a pure function of the merged
discovery stream**, and the stream is reconstructible from the
coordinator's own CSR store (:func:`discovery_stream`), so the
coordinator either

* **respawns** a replacement worker and feeds it the full reconstructed
  stream as its first replay (the replacement rebuilds the replica and
  re-expands the failed layer shard — bit-identical by construction), or
* once the respawn budget (``SupervisionPolicy.max_respawns``) is spent,
  **folds** the dead worker's shard into itself: the coordinator owns the
  authoritative state and expands that shard in-process for the rest of
  the run.  The shard *assignment* (``hash % K``) never changes — only
  who executes a shard — which is exactly why recovery cannot perturb
  the result.

Worker-side exceptions are shipped as structured error frames (type,
message, original traceback) and re-raised by the coordinator as
:class:`WorkerError` — deterministic application errors are *not*
retried, because a replacement would fail identically.

Deterministic fault injection (:mod:`repro.universe.faults`) threads
through ``_worker_main`` so every one of these recovery paths is
exercised by tests and by ``repro bench --suite fault-recovery``;
layer-boundary checkpointing and the RSS watchdog
(:mod:`repro.universe.checkpoint`) hook into the layer loop.

Workers are forked (``multiprocessing`` ``"fork"`` context): the protocol
object and its :class:`~repro.universe.protocol.CompiledStepTable` are
inherited copy-on-write, so no table handoff cost is paid up front (the
table also pickles, for explicit handoffs — see
``CompiledStepTable.__getstate__``).  Fork also inherits the interpreter's
hash seed, which the content hashes of processes and events depend on;
each worker verifies :func:`repro.core.configuration.hash_domain_token`
against the coordinator's before exploring, so a spawn-style context with
a different ``PYTHONHASHSEED`` fails loudly instead of mis-sharding.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import traceback
import zlib
from dataclasses import dataclass
from math import inf
from multiprocessing.connection import wait as _connection_wait

from repro.core.configuration import (
    _HASH_MODULUS,
    _ROLL_MULTIPLIER,
    _entry_hash,
    EMPTY_CONFIGURATION,
    Configuration,
    hash_domain_token,
)
from repro.core.errors import UniverseError
from repro.core.events import ReceiveEvent, SendEvent
from repro.universe.arena import ArenaStore, compress_batch, decompress_batch
from repro.universe.recovery import RecoveryLog
from repro.universe.retry import (
    TRANSIENT_SPAWN_ERRNOS,
    is_storage_error,
    transient_spawn_error,
)

_BOUND_MESSAGE = (
    "exploration exceeded %s configurations; raise the bound or shrink "
    "the protocol"
)

_MAX_WORKERS = 64
"""Safety cap on the worker count (each worker replicates the frontier)."""

_DEFAULT_REPLICA = "packed"
"""Worker replica representation: ``"packed"`` (window of packed history
rows, the production default) or ``"objects"`` (full Configuration-list
replica — retained as the measured memory baseline of the
``sharded_rss_*`` bench pair)."""


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument: ``None``/``0``/``1`` mean the
    in-process kernel; ``K > 1`` means ``K`` sharded worker processes."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise UniverseError(f"workers must be >= 0, got {workers}")
    if workers > _MAX_WORKERS:
        raise UniverseError(
            f"workers must be <= {_MAX_WORKERS}, got {workers}"
        )
    return max(workers, 1)


# Spawn-transient classification lives in the shared typed-retry module
# now (PR 10); these aliases keep the original names importable.
_TRANSIENT_SPAWN_ERRNOS = TRANSIENT_SPAWN_ERRNOS
_transient_spawn_error = transient_spawn_error


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables of the coordinator's worker supervision.

    ``heartbeat_timeout`` is how long a worker may stay silent (no
    heartbeat, no batch) before it is declared hung; workers emit a
    heartbeat every ``heartbeat_parents`` expanded parents and every
    ``heartbeat_records`` replayed records, so the gap between
    heartbeats under normal operation is bounded work, not a layer.
    ``max_respawns`` is the total replacement budget for the whole
    exploration (``None`` means one per worker); once spent, further
    failures fold the shard into the coordinator.  ``poll_interval``
    bounds every coordinator wait; ``join_timeout`` bounds teardown.

    ``spawn_attempts``/``spawn_backoff`` make worker *starts* resilient:
    a transient ``Process.start`` failure (fork EAGAIN under pid/memory
    pressure, "resource temporarily unavailable") is retried up to
    ``spawn_attempts`` times with exponential backoff starting at
    ``spawn_backoff`` seconds before the failure counts — at initial
    spawn it then raises, at respawn it folds the shard.
    """

    heartbeat_timeout: float = 30.0
    poll_interval: float = 0.05
    heartbeat_parents: int = 2048
    heartbeat_records: int = 200_000
    max_respawns: int | None = None
    join_timeout: float = 5.0
    spawn_attempts: int = 3
    spawn_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.heartbeat_timeout <= 0:
            raise UniverseError("heartbeat_timeout must be positive")
        if self.poll_interval <= 0:
            raise UniverseError("poll_interval must be positive")
        if self.heartbeat_parents < 1 or self.heartbeat_records < 1:
            raise UniverseError("heartbeat chunk sizes must be >= 1")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise UniverseError("max_respawns must be >= 0")
        if self.spawn_attempts < 1:
            raise UniverseError("spawn_attempts must be >= 1")
        if self.spawn_backoff < 0:
            raise UniverseError("spawn_backoff must be >= 0")

    def resolve_respawns(self, workers: int) -> int:
        return workers if self.max_respawns is None else self.max_respawns


class WorkerFailure(Exception):
    """Internal control-flow signal: worker ``shard`` failed *environmentally*
    (crash, hang, corrupt frame) and the layer must be recovered.

    Never escapes :class:`ShardedExplorer` — it is consumed by the
    failover logic.  Deterministic application errors travel as
    :class:`WorkerError` instead and are never retried.
    """

    def __init__(self, shard: int, kind: str, detail: str = "") -> None:
        super().__init__(f"worker {shard} {kind}: {detail}")
        self.shard = shard
        self.kind = kind  # "exit" | "timeout" | "corrupt" | "storage"
        self.detail = detail


class WorkerError(UniverseError):
    """A worker raised a real exception; re-raised by the coordinator
    with the worker's original traceback preserved in the message and in
    :attr:`worker_traceback`."""

    def __init__(self, shard: int, payload: dict) -> None:
        self.shard = shard
        self.worker_type = payload.get("type", "Exception")
        self.worker_traceback = payload.get("traceback") or ""
        text = (
            f"sharded exploration worker {shard} failed with "
            f"{self.worker_type}: {payload.get('message', '')}"
        )
        if self.worker_traceback:
            text += (
                "\n--- original worker traceback ---\n"
                + self.worker_traceback
            )
        super().__init__(text)


class _Replica:
    """A worker's private copy of the universe under construction.

    Grown exclusively by :meth:`apply` — replaying the coordinator's merged
    discovery stream — so every replica (and the coordinator) holds the
    same configurations at the same dense ids, with the same hash-table
    collision buckets.
    """

    __slots__ = (
        "protocol",
        "configurations",
        "ids_by_hash",
        "entry_hash_of",
        "seed_of",
        "max_events",
        "initial_steps",
    )

    def __init__(self, protocol, max_events) -> None:
        self.protocol = protocol
        self.configurations: list[Configuration] = [EMPTY_CONFIGURATION]
        self.ids_by_hash: dict[int, int | list[int]] = {
            hash(EMPTY_CONFIGURATION): 0
        }
        # Rolling entry hashes keyed by history-tuple identity, exactly as
        # in the kernel: histories are pinned by `configurations`.
        self.entry_hash_of: dict[int, int] = {}
        self.seed_of = {
            process: hash(process) % _HASH_MODULUS
            for process in protocol.ordered_processes
        }
        self.max_events = max_events
        table = protocol.step_table
        self.initial_steps = {
            process: table.steps(process, ())
            for process in protocol.ordered_processes
        }

    @classmethod
    def attached(cls, protocol, max_events, configurations) -> "_Replica":
        """A replica that *reads* an externally owned configuration list
        (the coordinator's) instead of maintaining its own — used to fold
        a dead worker's shard into the coordinator.  Only :meth:`expand`
        may be called on it."""
        replica = cls(protocol, max_events)
        replica.configurations = configurations
        return replica

    # -- shared hash math ----------------------------------------------
    def _child_parts(self, parent: Configuration, event):
        """``(process, new_history, new_entry, child_hash)`` of one edge.

        The kernel's rolling-hash math verbatim: O(1) per edge via the
        history-identity entry memo.
        """
        process = event.process
        try:
            event_hash = event._hash_cache
        except AttributeError:
            event_hash = hash(event)
        parent_hash = parent._hash
        if parent_hash is None:
            parent_hash = hash(parent)
        old_history = parent._histories.get(process)
        if old_history is None:
            new_history = (event,)
            new_entry = (
                self.seed_of[process] * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            child_hash = (parent_hash + new_entry) % _HASH_MODULUS
        else:
            memo = self.entry_hash_of
            old_entry = memo.get(id(old_history))
            if old_entry is None:
                old_entry = _entry_hash(process, old_history)
                memo[id(old_history)] = old_entry
            new_history = old_history + (event,)
            new_entry = (
                old_entry * _ROLL_MULTIPLIER + event_hash
            ) % _HASH_MODULUS
            child_hash = (parent_hash - old_entry + new_entry) % _HASH_MODULUS
        return process, new_history, new_entry, child_hash

    @staticmethod
    def _child_items(parent: Configuration, process, new_history):
        """The child's normalised history dict (kernel construction)."""
        parent_histories = parent._histories
        if len(new_history) > 1:
            items = dict(parent_histories)
            items[process] = new_history
        else:
            items = {}
            placed = False
            for existing_process, history in parent_histories.items():
                if not placed and process < existing_process:
                    items[process] = new_history
                    placed = True
                items[existing_process] = history
            if not placed:
                items[process] = new_history
        return items

    # -- replay ---------------------------------------------------------
    def apply(self, records, progress=None, progress_every: int = 0) -> None:
        """Replay a merged discovery stream ``[(parent_id, event), ...]``
        — append the children in stream order.  ``progress`` (if given)
        is invoked every ``progress_every`` records so a worker replaying
        a huge layer keeps its heartbeat alive."""
        configurations = self.configurations
        ids_by_hash = self.ids_by_hash
        from_trusted = Configuration._from_trusted
        since_progress = 0
        for parent_id, event in records:
            parent = configurations[parent_id]
            process, new_history, new_entry, child_hash = self._child_parts(
                parent, event
            )
            self.entry_hash_of[id(new_history)] = new_entry
            items = self._child_items(parent, process, new_history)
            child = from_trusted(items, child_hash, None)
            parent._propagate_caches(child, event)
            child_id = len(configurations)
            configurations.append(child)
            existing = ids_by_hash.get(child_hash)
            if existing is None:
                ids_by_hash[child_hash] = child_id
            elif type(existing) is int:
                ids_by_hash[child_hash] = [existing, child_id]
            else:
                existing.append(child_id)
            if progress is not None:
                since_progress += 1
                if since_progress >= progress_every:
                    since_progress = 0
                    progress()

    # -- expansion ------------------------------------------------------
    def expand(
        self,
        layer_start: int,
        layer_end: int,
        shard: int,
        shards: int,
        progress=None,
        progress_every: int = 0,
    ):
        """Expand this shard's parents of one frontier layer.

        Returns ``(records, incomplete)``: per owned parent, in ascending
        id order, ``(parent_id, edges)`` where ``edges`` is ``None`` for a
        ``max_events``-capped parent, else a list whose elements are
        either an ``int`` (duplicate of the batch-local candidate with
        that index) or ``(event, child_hash)`` (candidate-new edge, first
        local discovery).  ``incomplete`` is True iff a capped parent
        still had enabled events (the kernel's completeness rule).

        ``progress`` (if given) is invoked every ``progress_every``
        *owned* parents — the worker-side heartbeat hook.
        """
        protocol = self.protocol
        configurations = self.configurations
        max_events = self.max_events
        table = protocol.step_table
        steps_for = table.steps
        by_history = table._by_history
        ordered = protocol.ordered_processes
        selective = protocol.is_selective
        custom_enabling = protocol.has_custom_enabling
        enabling_filter = (
            protocol.filter_enabled_events
            if protocol.has_enabling_filter
            else None
        )
        receive_sets = protocol.receive_events_for
        selective_receives = protocol.selective_receive_events
        compiled_enabled = protocol.compiled_enabled_events
        initial_steps = self.initial_steps
        child_parts = self._child_parts
        child_items = self._child_items
        from_trusted = Configuration._from_trusted

        records = []
        incomplete = False
        candidates = 0
        since_progress = 0
        # Batch-local candidate table: child_hash -> [(index, transient)].
        # Transient children are materialised so local duplicate edges get
        # the kernel's structural check, not a hash-only equality.
        layer_candidates: dict[int, list] = {}
        for parent_id in range(layer_start, layer_end):
            current = configurations[parent_id]
            parent_hash = current._hash
            if parent_hash is None:
                parent_hash = hash(current)
            if parent_hash % shards != shard:
                continue
            if progress is not None:
                since_progress += 1
                if since_progress >= progress_every:
                    since_progress = 0
                    progress()
            if max_events is not None and len(current) >= max_events:
                if compiled_enabled(current):
                    incomplete = True
                records.append((parent_id, None))
                continue
            if custom_enabling:
                enabled = list(protocol.enabled_events(current))
            else:
                history_of = current._histories.get
                enabled = []
                for process in ordered:
                    history = history_of(process)
                    if history is None:
                        enabled += initial_steps[process]
                    else:
                        steps = by_history[process].get(history)
                        enabled += (
                            steps
                            if steps is not None
                            else steps_for(process, history)
                        )
                in_flight = current.in_flight_messages
                if in_flight:
                    if not selective:
                        enabled += receive_sets(in_flight)
                    else:
                        enabled += selective_receives(
                            current._histories.get, in_flight
                        )
                if enabling_filter is not None:
                    enabled = enabling_filter(current, enabled)
            matches = current._matches_extension
            edges: list = []
            for event in enabled:
                process, new_history, _, child_hash = child_parts(
                    current, event
                )
                bucket = layer_candidates.get(child_hash)
                if bucket is not None:
                    resolved = None
                    for candidate_index, transient in bucket:
                        if matches(transient, process, new_history):
                            resolved = candidate_index
                            break
                    if resolved is not None:
                        edges.append(resolved)
                        continue
                transient = from_trusted(
                    child_items(current, process, new_history),
                    child_hash,
                    None,
                )
                if bucket is None:
                    layer_candidates[child_hash] = [(candidates, transient)]
                else:
                    bucket.append((candidates, transient))
                edges.append((event, child_hash))
                candidates += 1
            records.append((parent_id, edges))
        return records, incomplete


class _PackedReplica:
    """A worker's *packed window* replica of the frontier.

    The object replica above keeps every configuration of the universe
    alive per worker — (K+1)× the coordinator's RSS.  But a shard worker
    only ever reads the layer it is expanding: batch dedup is layer-local
    (every edge adds one event, so duplicates collide within a layer),
    and the rare cross-layer content-hash collision is resolved on the
    coordinator, which owns the id table.  So this replica keeps exactly
    one window of packed entries

        ``id -> (row, content_hash, received, in_flight)``

    in the representation of the arena kernel
    (:meth:`repro.universe.explorer.Universe._explore_packed`): ``row``
    is a fixed-width tuple of per-process histories in
    ``ordered_processes`` order (``()`` for absent processes), and the
    message frozensets are interned per layer so siblings share set
    objects.  :meth:`apply` replays the coordinator's merged discovery
    stream into packed form, advancing the window floor as the stream's
    (non-decreasing) parent ids move past entries — a full-stream replay
    after a respawn therefore still peaks at one layer of rows.
    :meth:`expand` produces **bit-identical batches** to the object
    replica: same enabled-event enumeration (compiled tables, selective
    receives, enabling filters via transient materialisation), same
    rolling child hashes, same batch-local candidate ordering.

    The rolling entry-hash memo is id-keyed on history tuples and
    rotates per :meth:`apply` generation, exactly as in the packed
    kernel: every tuple a lookup can name is held by a live window row,
    and a freshly allocated tuple that reuses a freed address has its
    memo entry overwritten at creation, so eviction cannot alias.
    """

    __slots__ = (
        "protocol",
        "max_events",
        "count",
        "window",
        "floor",
        "entry_hash_of",
        "entry_prev_get",
        "interned",
        "seed_of",
        "initial_steps",
        "ordered",
        "index_of",
        "width",
    )

    def __init__(self, protocol, max_events) -> None:
        self.protocol = protocol
        self.max_events = max_events
        self.ordered = protocol.ordered_processes
        self.width = len(self.ordered)
        self.index_of = {
            process: i for i, process in enumerate(self.ordered)
        }
        self.seed_of = {
            process: hash(process) % _HASH_MODULUS
            for process in self.ordered
        }
        table = protocol.step_table
        self.initial_steps = {
            process: table.steps(process, ()) for process in self.ordered
        }
        root_hash = hash(EMPTY_CONFIGURATION)
        empty = frozenset()
        self.window: dict[int, tuple] = {
            0: (((),) * self.width, root_hash, empty, empty)
        }
        self.floor = 0
        self.count = 1
        self.entry_hash_of: dict[int, int] = {}
        self.entry_prev_get = {}.get
        self.interned: dict[frozenset, frozenset] = {}

    def _transient(self, entry: tuple) -> Configuration:
        """A throwaway ``Configuration`` for the slow-path hooks
        (custom enabling, enabling filters, ``max_events`` probes)."""
        row, content_hash, received, in_flight = entry
        items = {
            process: history
            for process, history in zip(self.ordered, row)
            if history
        }
        configuration = Configuration._from_trusted(items, content_hash, None)
        cache = configuration.__dict__
        cache["received_messages"] = received
        cache["in_flight_messages"] = in_flight
        return configuration

    # -- replay ---------------------------------------------------------
    def apply(self, records, progress=None, progress_every: int = 0) -> None:
        """Replay a merged discovery stream ``[(parent_id, event), ...]``
        into packed window entries.

        Parent ids are non-decreasing in any discovery stream (children
        are appended in global BFS order), so entries strictly below the
        current parent can never be referenced again and are dropped as
        the replay advances — the window floor.  Rotates the entry-hash
        memo and the frozenset intern table: one ``apply`` + the
        following ``expand`` form one generation.
        """
        window = self.window
        index_of = self.index_of
        seed_of = self.seed_of
        modulus = _HASH_MODULUS
        multiplier = _ROLL_MULTIPLIER
        # Rotate the generation-scoped memos (see class docstring).
        self.entry_prev_get = self.entry_hash_of.get
        entry_prev_get = self.entry_prev_get
        entry_hash_of: dict[int, int] = {}
        self.entry_hash_of = entry_hash_of
        entry_memo_get = entry_hash_of.get
        interned: dict[frozenset, frozenset] = {}
        self.interned = interned
        intern = interned.setdefault
        floor = self.floor
        count = self.count
        since_progress = 0
        # Layer tracking for full-stream replays (respawn recovery): a
        # parent at or past `boundary` was itself created by this call,
        # i.e. the stream crossed a BFS layer — rotate the memos there
        # too, so a whole-universe replay keeps per-layer memo footprint.
        boundary = count
        for parent_id, event in records:
            if parent_id >= boundary:
                boundary = count
                self.entry_prev_get = entry_hash_of.get
                entry_prev_get = self.entry_prev_get
                entry_hash_of = {}
                self.entry_hash_of = entry_hash_of
                entry_memo_get = entry_hash_of.get
                interned = {}
                self.interned = interned
                intern = interned.setdefault
            while floor < parent_id:
                window.pop(floor, None)
                floor += 1
            row, parent_hash, received, in_flight = window[parent_id]
            process = event.process
            position = index_of[process]
            try:
                event_hash = event._hash_cache
            except AttributeError:
                event_hash = hash(event)
            old_history = row[position]
            if not old_history:
                new_history = (event,)
                new_entry = (
                    seed_of[process] * multiplier + event_hash
                ) % modulus
                child_hash = (parent_hash + new_entry) % modulus
            else:
                key = id(old_history)
                old_entry = entry_memo_get(key)
                if old_entry is None:
                    old_entry = entry_prev_get(key)
                    if old_entry is None:
                        old_entry = _entry_hash(process, old_history)
                    entry_hash_of[key] = old_entry
                new_history = old_history + (event,)
                new_entry = (
                    old_entry * multiplier + event_hash
                ) % modulus
                child_hash = (parent_hash - old_entry + new_entry) % modulus
            entry_hash_of[id(new_history)] = new_entry
            child_row = row[:position] + (new_history,) + row[position + 1:]
            # Inlined Configuration._propagate_caches over the interned
            # frozensets, exactly as in the packed kernel (including the
            # degenerate re-send of an already-received message).
            if isinstance(event, SendEvent):
                message = event.message
                child_received = received
                if message in received:
                    child_in_flight = in_flight
                else:
                    new_set = in_flight | {message}
                    child_in_flight = intern(new_set, new_set)
            elif isinstance(event, ReceiveEvent):
                message = event.message
                new_set = received | {message}
                child_received = intern(new_set, new_set)
                new_set = in_flight - {message}
                child_in_flight = intern(new_set, new_set)
            else:
                child_received = received
                child_in_flight = in_flight
            window[count] = (
                child_row,
                child_hash,
                child_received,
                child_in_flight,
            )
            count += 1
            if progress is not None:
                since_progress += 1
                if since_progress >= progress_every:
                    since_progress = 0
                    progress()
        self.floor = floor
        self.count = count

    # -- expansion ------------------------------------------------------
    def expand(
        self,
        layer_start: int,
        layer_end: int,
        shard: int,
        shards: int,
        progress=None,
        progress_every: int = 0,
    ):
        """Expand this shard's parents of one frontier layer.

        Same contract and bit-identical output as
        :meth:`_Replica.expand`; operates on packed rows, materialising
        transient configurations only on the slow paths.
        """
        protocol = self.protocol
        max_events = self.max_events
        window = self.window
        # Entries below the frontier are dead (their children are built);
        # drop any stragglers the last replay's floor left behind.
        floor = self.floor
        while floor < layer_start:
            window.pop(floor, None)
            floor += 1
        self.floor = floor
        table = protocol.step_table
        steps_for = table.steps
        by_history = table._by_history
        ordered = self.ordered
        width = self.width
        index_of = self.index_of
        selective = protocol.is_selective
        custom_enabling = protocol.has_custom_enabling
        enabling_filter = (
            protocol.filter_enabled_events
            if protocol.has_enabling_filter
            else None
        )
        receive_sets = protocol.receive_events_for
        selective_receives = protocol.selective_receive_events
        compiled_enabled = protocol.compiled_enabled_events
        initial_steps = self.initial_steps
        transient = self._transient
        seed_of = self.seed_of
        modulus = _HASH_MODULUS
        multiplier = _ROLL_MULTIPLIER
        entry_hash_of = self.entry_hash_of
        entry_memo_get = entry_hash_of.get
        entry_prev_get = self.entry_prev_get

        # Every BFS edge appends one event, so the layer depth is any
        # frontier member's total event count.
        depth = None
        if max_events is not None and layer_start < layer_end:
            depth = sum(map(len, window[layer_start][0]))

        records = []
        incomplete = False
        candidates = 0
        since_progress = 0
        # Batch-local candidate table: child_hash -> [(index, row)].
        # Candidate rows are compared elementwise — shared history tuples
        # make those identity hits — so local duplicate edges get the
        # kernel's structural check, not a hash-only equality.
        layer_candidates: dict[int, list] = {}
        for parent_id in range(layer_start, layer_end):
            entry = window[parent_id]
            row, parent_hash, received, in_flight = entry
            if parent_hash % shards != shard:
                continue
            if progress is not None:
                since_progress += 1
                if since_progress >= progress_every:
                    since_progress = 0
                    progress()
            if depth is not None and depth >= max_events:
                if compiled_enabled(transient(entry)):
                    incomplete = True
                records.append((parent_id, None))
                continue
            if custom_enabling:
                enabled = list(protocol.enabled_events(transient(entry)))
            else:
                enabled = []
                for position, process in enumerate(ordered):
                    history = row[position]
                    if not history:
                        enabled += initial_steps[process]
                    else:
                        steps = by_history[process].get(history)
                        enabled += (
                            steps
                            if steps is not None
                            else steps_for(process, history)
                        )
                if in_flight:
                    if not selective:
                        enabled += receive_sets(in_flight)
                    else:
                        items = {
                            process: history
                            for process, history in zip(ordered, row)
                            if history
                        }
                        enabled += selective_receives(items.get, in_flight)
                if enabling_filter is not None:
                    enabled = enabling_filter(transient(entry), enabled)
            edges: list = []
            for event in enabled:
                process = event.process
                position = index_of[process]
                try:
                    event_hash = event._hash_cache
                except AttributeError:
                    event_hash = hash(event)
                old_history = row[position]
                if not old_history:
                    new_history = (event,)
                    new_entry = (
                        seed_of[process] * multiplier + event_hash
                    ) % modulus
                    child_hash = (parent_hash + new_entry) % modulus
                else:
                    key = id(old_history)
                    old_entry = entry_memo_get(key)
                    if old_entry is None:
                        old_entry = entry_prev_get(key)
                        if old_entry is None:
                            old_entry = _entry_hash(process, old_history)
                        entry_hash_of[key] = old_entry
                    new_history = old_history + (event,)
                    new_entry = (
                        old_entry * multiplier + event_hash
                    ) % modulus
                    child_hash = (
                        parent_hash - old_entry + new_entry
                    ) % modulus
                bucket = layer_candidates.get(child_hash)
                if bucket is not None:
                    resolved = None
                    for candidate_index, candidate_row in bucket:
                        theirs = candidate_row[position]
                        if theirs is not new_history and theirs != new_history:
                            continue
                        for j in range(width):
                            if j == position:
                                continue
                            theirs = candidate_row[j]
                            ours = row[j]
                            if theirs is not ours and theirs != ours:
                                break
                        else:
                            resolved = candidate_index
                            break
                    if resolved is not None:
                        edges.append(resolved)
                        continue
                candidate_row = (
                    row[:position] + (new_history,) + row[position + 1:]
                )
                if bucket is None:
                    layer_candidates[child_hash] = [
                        (candidates, candidate_row)
                    ]
                else:
                    bucket.append((candidates, candidate_row))
                edges.append((event, child_hash))
                candidates += 1
            records.append((parent_id, edges))
        return records, incomplete


# ---------------------------------------------------------------------
# Discovery-stream reconstruction (the failover replay source)
# ---------------------------------------------------------------------
def _discovery_event(parent: Configuration, child: Configuration):
    """The event extending ``parent`` to ``child``.

    Children constructed by the merge (and by checkpoint replay) share
    every unchanged history tuple with their parent by identity, so the
    grown history is the one that is not the same object; its last entry
    is the discovery event.
    """
    parent_histories = parent._histories
    for process, history in child._histories.items():
        if parent_histories.get(process) is not history:
            return history[-1]
    raise UniverseError(
        "discovery-stream reconstruction found no extending event "
        "(parent and child share all histories)"
    )


def discovery_stream(configurations, succ_offsets, succ_ids) -> list:
    """Reconstruct the merged discovery stream from the CSR store.

    Dense ids are assigned in discovery order, so walking the expanded
    parents' successor rows in global BFS order, the first edge whose
    child id equals the next unassigned id *is* that child's discovery
    edge.  This is what lets the coordinator rebuild a dead worker's
    replica without retaining the stream in memory: the stream is a pure
    function of the state the coordinator already owns.
    """
    stream: list = []
    expected = 1
    for parent_id in range(len(succ_offsets) - 1):
        row_start = succ_offsets[parent_id]
        row_end = succ_offsets[parent_id + 1]
        if row_start == row_end:
            continue
        parent = configurations[parent_id]
        for child_id in succ_ids[row_start:row_end]:
            if child_id == expected:
                stream.append(
                    (parent_id, _discovery_event(parent, configurations[child_id]))
                )
                expected += 1
    return stream


# ---------------------------------------------------------------------
# Worker process body
# ---------------------------------------------------------------------
def _send_error(connection, error: BaseException | None, message: str) -> None:
    """Ship a structured error frame; never raise from the shipper.

    ``environmental`` marks storage/resource failures (ENOSPC, EIO,
    descriptor exhaustion — e.g. a worker-side spill hitting a hostile
    disk): the coordinator routes those into deterministic failover
    (respawn or fold re-derives the same batch) instead of re-raising
    them as the exploration's own deterministic error.
    """
    payload = {
        "type": type(error).__name__ if error is not None else "UniverseError",
        "message": str(error) if error is not None else message,
        "traceback": traceback.format_exc() if error is not None else "",
        "environmental": error is not None and is_storage_error(error),
    }
    try:
        connection.send(("error", payload))
    except Exception:
        pass


def _worker_peak_rss_mb() -> float | None:
    """This process's peak RSS in MiB (``ru_maxrss``), ``None`` where
    the platform does not report it."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # pragma: no cover - non-POSIX only
        return None
    if peak <= 0:  # pragma: no cover - platform-defensive
        return None
    # Linux reports KiB; macOS reports bytes.
    divisor = 1024.0 if os.uname().sysname != "Darwin" else 1024.0 * 1024.0
    return peak / divisor


def _worker_main(
    connection,
    protocol,
    shard,
    shards,
    max_events,
    token,
    heartbeat_parents,
    heartbeat_records,
    fault_actions,
    packed=True,
):
    """Body of one shard worker process.

    ``fault_actions`` is a list of :meth:`repro.universe.faults.Fault.as_wire`
    tuples scoped to this worker — deterministic fault injection for the
    recovery test matrix; empty in production use.  ``packed`` selects
    the replica representation (see :data:`_DEFAULT_REPLICA`).
    """
    gc.disable()
    faults_by_layer: dict[int, list] = {}
    for kind, layer, seconds in fault_actions:
        faults_by_layer.setdefault(layer, []).append((kind, seconds))

    def heartbeat() -> None:
        try:
            connection.send(("heartbeat",))
        except (BrokenPipeError, OSError):
            pass

    try:
        if hash_domain_token() != token:
            _send_error(
                connection,
                None,
                "worker hash domain differs from the coordinator's "
                "(sharded exploration requires the fork start method "
                "or a pinned PYTHONHASHSEED)",
            )
            return
        replica = (
            _PackedReplica(protocol, max_events)
            if packed
            else _Replica(protocol, max_events)
        )
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "stop":
                # Farewell frame: this worker's peak RSS, so the
                # coordinator can attribute sharded memory per process
                # (the `sharded_rss_*` bench pair and the fault-recovery
                # suite's per-worker axis).
                try:
                    connection.send(("stopped", shard, _worker_peak_rss_mb()))
                except (BrokenPipeError, OSError):
                    pass
                return
            # ("expand", records_blob, layer_start, layer_end, layer)
            _, blob, layer_start, layer_end, layer = message
            actions = faults_by_layer.pop(layer, ())
            for fault_kind, _ in actions:
                if fault_kind == "kill":
                    # Simulated hard crash: no cleanup, no farewell frame
                    # — the coordinator sees EOF, exactly as for an OOM
                    # kill or a segfault.
                    os._exit(17)
            heartbeat()
            replica.apply(
                decompress_batch(blob),
                progress=heartbeat,
                progress_every=heartbeat_records,
            )
            replica_count = (
                replica.count if packed else len(replica.configurations)
            )
            if replica_count != layer_end:
                _send_error(
                    connection,
                    None,
                    f"replica desync: {replica_count} "
                    f"configurations, expected {layer_end}",
                )
                return
            batch, incomplete = replica.expand(
                layer_start,
                layer_end,
                shard,
                shards,
                progress=heartbeat,
                progress_every=heartbeat_parents,
            )
            # Batch-compressed with the shared codec: the CRC guards the
            # compressed frame, so corruption is rejected before either
            # inflate or unpickle sees the bytes.
            frame = compress_batch((batch, incomplete))
            crc = zlib.crc32(frame)
            drop = False
            for fault_kind, seconds in actions:
                if fault_kind == "delay_batch":
                    time.sleep(seconds)
                elif fault_kind == "drop_batch":
                    drop = True
                elif fault_kind == "corrupt_batch":
                    mangled = bytearray(frame)
                    mangled[len(mangled) // 2] ^= 0xFF
                    frame = bytes(mangled)
            if not drop:
                connection.send(("batch", frame, crc))
    except BaseException as error:
        _send_error(connection, error, "")
    finally:
        connection.close()


class _GatherState:
    """Mutable per-layer gather bookkeeping shared by the broadcast,
    gather and failover paths."""

    __slots__ = ("pending", "batches", "last_seen", "incomplete")

    def __init__(self, workers: int) -> None:
        self.pending: set[int] = set()
        self.batches: list = [None] * workers
        self.last_seen: dict[int, float] = {}
        self.incomplete = False


class ShardedExplorer:
    """Coordinator of the multiprocess sharded frontier exploration.

    Drives ``workers`` forked shard workers through the per-layer batch
    exchange protocol described in the module docstring and merges their
    edge batches into the owning :class:`~repro.universe.explorer.Universe`
    — deterministically, so the result is bit-identical to the
    single-process kernel, *including* across worker crashes, hangs and
    corrupt frames (see the fault-tolerance section of the module
    docstring and RELIABILITY.md).
    """

    def __init__(
        self,
        protocol,
        max_events,
        workers: int,
        supervision: SupervisionPolicy | None = None,
        fault_plan=None,
        replica: str | None = None,
    ) -> None:
        if workers < 2:
            raise UniverseError(
                f"sharded exploration needs at least 2 workers, got {workers}"
            )
        replica = replica if replica is not None else _DEFAULT_REPLICA
        if replica not in ("packed", "objects"):
            raise UniverseError(
                f"replica must be 'packed' or 'objects', got {replica!r}"
            )
        self._protocol = protocol
        self._max_events = max_events
        self._workers = workers
        self._policy = supervision or SupervisionPolicy()
        self._fault_plan = fault_plan
        self._packed_replicas = replica == "packed"
        if fault_plan is not None:
            fault_plan.validate(workers)
        self._connections: list = [None] * workers
        self._processes: list = [None] * workers
        self._alive: list[bool] = [False] * workers
        self._respawns_left = self._policy.resolve_respawns(workers)
        self._fallback: _Replica | None = None
        self._stream_blob: tuple[int, bytes] | None = None
        self._context = None
        self._token = None
        self.recovery_log: list[dict] = []
        self.worker_peak_rss_mb: dict[int, float] = {}

    # -- process lifecycle ---------------------------------------------
    def _spawn(self, shard: int) -> None:
        """Start (or restart) the worker for ``shard`` on a fresh pipe.

        Transient start failures (fork EAGAIN under pid/memory pressure)
        are retried with bounded backoff per
        ``SupervisionPolicy.spawn_attempts``/``spawn_backoff``; a
        persistent or non-transient ``OSError`` propagates to the caller
        (initial spawn raises, :meth:`_recover` folds the shard).
        """
        actions = (
            self._fault_plan.take_for_shard(shard)
            if self._fault_plan is not None
            else []
        )
        parent_end, child_end = self._context.Pipe(duplex=True)
        worker_args = (
            child_end,
            self._protocol,
            shard,
            self._workers,
            self._max_events,
            self._token,
            self._policy.heartbeat_parents,
            self._policy.heartbeat_records,
            actions,
            self._packed_replicas,
        )
        delay = self._policy.spawn_backoff
        try:
            for attempt in range(1, self._policy.spawn_attempts + 1):
                process = self._context.Process(
                    target=_worker_main, args=worker_args, daemon=True
                )
                try:
                    process.start()
                    break
                except OSError as error:
                    if (
                        not _transient_spawn_error(error)
                        or attempt == self._policy.spawn_attempts
                    ):
                        raise
                    self.recovery_log.append(
                        {
                            "shard": shard,
                            "layer": None,
                            "kind": "spawn",
                            "action": "retry",
                            "detail": (
                                f"attempt {attempt}/"
                                f"{self._policy.spawn_attempts}: {error}"
                            ),
                        }
                    )
                    time.sleep(delay)
                    delay *= 2
        except OSError:
            parent_end.close()
            child_end.close()
            raise
        child_end.close()
        self._connections[shard] = parent_end
        self._processes[shard] = process
        self._alive[shard] = True

    def _discard_worker(self, shard: int) -> None:
        """Terminate and reap one worker, closing both coordinator-side
        handles.  Safe to call on an already-dead worker."""
        connection = self._connections[shard]
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._connections[shard] = None
        process = self._processes[shard]
        if process is not None:
            try:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=self._policy.join_timeout)
                if process.is_alive():  # pragma: no cover - defensive
                    process.kill()
                    process.join(timeout=self._policy.join_timeout)
            except Exception:  # pragma: no cover - defensive
                pass
            self._processes[shard] = None
        self._alive[shard] = False

    def _teardown(self) -> None:
        """Exception-safe teardown of every child and both pipe ends.

        Connections close first so idle workers unblock from ``recv``
        with EOF and exit on their own; stragglers are terminated, then
        killed.  Runs on every exit path — success, coordinator-side
        exceptions, ``KeyboardInterrupt`` — so no orphan processes or
        leaked descriptors survive ``explore_into``.
        """
        for shard in range(self._workers):
            self._discard_worker(shard)

    def _worker_pids(self) -> list[int]:
        return [
            process.pid
            for process in self._processes
            if process is not None and process.is_alive()
        ]

    # -- failover -------------------------------------------------------
    def _full_stream_blob(self, universe, layer_end: int) -> bytes:
        """The compressed full discovery stream up to ``layer_end``,
        cached per layer (several failures in one layer replay the same
        stream).  Under the arena store the columns *are* the stream
        (:meth:`~repro.universe.arena.ArenaStore.records`); under the
        object store it is reconstructed from the CSR walk."""
        cached = self._stream_blob
        if cached is not None and cached[0] == layer_end:
            return cached[1]
        configurations = universe._configurations
        if isinstance(configurations, ArenaStore):
            stream = configurations.records(1, len(configurations))
        else:
            stream = discovery_stream(
                configurations,
                universe._succ_offsets,
                universe._succ_ids,
            )
        blob = compress_batch(stream)
        self._stream_blob = (layer_end, blob)
        return blob

    def _fold_shard(
        self, universe, shard: int, layer_start: int, layer_end: int
    ):
        """Expand ``shard`` in the coordinator — the no-respawn fallback.

        The coordinator's own state is authoritative, so an attached
        replica over it re-derives exactly the batch the worker would
        have sent (pure function of the stream)."""
        if self._fallback is None:
            self._fallback = _Replica.attached(
                self._protocol, self._max_events, universe._configurations
            )
        if isinstance(universe._configurations, ArenaStore):
            # The arena evicts cold layers (freeing their history tuples),
            # so the id-keyed entry memo cannot persist across layers
            # without aliasing risk.  Frontier parents stay alive in the
            # hot window for the whole expand call, so a per-call memo is
            # both safe and still O(1) per edge within the layer.
            self._fallback.entry_hash_of.clear()
        return self._fallback.expand(
            layer_start, layer_end, shard, self._workers
        )

    def _recover(
        self,
        universe,
        failure: WorkerFailure,
        state: _GatherState,
        layer_start: int,
        layer_end: int,
        layer: int,
    ) -> None:
        """Deterministic failover for one failed worker.

        Either respawn a replacement (fed the full reconstructed stream,
        so it re-expands the failed layer shard bit-identically) or fold
        the shard into the coordinator for the rest of the run.
        """
        shard = failure.shard
        self._discard_worker(shard)
        if self._respawns_left > 0:
            self._respawns_left -= 1
            try:
                self._spawn(shard)
            except OSError as error:
                # The host refused us a replacement process even after
                # the bounded retries; fold the shard instead of dying.
                self.recovery_log.append(
                    {
                        "layer": layer,
                        "shard": shard,
                        "kind": failure.kind,
                        "action": "respawn-failed",
                        "detail": f"spawn: {error}",
                    }
                )
                self._recover(
                    universe,
                    WorkerFailure(shard, "exit", f"spawn failed: {error}"),
                    state,
                    layer_start,
                    layer_end,
                    layer,
                )
                return
            try:
                self._connections[shard].send(
                    (
                        "expand",
                        self._full_stream_blob(universe, layer_end),
                        layer_start,
                        layer_end,
                        layer,
                    )
                )
            except (BrokenPipeError, OSError) as error:
                # The replacement died before taking the job; recurse —
                # bounded by the respawn budget, then folds.
                self.recovery_log.append(
                    {
                        "layer": layer,
                        "shard": shard,
                        "kind": failure.kind,
                        "action": "respawn-failed",
                        "detail": str(error),
                    }
                )
                self._recover(
                    universe,
                    WorkerFailure(shard, "exit", str(error)),
                    state,
                    layer_start,
                    layer_end,
                    layer,
                )
                return
            state.pending.add(shard)
            state.last_seen[shard] = time.monotonic()
            self.recovery_log.append(
                {
                    "layer": layer,
                    "shard": shard,
                    "kind": failure.kind,
                    "action": "respawn",
                    "detail": failure.detail,
                }
            )
            return
        state.pending.discard(shard)
        records, incomplete = self._fold_shard(
            universe, shard, layer_start, layer_end
        )
        state.batches[shard] = records
        state.incomplete |= incomplete
        self.recovery_log.append(
            {
                "layer": layer,
                "shard": shard,
                "kind": failure.kind,
                "action": "fold",
                "detail": failure.detail,
            }
        )

    # -- layer exchange -------------------------------------------------
    def _exchange_layer(
        self, universe, replay, layer_start: int, layer_end: int, layer: int
    ) -> _GatherState:
        """One full broadcast/expand/gather round with supervision.

        Returns the gather state with every shard's batch present —
        produced by its worker, a respawned replacement, or the
        coordinator's fold — or raises :class:`WorkerError` /
        :class:`UniverseError` for deterministic failures.
        """
        policy = self._policy
        state = _GatherState(self._workers)
        blob = compress_batch(replay)
        now = time.monotonic()
        for shard in range(self._workers):
            if not self._alive[shard]:
                # Permanently folded shard: the coordinator does the work.
                records, incomplete = self._fold_shard(
                    universe, shard, layer_start, layer_end
                )
                state.batches[shard] = records
                state.incomplete |= incomplete
                continue
            try:
                self._connections[shard].send(
                    ("expand", blob, layer_start, layer_end, layer)
                )
            except (BrokenPipeError, OSError) as error:
                self._recover(
                    universe,
                    WorkerFailure(shard, "exit", f"send failed: {error}"),
                    state,
                    layer_start,
                    layer_end,
                    layer,
                )
                continue
            state.pending.add(shard)
            state.last_seen[shard] = now

        while state.pending:
            conn_of = {
                self._connections[shard]: shard for shard in state.pending
            }
            ready = _connection_wait(
                list(conn_of), timeout=policy.poll_interval
            )
            now = time.monotonic()
            for connection in ready:
                shard = conn_of[connection]
                if shard not in state.pending:
                    continue  # recovered earlier in this drain
                if self._connections[shard] is not connection:
                    continue  # stale handle of a replaced worker
                try:
                    message = connection.recv()
                except (EOFError, BrokenPipeError, OSError) as error:
                    self._recover(
                        universe,
                        WorkerFailure(
                            shard, "exit", f"{type(error).__name__}: {error}"
                        ),
                        state,
                        layer_start,
                        layer_end,
                        layer,
                    )
                    continue
                state.last_seen[shard] = now
                kind = message[0]
                if kind == "heartbeat":
                    continue
                if kind == "error":
                    if message[1].get("environmental"):
                        # Environmental storage/resource failure (not a
                        # bug): a replacement on a healthier mount or the
                        # coordinator's fold re-derives the same batch.
                        self._recover(
                            universe,
                            WorkerFailure(
                                shard, "storage", message[1]["message"]
                            ),
                            state,
                            layer_start,
                            layer_end,
                            layer,
                        )
                        continue
                    # Deterministic application error: re-raise with the
                    # original traceback; a replacement would fail the
                    # same way, so no retry.
                    raise WorkerError(shard, message[1])
                frame, crc = message[1], message[2]
                if zlib.crc32(frame) != crc:
                    self._recover(
                        universe,
                        WorkerFailure(
                            shard,
                            "corrupt",
                            f"batch CRC mismatch at layer {layer}",
                        ),
                        state,
                        layer_start,
                        layer_end,
                        layer,
                    )
                    continue
                records, incomplete = decompress_batch(frame)
                state.batches[shard] = records
                state.incomplete |= incomplete
                state.pending.discard(shard)
            for shard in sorted(state.pending):
                if now - state.last_seen[shard] > policy.heartbeat_timeout:
                    self._recover(
                        universe,
                        WorkerFailure(
                            shard,
                            "timeout",
                            f"no heartbeat for "
                            f"{policy.heartbeat_timeout:.3g}s at layer "
                            f"{layer}",
                        ),
                        state,
                        layer_start,
                        layer_end,
                        layer,
                    )
        return state

    # -- exploration ----------------------------------------------------
    def explore_into(
        self,
        universe,
        max_configurations,
        on_limit,
        checkpoint=None,
        rss_budget_mb=None,
    ) -> None:
        """Run the sharded exploration, filling ``universe``'s stores.

        ``checkpoint`` is an optional
        :class:`~repro.universe.checkpoint.CheckpointSession` (resume +
        layer-boundary saves); ``rss_budget_mb`` arms the RSS watchdog
        (coordinator + live workers), degrading to the
        ``on_limit="truncate"`` behaviour at the next layer boundary
        instead of being OOM-killed.
        """
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX only
            raise UniverseError(
                "sharded exploration requires the 'fork' multiprocessing "
                "start method (content hashes depend on the interpreter's "
                "hash seed, which fork inherits)"
            ) from error
        # Warm the root's message-set caches before forking so the
        # propagate chain is unbroken in every process, as in the kernel.
        EMPTY_CONFIGURATION.received_messages
        EMPTY_CONFIGURATION.in_flight_messages
        self._token = hash_domain_token()
        # Share the universe's structured log so worker-failover rungs,
        # checkpoint salvage events and storage degradations interleave
        # on one monotonic sequence; fall back to our own list when
        # driven outside a Universe.
        recovery = getattr(universe, "_recovery_log", None)
        if recovery is None:
            recovery = RecoveryLog()
            universe._recovery_log = recovery
        self.recovery_log = recovery
        watchdog = None
        if rss_budget_mb is not None:
            from repro.universe.checkpoint import RssWatchdog

            watchdog = RssWatchdog(rss_budget_mb, self._worker_pids)
        universe._rss_watchdog = watchdog
        resumed = checkpoint.try_resume(universe) if checkpoint else None
        try:
            for shard in range(self._workers):
                self._spawn(shard)
            self._explore_loop(
                universe,
                max_configurations,
                on_limit,
                checkpoint,
                watchdog,
                resumed,
            )
            for shard in range(self._workers):
                if self._alive[shard]:
                    try:
                        self._connections[shard].send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            self._collect_farewells()
            universe._worker_peak_rss_mb = dict(self.worker_peak_rss_mb)
        finally:
            self._teardown()

    def _collect_farewells(self) -> None:
        """Drain each live worker's ``("stopped", shard, peak_rss_mb)``
        farewell, bounded by ``join_timeout`` — per-process peak memory
        attribution for the bench suites.  Best-effort: a worker that
        dies instead of answering is simply missing from the map."""
        deadline = time.monotonic() + self._policy.join_timeout
        for shard in range(self._workers):
            if not self._alive[shard]:
                continue
            connection = self._connections[shard]
            if connection is None:
                continue
            try:
                while time.monotonic() < deadline:
                    remaining = deadline - time.monotonic()
                    if not connection.poll(max(remaining, 0.0)):
                        break
                    message = connection.recv()
                    if message[0] == "stopped":
                        rss = message[2]
                        if rss is not None:
                            self.worker_peak_rss_mb[shard] = rss
                        break
            except (EOFError, BrokenPipeError, OSError):
                continue

    def _explore_loop(
        self,
        universe,
        max_configurations,
        on_limit,
        checkpoint,
        watchdog,
        resumed,
    ) -> None:
        """The coordinator side: broadcast, gather, merge, repeat."""
        workers = self._workers
        configurations = universe._configurations
        arena = (
            configurations if isinstance(configurations, ArenaStore) else None
        )
        lookup = (
            arena._get_hot if arena is not None else configurations.__getitem__
        )
        ids_by_hash = universe._ids_by_hash
        succ_ids = universe._succ_ids
        succ_offsets = universe._succ_offsets
        from_trusted = Configuration._from_trusted
        child_items = _Replica._child_items
        limit = max_configurations if max_configurations is not None else inf

        if resumed is not None:
            count = len(configurations)
            edges = len(succ_ids)
            layer_start = resumed.frontier_start
            layer = resumed.layers
            # Fresh replicas rebuild from the root: the first replay blob
            # is the full restored stream, not one layer's.
            replay: list = resumed.stream
        else:
            configurations.append(EMPTY_CONFIGURATION)
            ids_by_hash[hash(EMPTY_CONFIGURATION)] = 0
            count = 1
            edges = 0
            layer_start = 0
            layer = 0
            replay = []  # previous layer's merged discovery stream
        arm_storage = getattr(universe, "_arm_storage_faults", None)
        if arm_storage is not None:
            arm_storage(layer)
        bound_error: str | None = None
        rss_truncated = False
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while True:
                layer_end = count
                state = self._exchange_layer(
                    universe, replay, layer_start, layer_end, layer
                )
                if state.incomplete:
                    universe._complete = False
                batches = state.batches
                replay = []
                cursors = [0] * workers
                # Per worker, candidate index -> resolved global id, filled
                # in batch order as the merge walks the layer.
                candidate_ids: list[list[int]] = [[] for _ in range(workers)]
                for parent_id in range(layer_start, layer_end):
                    parent = lookup(parent_id)
                    parent_hash = parent._hash
                    if parent_hash is None:
                        parent_hash = hash(parent)
                    shard = parent_hash % workers
                    record = batches[shard][cursors[shard]]
                    cursors[shard] += 1
                    if record[0] != parent_id:
                        raise UniverseError(
                            f"sharded merge desync: worker {shard} sent "
                            f"parent {record[0]}, expected {parent_id}"
                        )
                    edge_list = record[1]
                    if edge_list is None:  # max_events-capped parent
                        succ_offsets.append(edges)
                        continue
                    resolved = candidate_ids[shard]
                    propagate = parent._propagate_caches
                    matches = parent._matches_extension
                    for edge in edge_list:
                        if type(edge) is int:
                            succ_ids.append(resolved[edge])
                            edges += 1
                            continue
                        event, child_hash = edge
                        process = event.process
                        old_history = parent._histories.get(process)
                        new_history = (
                            old_history + (event,)
                            if old_history is not None
                            else (event,)
                        )
                        existing = ids_by_hash.get(child_hash)
                        if existing is None:
                            if count >= limit:
                                bound_error = (
                                    _BOUND_MESSAGE % max_configurations
                                )
                                break
                            child_id = count
                        elif type(existing) is int:
                            if matches(
                                lookup(existing), process, new_history
                            ):
                                resolved.append(existing)
                                succ_ids.append(existing)
                                edges += 1
                                continue
                            # content-hash collision: open the bucket
                            if count >= limit:
                                bound_error = (
                                    _BOUND_MESSAGE % max_configurations
                                )
                                break
                            child_id = count
                            ids_by_hash[child_hash] = [existing, child_id]
                        else:
                            for candidate_id in existing:
                                if matches(
                                    lookup(candidate_id),
                                    process,
                                    new_history,
                                ):
                                    child_id = candidate_id
                                    break
                            else:
                                if count >= limit:
                                    bound_error = (
                                        _BOUND_MESSAGE % max_configurations
                                    )
                                    break
                                child_id = count
                                existing.append(child_id)
                            if child_id != count:
                                resolved.append(child_id)
                                succ_ids.append(child_id)
                                edges += 1
                                continue
                        # First discovery.
                        if existing is None:
                            ids_by_hash[child_hash] = child_id
                        count += 1
                        child = from_trusted(
                            child_items(parent, process, new_history),
                            child_hash,
                            None,
                        )
                        propagate(child, event)
                        if arena is None:
                            configurations.append(child)
                        else:
                            arena.append_child(
                                parent_id, event, child_hash, child
                            )
                        replay.append((parent_id, event))
                        resolved.append(child_id)
                        succ_ids.append(child_id)
                        edges += 1
                    succ_offsets.append(edges)
                    if bound_error is not None:
                        break
                if bound_error is not None:
                    break
                done = count == layer_end  # no new configurations
                if arm_storage is not None:
                    arm_storage(layer + 1)
                if checkpoint is not None:
                    checkpoint.commit_layer(
                        replay, layer_end, universe, final=done
                    )
                if arena is not None:
                    # The consumed frontier is cold now: evict its window
                    # objects and seal/compress whole chunks below it.
                    arena.retire(layer_end)
                layer_start = layer_end
                layer += 1
                if done:
                    break
                if watchdog is not None and watchdog.exceeded():
                    if (
                        arena is not None
                        and arena.spill_cold()
                        and not watchdog.exceeded()
                    ):
                        # Graceful spill bought headroom; keep exploring.
                        self.recovery_log.append(
                            {
                                "layer": layer,
                                "shard": None,
                                "kind": "rss_budget",
                                "action": "spill",
                                "detail": f"{count} configurations",
                            }
                        )
                        continue
                    self.recovery_log.append(
                        {
                            "layer": layer,
                            "shard": None,
                            "kind": "rss_budget",
                            "action": "truncate",
                            "detail": f"{count} configurations",
                        }
                    )
                    rss_truncated = True
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        if bound_error is not None and on_limit == "raise":
            raise UniverseError(bound_error)
        if bound_error is not None or rss_truncated:
            universe._complete = False
            while len(succ_offsets) < len(configurations) + 1:
                succ_offsets.append(len(succ_ids))


__all__ = [
    "ShardedExplorer",
    "SupervisionPolicy",
    "WorkerError",
    "WorkerFailure",
    "discovery_stream",
    "resolve_workers",
]
