"""Hand-built computation families from the paper's worked examples.

The centrepiece is :func:`figure_3_1_computations`, reproducing the four
computations ``x, y, z, w`` of Example 1 / Figure 3-1: a two-process
system in which

* ``x [p] y`` but not ``x [q] y``;
* ``x [D] z`` with ``x != z`` (one is a permutation of the other);
* ``z [q] w`` but neither ``y [p] w`` nor ``y [q] w``;
* hence ``y [p q] w`` holds only *indirectly*, via ``z``.
"""

from __future__ import annotations

from repro.core.computation import Computation, computation_of
from repro.core.configuration import Configuration
from repro.core.events import internal
from repro.universe.explorer import EnumeratedUniverse


def figure_3_1_computations() -> dict[str, Computation]:
    """The four computations of Example 1, keyed ``x, y, z, w``.

    Built from internal events of processes ``p`` and ``q``:

    * ``x = <a_p, b_q>``  and  ``z = <b_q, a_p>`` — permutations, so
      ``x [{p,q}] z``;
    * ``y = <a_p, c_q>`` — agrees with ``x`` on ``p`` only;
    * ``w = <d_p, b_q>`` — agrees with ``z`` (and ``x``) on ``q`` only.
    """
    a_p = internal("p", tag="a")
    d_p = internal("p", tag="d")
    b_q = internal("q", tag="b")
    c_q = internal("q", tag="c")
    return {
        "x": computation_of(a_p, b_q),
        "y": computation_of(a_p, c_q),
        "z": computation_of(b_q, a_p),
        "w": computation_of(d_p, b_q),
    }


def figure_3_1_universe() -> EnumeratedUniverse:
    """An enumerated universe containing Figure 3-1's computations
    (prefix-closed, as the model requires)."""
    computations = figure_3_1_computations()
    return EnumeratedUniverse(
        Configuration.from_computation(computation)
        for computation in computations.values()
    )


def configuration_from_events(*events) -> Configuration:
    """Configuration of the computation consisting of ``events`` in order."""
    return Configuration.from_computation(computation_of(*events))


def packed_store_of(configurations, spill_dir=None):
    """An :class:`~repro.universe.arena.ArenaStore` holding the given
    configurations (in order) as pinned roots.

    The diagnostic counterpart of exploration's packed growth path: hand
    -built families (Figure 3-1, test fixtures) get the same sequence
    interface the explorer's arena exposes, so store-equivalence tests
    and tooling can exercise indexing, iteration, equality and pickling
    without running an exploration first.
    """
    from repro.universe.arena import ArenaStore

    store = ArenaStore(spill_dir=spill_dir)
    store.extend(configurations)
    return store
