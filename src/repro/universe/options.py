"""Grouped exploration options for :class:`repro.universe.Universe`.

The ``Universe`` constructor grew thirteen keyword arguments across the
scaling PRs (limits, checkpointing, resource budgets, sharding, store
selection).  This module groups them into four frozen dataclasses plus a
top-level :class:`ExplorationOptions` bundle:

``Universe(protocol, options=ExplorationOptions(
    limits=Limits(max_configurations=None),
    checkpoint=CheckpointPolicy(path="run.ckpt"),
    budget=ResourceBudget(rss_budget_mb=8192),
    sharding=Sharding(workers=4),
    store="arena",
))``

Legacy keyword arguments keep working through :func:`resolve_options`,
which normalises either calling style into one ``ExplorationOptions``
instance — the explorer then has a single code path.  A
``DeprecationWarning`` fires only on a *conflicting* double
specification (the same knob set through both a legacy kwarg and the
options object, with different values); in that case the explicit
legacy kwarg wins, preserving the behaviour of call sites written
before the options API existed.

The dataclasses are frozen and contain only picklable leaves (the
supervision policy and fault plan are themselves frozen dataclasses),
so an ``ExplorationOptions`` travels intact through both ``fork`` and
``spawn`` multiprocessing starts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.universe.faults import FaultPlan
    from repro.universe.sharded import SupervisionPolicy

__all__ = [
    "CheckpointPolicy",
    "ExplorationOptions",
    "Limits",
    "ResourceBudget",
    "Sharding",
    "options_from_args",
    "resolve_options",
]


@dataclass(frozen=True)
class Limits:
    """Bounds on the explored universe.

    ``max_events`` caps per-process history length (``None`` = the
    protocol's own fixpoint); ``max_configurations`` caps the universe
    size (``None`` = unbounded); ``on_limit`` picks what happens at the
    cap: ``"raise"`` or ``"truncate"`` (streaming partial universe).
    """

    max_events: int | None = None
    max_configurations: int | None = 1_000_000
    on_limit: str = "raise"


@dataclass(frozen=True)
class CheckpointPolicy:
    """Layer-boundary checkpointing (``None`` path = disabled).

    ``every`` saves each N layers, ``strict`` errors on damaged
    checkpoints instead of salvage-truncating, ``format`` selects the
    segmented incremental writer or the legacy monolithic blob.
    """

    path: Any = None
    every: int = 1
    strict: bool = False
    format: str = "segmented"


@dataclass(frozen=True)
class ResourceBudget:
    """Memory ceilings: the RSS watchdog and the arena spill directory."""

    rss_budget_mb: float | None = None
    spill_dir: Any = None


@dataclass(frozen=True)
class Sharding:
    """Multiprocess sharding: worker count, supervision, fault injection."""

    workers: int | None = None
    supervision: "SupervisionPolicy | None" = None
    fault_plan: "FaultPlan | None" = None


@dataclass(frozen=True)
class ExplorationOptions:
    """Everything ``Universe`` accepts beyond the protocol itself."""

    limits: Limits = Limits()
    checkpoint: CheckpointPolicy = CheckpointPolicy()
    budget: ResourceBudget = ResourceBudget()
    sharding: Sharding = Sharding()
    store: str = "objects"


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()

# legacy kwarg -> (options group field | None for top level, field name)
_LEGACY_FIELDS = {
    "max_events": ("limits", "max_events"),
    "max_configurations": ("limits", "max_configurations"),
    "on_limit": ("limits", "on_limit"),
    "checkpoint": ("checkpoint", "path"),
    "checkpoint_every": ("checkpoint", "every"),
    "checkpoint_strict": ("checkpoint", "strict"),
    "checkpoint_format": ("checkpoint", "format"),
    "rss_budget_mb": ("budget", "rss_budget_mb"),
    "spill_dir": ("budget", "spill_dir"),
    "workers": ("sharding", "workers"),
    "supervision": ("sharding", "supervision"),
    "fault_plan": ("sharding", "fault_plan"),
    "store": (None, "store"),
}

_GROUP_TYPES = {
    "limits": Limits,
    "checkpoint": CheckpointPolicy,
    "budget": ResourceBudget,
    "sharding": Sharding,
}


def resolve_options(
    options: ExplorationOptions | None, legacy: dict[str, Any]
) -> ExplorationOptions:
    """Normalise one ``Universe`` call into an ``ExplorationOptions``.

    ``legacy`` maps legacy kwarg names to their values, with
    :data:`UNSET` marking kwargs the caller never passed.  Explicitly
    passed legacy kwargs are folded into ``options`` (or a fresh
    default instance when ``options is None``); a ``DeprecationWarning``
    fires only when the same knob was set through *both* paths with
    different values, in which case the legacy kwarg wins.
    """
    unknown = set(legacy) - set(_LEGACY_FIELDS)
    if unknown:
        raise TypeError(
            f"unknown Universe keyword(s): {', '.join(sorted(unknown))}"
        )
    resolved = options if options is not None else ExplorationOptions()
    if not isinstance(resolved, ExplorationOptions):
        raise TypeError(
            "Universe(options=...) expects an ExplorationOptions instance, "
            f"got {type(resolved).__name__}"
        )
    # Collect per-group overrides from explicitly passed legacy kwargs.
    overrides: dict[str | None, dict[str, Any]] = {}
    for kwarg, value in legacy.items():
        if value is UNSET:
            continue
        group, field_name = _LEGACY_FIELDS[kwarg]
        overrides.setdefault(group, {})[field_name] = value
        if options is not None:
            current = (
                getattr(options, field_name)
                if group is None
                else getattr(getattr(options, group), field_name)
            )
            default = _field_default(group, field_name)
            if current != default and current != value:
                warnings.warn(
                    f"Universe(): legacy kwarg {kwarg}={value!r} conflicts "
                    f"with options.{group + '.' if group else ''}"
                    f"{field_name}={current!r}; the legacy kwarg wins — "
                    "pass one or the other",
                    DeprecationWarning,
                    stacklevel=3,
                )
    if not overrides:
        return resolved
    replacements: dict[str, Any] = {}
    for group, group_overrides in overrides.items():
        if group is None:
            replacements.update(group_overrides)
        else:
            replacements[group] = _replace(
                getattr(resolved, group), group_overrides
            )
    return _replace(resolved, replacements)


def options_from_args(args: Any) -> ExplorationOptions:
    """One CLI flag set -> one :class:`ExplorationOptions`.

    The single mapping between ``argparse`` namespaces and the options
    dataclasses, shared by ``repro explore`` and ``repro bench`` so no
    surface hand-threads kwargs.  Flags map 1:1 onto dataclass fields
    (``--limit`` -> ``Limits.max_configurations``, ``--checkpoint`` ->
    ``CheckpointPolicy.path``, ...); absent attributes fall back to the
    dataclass defaults, so partial namespaces (bench suites) work too.
    ``on_limit`` is derived, not a flag: an RSS budget implies
    ``"truncate"`` (degrade at a layer boundary rather than die).
    """
    from repro.universe.faults import FaultPlan

    fault_specs = getattr(args, "fault", None)
    rss_budget_mb = getattr(args, "rss_budget", None)
    return ExplorationOptions(
        limits=Limits(
            max_configurations=getattr(args, "limit", 1_000_000),
            on_limit="truncate" if rss_budget_mb is not None else "raise",
        ),
        checkpoint=CheckpointPolicy(
            path=getattr(args, "checkpoint", None),
            every=getattr(args, "checkpoint_every", 1),
            strict=getattr(args, "strict", False),
            format=getattr(args, "checkpoint_format", "segmented"),
        ),
        budget=ResourceBudget(
            rss_budget_mb=rss_budget_mb,
            spill_dir=getattr(args, "spill_dir", None),
        ),
        sharding=Sharding(
            workers=getattr(args, "workers", None),
            fault_plan=(
                FaultPlan.parse(fault_specs) if fault_specs else None
            ),
        ),
        store=getattr(args, "store", "objects"),
    )


def _field_default(group: str | None, field_name: str) -> Any:
    cls = ExplorationOptions if group is None else _GROUP_TYPES[group]
    for entry in fields(cls):
        if entry.name == field_name:
            return entry.default
    raise AssertionError(field_name)  # pragma: no cover


def _replace(instance: Any, changes: dict[str, Any]) -> Any:
    """``dataclasses.replace`` without re-running ``__post_init__``
    surprises — all our dataclasses are plain field bags."""
    current = {
        entry.name: getattr(instance, entry.name)
        for entry in fields(instance)
    }
    current.update(changes)
    return type(instance)(**current)
