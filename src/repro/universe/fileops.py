"""File-operations shim: one seam between the engine and the filesystem.

Everything durable in this codebase — checkpoint segment appends,
manifest commits, monolithic saves, compaction, segment/manifest reads,
and the arena's spill tier — routes its filesystem calls through a
:class:`FileOps` instance instead of calling ``open``/``os.fsync``/
``os.replace`` directly.  In production that instance is the
passthrough :data:`DEFAULT_FILEOPS`; under test and chaos it is a
:class:`FaultInjectingFileOps`, which delivers the **storage fault
kinds** of :mod:`repro.universe.faults` deterministically:

=============  ===========  ==============================================
fault kind     fires on     observable error
=============  ===========  ==============================================
``enospc``     write ops    ``OSError(ENOSPC)`` — permanent, escalates to
                            the degradation ladder
``eio_write``  write ops    ``OSError(EIO)`` — transient, absorbed by the
                            typed retry (the whole durable-write unit
                            re-runs from its in-memory buffer)
``eio_read``   read ops     ``OSError(EIO)`` — transient, the retried
                            read is CRC re-verified downstream
``fsync_fail`` ``fsync``    ``OSError(EIO)`` — the durable-write unit
                            restarts from scratch (a retried *bare*
                            fsync after failure could silently drop
                            dirty pages; re-writing the buffer cannot)
``slow_io``    write ops    no error — the op sleeps ``seconds`` first
                            (latency injection for stall tolerance)
``fd_exhaust`` open ops     ``OSError(EMFILE)`` — transient descriptor
                            pressure
=============  ===========  ==============================================

Each armed fault fires **at most ``times`` times** (default once) and at
most one error-raising fault fires per operation, so a plan's effect is
a pure function of the operation sequence — the same determinism
contract the worker fault kinds have had since PR 6.
"""

from __future__ import annotations

import errno
import mmap
import os
import tempfile
import threading
import time

STORAGE_OP_KINDS = {
    "open": ("fd_exhaust",),
    "write": ("slow_io", "enospc", "eio_write"),
    "fsync": ("fsync_fail",),
    "read": ("eio_read",),
}
"""Which storage fault kinds can fire on which operation class."""


class FileOps:
    """Passthrough file operations — the production implementation.

    Kept to primitives (open/write/fsync/replace/read/...) plus one
    composite, :meth:`write_durable`, which is the *retry unit* for
    every durable write in the system: because it restarts from an
    in-memory buffer, re-running it wholesale after a transient failure
    (including a failed fsync) can only repeat work, never half-apply
    it.
    """

    # -- open-class ----------------------------------------------------
    def open(self, path, mode: str):
        return open(path, mode)

    def mkstemp(self, *, prefix: str, suffix: str, dir) -> tuple[int, str]:
        return tempfile.mkstemp(prefix=prefix, suffix=suffix, dir=dir)

    def fdopen(self, fd: int, mode: str):
        return os.fdopen(fd, mode)

    # -- write-class ---------------------------------------------------
    def write(self, handle, data) -> int:
        return handle.write(data)

    def replace(self, source, destination) -> None:
        os.replace(source, destination)

    # -- fsync ---------------------------------------------------------
    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    # -- read-class ----------------------------------------------------
    def read_bytes(self, path) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def mmap_slice(self, mapping, offset: int, length: int) -> bytes:
        return mapping[offset : offset + length]

    # -- unfaulted plumbing --------------------------------------------
    def flush(self, handle) -> None:
        handle.flush()

    def seek(self, handle, position: int) -> None:
        handle.seek(position)

    def truncate(self, handle, size: int) -> None:
        handle.truncate(size)

    def makedirs(self, path) -> None:
        os.makedirs(path, exist_ok=True)

    def unlink(self, path) -> None:
        os.unlink(path)

    def mmap_read(self, handle):
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    # -- composites ----------------------------------------------------
    def write_durable(self, path, blob: bytes) -> None:
        """open → write → flush → fsync → close, as one retryable unit."""
        with self.open(path, "wb") as handle:
            self.write(handle, blob)
            self.flush(handle)
            self.fsync(handle)


class FaultInjectingFileOps(FileOps):
    """A :class:`FileOps` that delivers armed storage faults.

    ``arm(kind, seconds, times)`` schedules a fault; every subsequent
    operation of the matching class consumes (at most) the first armed
    match and raises the mapped ``OSError`` (or sleeps, for
    ``slow_io``).  Thread-safe: the exploration thread arms at layer
    boundaries while the background checkpoint writer performs the I/O.
    ``fired`` records ``(kind, operation)`` in firing order for
    assertions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: list[list] = []  # [kind, seconds, times-remaining]
        self.fired: list[tuple[str, str]] = []

    def arm(self, kind: str, seconds: float = 0.0, times: int = 1) -> None:
        if kind not in {k for kinds in STORAGE_OP_KINDS.values() for k in kinds}:
            raise ValueError(f"unknown storage fault kind {kind!r}")
        if times < 1:
            raise ValueError(f"fault times must be >= 1, got {times}")
        with self._lock:
            self._armed.append([kind, seconds, times])

    @property
    def armed(self) -> tuple[tuple[str, float, int], ...]:
        with self._lock:
            return tuple((k, s, t) for k, s, t in self._armed)

    def _take(self, operation: str):
        kinds = STORAGE_OP_KINDS[operation]
        with self._lock:
            for entry in self._armed:
                if entry[0] in kinds:
                    entry[2] -= 1
                    if entry[2] == 0:
                        self._armed.remove(entry)
                    self.fired.append((entry[0], operation))
                    return entry[0], entry[1]
        return None

    def _inject(self, operation: str) -> None:
        taken = self._take(operation)
        if taken is None:
            return
        kind, seconds = taken
        if kind == "slow_io":
            time.sleep(seconds)
            return
        if kind == "enospc":
            raise OSError(
                errno.ENOSPC, "No space left on device (injected enospc)"
            )
        if kind == "fd_exhaust":
            raise OSError(
                errno.EMFILE, "Too many open files (injected fd_exhaust)"
            )
        raise OSError(errno.EIO, f"Input/output error (injected {kind})")

    # -- faulted overrides ---------------------------------------------
    def open(self, path, mode: str):
        if "w" in mode or "a" in mode or "+" in mode:
            self._inject("open")
        return super().open(path, mode)

    def mkstemp(self, *, prefix: str, suffix: str, dir) -> tuple[int, str]:
        self._inject("open")
        return super().mkstemp(prefix=prefix, suffix=suffix, dir=dir)

    def write(self, handle, data) -> int:
        self._inject("write")
        return super().write(handle, data)

    def replace(self, source, destination) -> None:
        self._inject("write")
        super().replace(source, destination)

    def fsync(self, handle) -> None:
        self._inject("fsync")
        super().fsync(handle)

    def read_bytes(self, path) -> bytes:
        self._inject("read")
        return super().read_bytes(path)

    def mmap_slice(self, mapping, offset: int, length: int) -> bytes:
        self._inject("read")
        return super().mmap_slice(mapping, offset, length)


DEFAULT_FILEOPS = FileOps()
"""The shared passthrough instance (stateless, safe to share)."""


__all__ = [
    "DEFAULT_FILEOPS",
    "STORAGE_OP_KINDS",
    "FaultInjectingFileOps",
    "FileOps",
]
