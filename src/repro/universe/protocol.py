"""Protocols: finite descriptions of the paper's process-computation sets.

Section 2 characterises a process by a prefix-closed set of finite event
sequences.  A :class:`Protocol` is the finite, executable presentation of
such a family: for every process and local history it lists the *local
steps* (send and internal events) the process may take next, and says
which in-flight messages it is willing to receive.  The set of process
computations of ``p`` is then exactly the set of histories reachable by
those rules, and the system computations are the interleavings in which
every receive follows its send — enumerated by
:class:`repro.universe.explorer.Universe`.

Protocol authors produce *value-object* events: the same logical step must
yield an equal event in every computation in which it occurs, since
isomorphism compares projections by equality.  The helpers
:meth:`Protocol.next_message` and :meth:`Protocol.next_internal` implement
the paper's sequence-number convention for distinguishing repeated
messages and steps.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolError
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    internal,
    receive,
    send,
)
from repro.core.process import ProcessId, ProcessSetLike, as_process_set

History = tuple[Event, ...]
"""A local history: one process's event sequence."""


class Protocol(abc.ABC):
    """Finite description of a distributed system's behaviours.

    Subclasses implement :meth:`local_steps` and optionally override
    :meth:`can_receive` (default: always willing).  ``processes`` is the
    paper's ``D``; the model rules out processes with no event in any
    computation, but we accept them for convenience (they simply never
    contribute events).
    """

    def __init__(self, processes: ProcessSetLike) -> None:
        self._processes = as_process_set(processes)
        if not self._processes:
            raise ProtocolError("a protocol needs at least one process")

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The set of all processes, the paper's ``D``."""
        return self._processes

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise ProtocolError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set

    # ------------------------------------------------------------------
    # Behaviour definition
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        """Send and internal events enabled after ``history``.

        Must not yield receive events — receive enabling depends on the
        rest of the system and is handled by :meth:`enabled_events`.
        """

    def can_receive(
        self, process: ProcessId, history: History, message: Message
    ) -> bool:
        """Whether ``process`` may receive ``message`` after ``history``.

        Default: always.  Override to model selective reception.
        """
        return True

    # ------------------------------------------------------------------
    # System-level enabling
    # ------------------------------------------------------------------
    def enabled_events(self, configuration: Configuration) -> list[Event]:
        """All events that may extend ``configuration`` by one step.

        Local steps come from :meth:`local_steps`; receive events are
        offered for every in-flight message whose receiver is willing.
        The result is deterministically ordered so exploration is
        reproducible.
        """
        enabled: list[Event] = []
        in_flight = configuration.in_flight_messages
        for process in sorted(self._processes):
            history = configuration.history(process)
            for event in self.local_steps(process, history):
                if event.is_receive:
                    raise ProtocolError(
                        f"local_steps of {process!r} yielded a receive event"
                    )
                if event.process != process:
                    raise ProtocolError(
                        f"local_steps of {process!r} yielded an event on "
                        f"{event.process!r}"
                    )
                enabled.append(event)
        for message in sorted(in_flight):
            history = configuration.history(message.receiver)
            if message.receiver not in self._processes:
                continue
            if self.can_receive(message.receiver, history, message):
                enabled.append(receive(message))
        return enabled

    # ------------------------------------------------------------------
    # Membership checks (the paper's "zp is a process computation of p")
    # ------------------------------------------------------------------
    def is_process_computation(self, process: ProcessId, history: History) -> bool:
        """True iff ``history`` is reachable by this process's rules.

        Receives are accepted whenever :meth:`can_receive` allows them —
        whether the message was ever sent is a system-level question.
        """
        prefix: History = ()
        for event in history:
            if event.process != process:
                return False
            if event.is_receive:
                assert isinstance(event, ReceiveEvent)
                if not self.can_receive(process, prefix, event.message):
                    return False
            else:
                if event not in set(self.local_steps(process, prefix)):
                    return False
            prefix = prefix + (event,)
        return True

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def next_message(
        history: History,
        sender: ProcessId,
        receiver: ProcessId,
        tag: str,
        payload=None,
    ) -> Message:
        """A message whose ``seq`` counts equal-tagged prior sends.

        Guarantees the paper's all-messages-distinguished convention while
        keeping events equal across computations that reach the same local
        history.
        """
        seq = sum(
            1
            for event in history
            if isinstance(event, SendEvent)
            and event.message.tag == tag
            and event.message.receiver == receiver
        )
        return Message(
            sender=sender, receiver=receiver, tag=tag, seq=seq, payload=payload
        )

    @staticmethod
    def next_internal(
        history: History, process: ProcessId, tag: str, payload=None
    ) -> InternalEvent:
        """An internal event whose ``seq`` counts equal-tagged prior steps."""
        seq = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == tag
        )
        return internal(process, tag=tag, seq=seq, payload=payload)

    @staticmethod
    def send_of(message: Message) -> SendEvent:
        """The send event of ``message`` (re-exported for protocol code)."""
        return send(message)
