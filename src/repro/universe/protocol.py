"""Protocols: finite descriptions of the paper's process-computation sets.

Section 2 characterises a process by a prefix-closed set of finite event
sequences.  A :class:`Protocol` is the finite, executable presentation of
such a family: for every process and local history it lists the *local
steps* (send and internal events) the process may take next, and says
which in-flight messages it is willing to receive.  The set of process
computations of ``p`` is then exactly the set of histories reachable by
those rules, and the system computations are the interleavings in which
every receive follows its send — enumerated by
:class:`repro.universe.explorer.Universe`.

Protocol authors produce *value-object* events: the same logical step must
yield an equal event in every computation in which it occurs, since
isomorphism compares projections by equality.  The helpers
:meth:`Protocol.next_message` and :meth:`Protocol.next_internal` implement
the paper's sequence-number convention for distinguishing repeated
messages and steps.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolError
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    internal,
    receive,
    send,
)
from repro.core.process import ProcessId, ProcessSetLike, as_process_set

History = tuple[Event, ...]
"""A local history: one process's event sequence."""

_ENABLED_CACHE_MAX_EVENTS = 64
"""Only configurations at most this large are memoised — exhaustive
universes stay under it by construction; simulation traces exceed it."""

_ENABLED_CACHE_MAX_ENTRIES = 1 << 17
"""Hard cap on memoised configurations per protocol instance."""


class Protocol(abc.ABC):
    """Finite description of a distributed system's behaviours.

    Subclasses implement :meth:`local_steps` and optionally override
    :meth:`can_receive` (default: always willing).  ``processes`` is the
    paper's ``D``; the model rules out processes with no event in any
    computation, but we accept them for convenience (they simply never
    contribute events).
    """

    def __init__(self, processes: ProcessSetLike) -> None:
        self._processes = as_process_set(processes)
        if not self._processes:
            raise ProtocolError("a protocol needs at least one process")
        self._ordered_processes = tuple(sorted(self._processes))
        self._prepare_step_tables()

    def _prepare_step_tables(self) -> None:
        """Set up the memo tables *before* exploration starts.

        The enabling relation, per-history local steps and per-message
        receive events are all memoised; creating the tables (and
        resolving whether :meth:`can_receive` is overridden) eagerly in
        ``__init__`` keeps the first BFS free of lazy-initialisation
        branches.  Also called defensively from :meth:`enabled_events`
        for subclasses that skip ``Protocol.__init__``.
        """
        self._enabled_cache: dict[Configuration, tuple[Event, ...]] = {}
        self._local_step_cache: dict[ProcessId, dict] = {
            process: {} for process in self._ordered_processes
        }
        self._receive_cache: dict[Message, ReceiveEvent] = {}
        self._selective = type(self).can_receive is not Protocol.can_receive

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The set of all processes, the paper's ``D``."""
        return self._processes

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise ProtocolError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set

    # ------------------------------------------------------------------
    # Behaviour definition
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        """Send and internal events enabled after ``history``.

        Must not yield receive events — receive enabling depends on the
        rest of the system and is handled by :meth:`enabled_events`.
        """

    def can_receive(
        self, process: ProcessId, history: History, message: Message
    ) -> bool:
        """Whether ``process`` may receive ``message`` after ``history``.

        Default: always.  Override to model selective reception.
        """
        return True

    # ------------------------------------------------------------------
    # System-level enabling
    # ------------------------------------------------------------------
    def enabled_events(self, configuration: Configuration) -> Sequence[Event]:
        """All events that may extend ``configuration`` by one step.

        Local steps come from :meth:`local_steps`; receive events are
        offered for every in-flight message whose receiver is willing.
        The result is deterministically ordered so exploration is
        reproducible, and must be treated as read-only (small
        configurations share one memoised tuple).
        """
        # The whole enabling relation is a pure function of the
        # configuration for a fixed protocol, so it is memoised per
        # configuration (configurations are interned value objects) and
        # returned as an immutable tuple.  Caching is gated to small
        # configurations and a bounded entry count: exhaustively explored
        # configurations are small by construction, while long simulation
        # traces grow without bound and would pin O(steps^2) event
        # references in a strong cache.
        cacheable = len(configuration) <= _ENABLED_CACHE_MAX_EVENTS
        try:
            enabled_cache = self._enabled_cache
        except AttributeError:  # subclass that skipped Protocol.__init__
            self._ordered_processes = tuple(sorted(self._processes))
            self._prepare_step_tables()
            enabled_cache = self._enabled_cache
        if cacheable:
            cached = enabled_cache.get(configuration)
            if cached is not None:
                return cached
        enabled: list[Event] = []
        in_flight = configuration.in_flight_messages
        ordered = self._ordered_processes
        step_cache = self._local_step_cache
        history_of = configuration.histories.get
        for process in ordered:
            history = history_of(process, ())
            # local_steps is a pure function of (process, history) — the
            # protocol contract requires value-object events — so its
            # results are memoised: exploration asks about the same local
            # history once per interleaving otherwise.
            per_process = step_cache[process]
            steps = per_process.get(history)
            if steps is None:
                steps = tuple(self.local_steps(process, history))
                for event in steps:
                    if event.is_receive:
                        raise ProtocolError(
                            f"local_steps of {process!r} yielded a receive event"
                        )
                    if event.process != process:
                        raise ProtocolError(
                            f"local_steps of {process!r} yielded an event on "
                            f"{event.process!r}"
                        )
                per_process[history] = steps
            enabled.extend(steps)
        if in_flight:
            pending = sorted(in_flight) if len(in_flight) > 1 else in_flight
            # Protocols that keep the always-willing default skip the
            # per-message can_receive call entirely; receive events are
            # memoised per message (the same in-flight message is offered
            # along every interleaving it is pending in).
            selective = self._selective
            processes = self._processes
            receive_cache = self._receive_cache
            for message in pending:
                receiver = message.receiver
                if receiver not in processes:
                    continue
                if not selective or self.can_receive(
                    receiver, history_of(receiver, ()), message
                ):
                    event = receive_cache.get(message)
                    if event is None:
                        event = receive(message)
                        receive_cache[message] = event
                    enabled.append(event)
        result = tuple(enabled)
        if cacheable and len(enabled_cache) < _ENABLED_CACHE_MAX_ENTRIES:
            enabled_cache[configuration] = result
        return result

    # ------------------------------------------------------------------
    # Membership checks (the paper's "zp is a process computation of p")
    # ------------------------------------------------------------------
    def is_process_computation(self, process: ProcessId, history: History) -> bool:
        """True iff ``history`` is reachable by this process's rules.

        Receives are accepted whenever :meth:`can_receive` allows them —
        whether the message was ever sent is a system-level question.
        """
        prefix: History = ()
        for event in history:
            if event.process != process:
                return False
            if event.is_receive:
                assert isinstance(event, ReceiveEvent)
                if not self.can_receive(process, prefix, event.message):
                    return False
            else:
                if event not in set(self.local_steps(process, prefix)):
                    return False
            prefix = prefix + (event,)
        return True

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def next_message(
        history: History,
        sender: ProcessId,
        receiver: ProcessId,
        tag: str,
        payload=None,
    ) -> Message:
        """A message whose ``seq`` counts equal-tagged prior sends.

        Guarantees the paper's all-messages-distinguished convention while
        keeping events equal across computations that reach the same local
        history.
        """
        seq = sum(
            1
            for event in history
            if isinstance(event, SendEvent)
            and event.message.tag == tag
            and event.message.receiver == receiver
        )
        return Message(
            sender=sender, receiver=receiver, tag=tag, seq=seq, payload=payload
        )

    @staticmethod
    def next_internal(
        history: History, process: ProcessId, tag: str, payload=None
    ) -> InternalEvent:
        """An internal event whose ``seq`` counts equal-tagged prior steps."""
        seq = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == tag
        )
        return internal(process, tag=tag, seq=seq, payload=payload)

    @staticmethod
    def send_of(message: Message) -> SendEvent:
        """The send event of ``message`` (re-exported for protocol code)."""
        return send(message)
