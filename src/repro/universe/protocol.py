"""Protocols: finite descriptions of the paper's process-computation sets.

Section 2 characterises a process by a prefix-closed set of finite event
sequences.  A :class:`Protocol` is the finite, executable presentation of
such a family: for every process and local history it lists the *local
steps* (send and internal events) the process may take next, and says
which in-flight messages it is willing to receive.  The set of process
computations of ``p`` is then exactly the set of histories reachable by
those rules, and the system computations are the interleavings in which
every receive follows its send — enumerated by
:class:`repro.universe.explorer.Universe`.

Protocol authors produce *value-object* events: the same logical step must
yield an equal event in every computation in which it occurs, since
isomorphism compares projections by equality.  The helpers
:meth:`Protocol.next_message` and :meth:`Protocol.next_internal` implement
the paper's sequence-number convention for distinguishing repeated
messages and steps.
"""

from __future__ import annotations

import abc
import time
from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolError
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    internal,
    receive,
    send,
)
from repro.core.process import ProcessId, ProcessSetLike, as_process_set

History = tuple[Event, ...]
"""A local history: one process's event sequence."""

_ENABLED_CACHE_MAX_EVENTS = 64
"""Only configurations at most this large are memoised — exhaustive
universes stay under it by construction; simulation traces exceed it."""

_ENABLED_CACHE_MAX_ENTRIES = 1 << 17
"""Hard cap on memoised configurations per protocol instance."""


class CompiledStepTable:
    """A protocol's ``local_steps`` compiled into lookup tables.

    Exploration pops millions of configurations, and every pop asks for
    the local steps of each process.  This table guarantees the
    *interpreted* ``local_steps`` body runs at most once per distinct
    **history shape** — the protocol-declared canonical summary of a
    local history (see :meth:`Protocol.step_shape`) — and at most once
    per distinct history for protocols that declare no shape.  Lookups
    hit two memo levels:

    1. exact history → step tuple (one dict get on the shared tuple);
    2. on miss, ``step_shape`` → step tuple — so a history whose shape
       was seen along another interleaving reuses the compiled entry
       without re-entering protocol code at all.

    The shape contract (protocols must uphold it, tests cross-check it
    against the retained :meth:`Protocol.enabled_events` oracle): if two
    histories of a process have equal shapes, ``local_steps`` yields
    equal value-object event tuples for both.

    ``build_seconds`` accumulates the wall time spent inside the
    interpreted compile path, so benchmark cold starts can attribute
    table build time separately from BFS time (see PERFORMANCE.md).
    """

    __slots__ = (
        "_protocol",
        "_by_history",
        "_by_shape",
        "_shaped",
        "build_seconds",
        "compiled_entries",
        "shape_hits",
    )

    def __init__(self, protocol: "Protocol") -> None:
        self._protocol = protocol
        self._by_history: dict[ProcessId, dict[History, tuple[Event, ...]]] = {
            process: {} for process in protocol._ordered_processes
        }
        self._by_shape: dict[ProcessId, dict[object, tuple[Event, ...]]] = {
            process: {} for process in protocol._ordered_processes
        }
        self._shaped = type(protocol).step_shape is not Protocol.step_shape
        self.build_seconds = 0.0
        self.compiled_entries = 0
        self.shape_hits = 0

    def steps(self, process: ProcessId, history: History) -> tuple[Event, ...]:
        """The compiled local steps of ``process`` after ``history``."""
        per_history = self._by_history[process]
        steps = per_history.get(history)
        if steps is not None:
            return steps
        if self._shaped:
            shape = self._protocol.step_shape(process, history)
            if shape is not None:
                per_shape = self._by_shape[process]
                steps = per_shape.get(shape)
                if steps is None:
                    steps = self._compile(process, history)
                    per_shape[shape] = steps
                else:
                    self.shape_hits += 1
                per_history[history] = steps
                return steps
        steps = self._compile(process, history)
        per_history[history] = steps
        return steps

    def __getstate__(self) -> dict:
        """Pickled handoff of a (possibly warm) compiled table.

        ``__slots__`` classes have no ``__dict__`` for the default pickle
        path; the explicit state keeps every memo level — so a table
        handed to a spawned worker arrives with its compiled entries
        intact instead of re-running interpreted protocol code per shard.
        (The sharded exploration engine's forked workers inherit the
        table copy-on-write and never pickle it; this path exists for
        explicit handoffs and diagnostics.)
        """
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def _compile(self, process: ProcessId, history: History) -> tuple[Event, ...]:
        """Run the interpreted ``local_steps`` once, validated and timed."""
        start = time.perf_counter()
        steps = tuple(self._protocol.local_steps(process, history))
        for event in steps:
            if event.is_receive:
                raise ProtocolError(
                    f"local_steps of {process!r} yielded a receive event"
                )
            if event.process != process:
                raise ProtocolError(
                    f"local_steps of {process!r} yielded an event on "
                    f"{event.process!r}"
                )
        self.build_seconds += time.perf_counter() - start
        self.compiled_entries += 1
        return steps


class Protocol(abc.ABC):
    """Finite description of a distributed system's behaviours.

    Subclasses implement :meth:`local_steps` and optionally override
    :meth:`can_receive` (default: always willing).  ``processes`` is the
    paper's ``D``; the model rules out processes with no event in any
    computation, but we accept them for convenience (they simply never
    contribute events).
    """

    def __init__(self, processes: ProcessSetLike) -> None:
        self._processes = as_process_set(processes)
        if not self._processes:
            raise ProtocolError("a protocol needs at least one process")
        self._ordered_processes = tuple(sorted(self._processes))
        self._prepare_step_tables()

    def _prepare_step_tables(self) -> None:
        """Set up the memo tables *before* exploration starts.

        The enabling relation, per-history local steps and per-message
        receive events are all memoised; creating the tables (and
        resolving whether :meth:`can_receive` is overridden) eagerly in
        ``__init__`` keeps the first BFS free of lazy-initialisation
        branches.  Also called defensively from :meth:`enabled_events`
        for subclasses that skip ``Protocol.__init__``.
        """
        self._enabled_cache: dict[Configuration, tuple[Event, ...]] = {}
        self._local_step_cache: dict[ProcessId, dict] = {
            process: {} for process in self._ordered_processes
        }
        self._receive_cache: dict[Message, ReceiveEvent] = {}
        self._receive_set_cache: dict[frozenset, tuple[ReceiveEvent, ...]] = {}
        self._selective = type(self).can_receive is not Protocol.can_receive
        self._step_table = CompiledStepTable(self)

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The set of all processes, the paper's ``D``."""
        return self._processes

    @property
    def ordered_processes(self) -> tuple[ProcessId, ...]:
        """``D`` sorted — the deterministic iteration order of the kernels."""
        return self._ordered_processes

    @property
    def is_selective(self) -> bool:
        """Whether this protocol overrides :meth:`can_receive`."""
        try:
            return self._selective
        except AttributeError:
            self._ordered_processes = tuple(sorted(self._processes))
            self._prepare_step_tables()
            return self._selective

    @property
    def step_table(self) -> CompiledStepTable:
        """The compiled step table (created eagerly in ``__init__``)."""
        try:
            return self._step_table
        except AttributeError:  # subclass that skipped Protocol.__init__
            self._ordered_processes = tuple(sorted(self._processes))
            self._prepare_step_tables()
            return self._step_table

    @property
    def has_custom_enabling(self) -> bool:
        """Whether this protocol overrides :meth:`enabled_events`.

        Protocols may restrict the system-level enabling relation beyond
        local steps + willing receives (e.g. synchrony assumptions).  The
        exploration kernel checks this and routes every configuration
        through the override instead of the compiled fast path.  Most
        restrictions are *filters* over the default enabled set; those
        should override :meth:`filter_enabled_events` instead, which
        keeps the protocol on the compiled step tables.
        """
        return type(self).enabled_events is not Protocol.enabled_events

    @property
    def has_enabling_filter(self) -> bool:
        """Whether this protocol overrides :meth:`filter_enabled_events`."""
        return (
            type(self).filter_enabled_events
            is not Protocol.filter_enabled_events
        )

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise ProtocolError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set

    # ------------------------------------------------------------------
    # Behaviour definition
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        """Send and internal events enabled after ``history``.

        Must not yield receive events — receive enabling depends on the
        rest of the system and is handled by :meth:`enabled_events`.
        """

    def can_receive(
        self, process: ProcessId, history: History, message: Message
    ) -> bool:
        """Whether ``process`` may receive ``message`` after ``history``.

        Default: always.  Override to model selective reception.
        """
        return True

    def step_shape(self, process: ProcessId, history: History) -> object | None:
        """Canonical summary of ``history`` for the compiled step table.

        Contract: if ``step_shape(p, h1) == step_shape(p, h2)`` (and
        neither is ``None``), then ``local_steps(p, h1)`` and
        ``local_steps(p, h2)`` yield *equal value-object event tuples*.
        Finer shapes are always sound (they merely compile more entries);
        an over-coarse shape is a protocol bug — the step-table test
        suite cross-checks every bundled protocol against the
        :meth:`enabled_events` oracle.

        Default: ``None`` — the table memoises per exact history, which
        is always sound.  Override where many histories share one step
        set (e.g. flooding: steps depend only on who has been sent to).
        """
        return None

    def receive_event(self, message: Message) -> ReceiveEvent:
        """The memoised receive event of ``message``.

        The same in-flight message is offered along every interleaving it
        is pending in; the memo keeps that one event object per message.
        """
        cache = self._receive_cache
        event = cache.get(message)
        if event is None:
            event = receive(message)
            cache[message] = event
        return event

    def receive_events_for(
        self, in_flight: frozenset[Message]
    ) -> tuple[ReceiveEvent, ...]:
        """The memoised receive set of one in-flight message set.

        Only valid for protocols with the always-willing default
        ``can_receive`` (callers gate on :attr:`is_selective`): the
        offered receives are then a pure function of the in-flight set,
        so the sort + per-message lookups run once per distinct set —
        the same channel contents recur across every interleaving of the
        rest of the system.  Order matches :meth:`enabled_events`
        exactly: ascending message order, receivers outside ``D``
        skipped.
        """
        cache = self._receive_set_cache
        events = cache.get(in_flight)
        if events is None:
            pending = sorted(in_flight) if len(in_flight) > 1 else tuple(in_flight)
            processes = self._processes
            receive_cache = self._receive_cache
            collected = []
            for message in pending:
                if message.receiver not in processes:
                    continue
                event = receive_cache.get(message)
                if event is None:
                    event = receive(message)
                    receive_cache[message] = event
                collected.append(event)
            events = tuple(collected)
            if len(cache) < _ENABLED_CACHE_MAX_ENTRIES:
                cache[in_flight] = events
        return events

    def selective_receive_events(
        self, history_of, in_flight: frozenset[Message]
    ) -> list[ReceiveEvent]:
        """Receive events of a selective protocol — the slow path.

        The offered set depends on the receivers' histories (via
        :meth:`can_receive`), so it cannot be memoised per in-flight set;
        ``history_of`` is the configuration's ``histories.get``.  One
        implementation, shared by :meth:`compiled_enabled_events` and the
        exploration kernel, so the ordering and gating rules cannot
        drift between them.
        """
        pending = sorted(in_flight) if len(in_flight) > 1 else in_flight
        processes = self._processes
        receive_cache = self._receive_cache
        events: list[ReceiveEvent] = []
        for message in pending:
            receiver = message.receiver
            if receiver not in processes:
                continue
            if self.can_receive(receiver, history_of(receiver, ()), message):
                event = receive_cache.get(message)
                if event is None:
                    event = receive(message)
                    receive_cache[message] = event
                events.append(event)
        return events

    # ------------------------------------------------------------------
    # System-level enabling
    # ------------------------------------------------------------------
    def filter_enabled_events(
        self, configuration: Configuration, events: Sequence[Event]
    ) -> Sequence[Event]:
        """Declarative system-level restriction of the enabled set.

        ``events`` is the default enabled set (compiled local steps plus
        willing receives, deterministically ordered); the override
        returns the sub-sequence actually enabled — *order must be
        preserved* and no new events may be introduced.  Unlike a full
        :meth:`enabled_events` override, a filter keeps the protocol on
        the compiled step tables and the exploration kernel's fast path:
        the kernel assembles the default set from its tables and applies
        the filter per configuration.  Synchrony-style protocols (e.g.
        the sync failure monitor) express their round gating this way.

        Default: no restriction.
        """
        return events

    def enabled_events(self, configuration: Configuration) -> Sequence[Event]:
        """All events that may extend ``configuration`` by one step.

        Local steps come from :meth:`local_steps`; receive events are
        offered for every in-flight message whose receiver is willing.
        The result is deterministically ordered so exploration is
        reproducible, and must be treated as read-only (small
        configurations share one memoised tuple).
        """
        # The whole enabling relation is a pure function of the
        # configuration for a fixed protocol, so it is memoised per
        # configuration (configurations are interned value objects) and
        # returned as an immutable tuple.  Caching is gated to small
        # configurations and a bounded entry count: exhaustively explored
        # configurations are small by construction, while long simulation
        # traces grow without bound and would pin O(steps^2) event
        # references in a strong cache.
        cacheable = len(configuration) <= _ENABLED_CACHE_MAX_EVENTS
        try:
            enabled_cache = self._enabled_cache
        except AttributeError:  # subclass that skipped Protocol.__init__
            self._ordered_processes = tuple(sorted(self._processes))
            self._prepare_step_tables()
            enabled_cache = self._enabled_cache
        if cacheable:
            cached = enabled_cache.get(configuration)
            if cached is not None:
                return cached
        enabled: list[Event] = []
        in_flight = configuration.in_flight_messages
        ordered = self._ordered_processes
        step_cache = self._local_step_cache
        history_of = configuration.histories.get
        for process in ordered:
            history = history_of(process, ())
            # local_steps is a pure function of (process, history) — the
            # protocol contract requires value-object events — so its
            # results are memoised: exploration asks about the same local
            # history once per interleaving otherwise.
            per_process = step_cache[process]
            steps = per_process.get(history)
            if steps is None:
                steps = tuple(self.local_steps(process, history))
                for event in steps:
                    if event.is_receive:
                        raise ProtocolError(
                            f"local_steps of {process!r} yielded a receive event"
                        )
                    if event.process != process:
                        raise ProtocolError(
                            f"local_steps of {process!r} yielded an event on "
                            f"{event.process!r}"
                        )
                per_process[history] = steps
            enabled.extend(steps)
        if in_flight:
            pending = sorted(in_flight) if len(in_flight) > 1 else in_flight
            # Protocols that keep the always-willing default skip the
            # per-message can_receive call entirely; receive events are
            # memoised per message (the same in-flight message is offered
            # along every interleaving it is pending in).
            selective = self._selective
            processes = self._processes
            receive_cache = self._receive_cache
            for message in pending:
                receiver = message.receiver
                if receiver not in processes:
                    continue
                if not selective or self.can_receive(
                    receiver, history_of(receiver, ()), message
                ):
                    event = receive_cache.get(message)
                    if event is None:
                        event = receive(message)
                        receive_cache[message] = event
                    enabled.append(event)
        if self.has_enabling_filter:
            # The filter is part of the enabling semantics, so the oracle
            # applies (and memoises) it exactly like the kernel does.
            result = tuple(self.filter_enabled_events(configuration, enabled))
        else:
            result = tuple(enabled)
        if cacheable and len(enabled_cache) < _ENABLED_CACHE_MAX_ENTRIES:
            enabled_cache[configuration] = result
        return result

    def compiled_enabled_events(
        self, configuration: Configuration
    ) -> tuple[Event, ...]:
        """:meth:`enabled_events` via the compiled step table.

        Bit-identical to the oracle — same events, same deterministic
        order — but local steps come from :class:`CompiledStepTable`
        (shape-keyed, never re-entering interpreted protocol logic for a
        known shape) and no per-configuration memo is consulted or
        written.  This is the path the exploration kernel takes; the
        step-table tests assert the bit-identity on every bundled
        protocol, complete and truncated.  Protocols that override
        :meth:`enabled_events` (custom system-level enabling, e.g.
        synchrony assumptions) are delegated to their override verbatim.
        """
        if type(self).enabled_events is not Protocol.enabled_events:
            return tuple(self.enabled_events(configuration))
        table = self.step_table
        steps_for = table.steps
        enabled: list[Event] = []
        history_of = configuration.histories.get
        for process in self._ordered_processes:
            history = history_of(process)
            enabled.extend(steps_for(process, history if history is not None else ()))
        in_flight = configuration.in_flight_messages
        if in_flight:
            if not self._selective:
                enabled.extend(self.receive_events_for(in_flight))
            else:
                enabled.extend(
                    self.selective_receive_events(history_of, in_flight)
                )
        if self.has_enabling_filter:
            return tuple(self.filter_enabled_events(configuration, enabled))
        return tuple(enabled)

    # ------------------------------------------------------------------
    # Membership checks (the paper's "zp is a process computation of p")
    # ------------------------------------------------------------------
    def is_process_computation(self, process: ProcessId, history: History) -> bool:
        """True iff ``history`` is reachable by this process's rules.

        Receives are accepted whenever :meth:`can_receive` allows them —
        whether the message was ever sent is a system-level question.
        """
        prefix: History = ()
        for event in history:
            if event.process != process:
                return False
            if event.is_receive:
                assert isinstance(event, ReceiveEvent)
                if not self.can_receive(process, prefix, event.message):
                    return False
            else:
                if event not in set(self.local_steps(process, prefix)):
                    return False
            prefix = prefix + (event,)
        return True

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def next_message(
        history: History,
        sender: ProcessId,
        receiver: ProcessId,
        tag: str,
        payload=None,
    ) -> Message:
        """A message whose ``seq`` counts equal-tagged prior sends.

        Guarantees the paper's all-messages-distinguished convention while
        keeping events equal across computations that reach the same local
        history.
        """
        seq = sum(
            1
            for event in history
            if isinstance(event, SendEvent)
            and event.message.tag == tag
            and event.message.receiver == receiver
        )
        return Message(
            sender=sender, receiver=receiver, tag=tag, seq=seq, payload=payload
        )

    @staticmethod
    def next_internal(
        history: History, process: ProcessId, tag: str, payload=None
    ) -> InternalEvent:
        """An internal event whose ``seq`` counts equal-tagged prior steps."""
        seq = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == tag
        )
        return internal(process, tag=tag, seq=seq, payload=payload)

    @staticmethod
    def send_of(message: Message) -> SendEvent:
        """The send event of ``message`` (re-exported for protocol code)."""
        return send(message)
