"""Layer-boundary checkpoint/resume for universe exploration.

Long explorations (star n=8 is ~20 s, n=9 is ~11 min and ~26 GB) are
lost in their entirety when the process dies — OOM kill, ^C, a worker
crash that exhausts recovery.  This module makes exploration *resumable*
at BFS layer boundaries, for both the in-process kernel and the sharded
engine, with one file format shared by both.

Design: the checkpoint does **not** store configurations or hashes.  It
stores the *merged discovery stream* — the sequence ``[(parent_id,
event), ...]`` of first discoveries in global BFS order — plus the CSR
successor arrays (dense ids only) and the completeness flag.  Replaying
the stream through the same construction path the sharded workers use
(:class:`repro.universe.sharded._Replica`) rebuilds the configuration
list, the content-hash id table (including collision-bucket layout) and
the rolling entry-hash memo *exactly*, so exploration continues from the
first unexpanded layer as if it had never stopped; the finished universe
is bit-identical to an uninterrupted run (asserted in
``tests/test_universe_checkpoint.py``).

Because hashes are recomputed at load time, a checkpoint is **portable
across interpreter hash seeds** — unlike the live sharded exchange,
which ships raw content hashes and needs ``hash_domain_token`` to match.
The compatibility token therefore covers what replay genuinely depends
on: the format version, the protocol identity (class and process set)
and the ``max_events`` bound.

Writes are atomic (write to a sibling temp file, fsync, ``os.replace``)
so an interrupted save leaves the previous checkpoint intact, never a
torn file.

The module also hosts the RSS watchdog used by ``--rss-budget``: rather
than being OOM-killed mid-layer (losing the run *and* the checkpoint
window), exploration that crosses the budget degrades to the
``on_limit="truncate"`` behaviour at the next layer boundary — the
partial universe is flagged incomplete, the checkpoint survives, and a
resume on a bigger machine finishes the job.
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path

from repro.core.errors import UniverseError

CHECKPOINT_MAGIC = b"REPRO-CKPT\n"
CHECKPOINT_VERSION = 1


class CheckpointError(UniverseError):
    """A checkpoint file is unreadable, corrupt, or incompatible with
    the exploration it was asked to resume."""


def compatibility_token(protocol, max_events) -> tuple:
    """What a checkpoint's replay actually depends on.

    The discovery stream is replayed through the protocol's step tables,
    so the protocol identity (class and ordered process set) and the
    ``max_events`` bound must match; content hashes are *recomputed* at
    load time, so the interpreter hash seed need not.
    """
    return (
        CHECKPOINT_VERSION,
        type(protocol).__qualname__,
        tuple(protocol.ordered_processes),
        max_events,
    )


class ResumedExploration:
    """What :meth:`CheckpointSession.try_resume` hands back to an engine."""

    __slots__ = ("frontier_start", "stream", "entry_hash_of", "layers")

    def __init__(self, frontier_start, stream, entry_hash_of, layers) -> None:
        self.frontier_start = frontier_start
        self.stream = stream
        self.entry_hash_of = entry_hash_of
        self.layers = layers


class CheckpointSession:
    """One exploration's checkpoint lifecycle: resume, commit, save.

    Created by :class:`~repro.universe.explorer.Universe` when a
    ``checkpoint`` path is given and threaded through whichever engine
    runs the exploration.  ``every`` saves one file per ``every``
    completed layers (the final state is always saved); each save
    atomically replaces the previous one.
    """

    def __init__(self, path, protocol, max_events, every: int = 1) -> None:
        if every < 1:
            raise UniverseError(
                f"checkpoint interval must be >= 1 layer, got {every}"
            )
        self.path = Path(path)
        self.protocol = protocol
        self.max_events = max_events
        self.every = every
        self.token = compatibility_token(protocol, max_events)
        # Cumulative discovery stream of all *completed* layers.
        self.stream: list = []
        self.layers = 0
        self.resumed_from: int | None = None
        self.saves = 0

    # -- resume --------------------------------------------------------
    def try_resume(self, universe) -> ResumedExploration | None:
        """Load ``self.path`` if it exists and rebuild ``universe``'s
        stores from it.

        Returns the engine-facing resume state, or ``None`` when there
        is no checkpoint file (a fresh run).  Raises
        :class:`CheckpointError` on a torn, corrupt or incompatible
        file — resuming from the wrong protocol must fail loudly, never
        mis-merge.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        payload = self._decode(raw)
        if payload["token"] != self.token:
            raise CheckpointError(
                f"checkpoint {self.path} is incompatible: it records "
                f"{payload['token']}, this exploration is {self.token}"
            )
        # Rebuild configurations / id table / entry-hash memo by
        # replaying the stream — the exact construction path the sharded
        # replicas use, so the rebuilt state is bit-identical.
        from repro.universe.sharded import _Replica

        stream = payload["stream"]
        replica = _Replica(self.protocol, self.max_events)
        replica.apply(stream)
        if len(replica.configurations) != payload["count"]:
            raise CheckpointError(
                f"checkpoint {self.path} replay desync: rebuilt "
                f"{len(replica.configurations)} configurations, file "
                f"records {payload['count']}"
            )
        universe._configurations.clear()
        universe._configurations.extend(replica.configurations)
        universe._ids_by_hash.clear()
        universe._ids_by_hash.update(replica.ids_by_hash)
        del universe._succ_ids[:]
        universe._succ_ids.frombytes(payload["succ_ids"])
        del universe._succ_offsets[:]
        universe._succ_offsets.frombytes(payload["succ_offsets"])
        universe._complete = payload["complete"]
        frontier_start = payload["frontier_start"]
        if len(universe._succ_offsets) != frontier_start + 1:
            raise CheckpointError(
                f"checkpoint {self.path} CSR desync: "
                f"{len(universe._succ_offsets)} offsets for a frontier "
                f"at {frontier_start}"
            )
        self.stream = list(stream)
        self.layers = payload["layers"]
        self.resumed_from = frontier_start
        return ResumedExploration(
            frontier_start, stream, replica.entry_hash_of, payload["layers"]
        )

    # -- commit --------------------------------------------------------
    def commit_layer(
        self, records, frontier_start, universe, final: bool = False
    ) -> None:
        """Fold one completed layer's discovery records into the stream
        and save if the interval (or ``final``) says so."""
        if records:
            self.stream.extend(records)
        self.layers += 1
        if final or self.layers % self.every == 0:
            self.save(frontier_start, universe)

    def save(self, frontier_start: int, universe) -> None:
        """Atomically write the current state to ``self.path``."""
        payload = {
            "token": self.token,
            "stream": self.stream,
            "count": len(universe._configurations),
            "frontier_start": frontier_start,
            "succ_ids": universe._succ_ids.tobytes(),
            "succ_offsets": universe._succ_offsets.tobytes(),
            "complete": universe._complete,
            "layers": self.layers,
        }
        blob = CHECKPOINT_MAGIC + zlib.compress(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 1
        )
        temp = self.path.with_name(self.path.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        self.saves += 1

    @staticmethod
    def _decode(raw: bytes) -> dict:
        if not raw.startswith(CHECKPOINT_MAGIC):
            raise CheckpointError(
                "not a repro checkpoint file (bad magic header)"
            )
        try:
            payload = pickle.loads(zlib.decompress(raw[len(CHECKPOINT_MAGIC):]))
        except Exception as error:
            raise CheckpointError(
                f"checkpoint is corrupt or truncated: {error}"
            ) from error
        if not isinstance(payload, dict) or "token" not in payload:
            raise CheckpointError("checkpoint payload is malformed")
        if payload["token"][0] != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {payload['token'][0]} is not "
                f"supported (this build reads version {CHECKPOINT_VERSION})"
            )
        return payload


# ---------------------------------------------------------------------
# RSS watchdog (``--rss-budget``)
# ---------------------------------------------------------------------
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss_mb(pid: int | None = None) -> float | None:
    """Resident set size of one process in MiB, or ``None`` if unknown.

    Reads ``/proc/<pid>/statm`` (Linux); falls back to ``ru_maxrss``
    (peak, self only) elsewhere.  The watchdog only ever compares
    against a budget, so peak-vs-current imprecision errs on the safe
    (earlier-truncation) side.
    """
    try:
        with open(f"/proc/{pid or 'self'}/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * _PAGE_SIZE / (1 << 20)
    except (OSError, ValueError, IndexError):
        pass
    if pid is not None:
        return None
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return peak / (1 << 10) if peak < (1 << 40) else peak / (1 << 20)
    except Exception:  # pragma: no cover - exotic platforms only
        return None


class RssWatchdog:
    """Checks total exploration RSS against a budget at layer boundaries.

    ``worker_pids`` (a zero-argument callable) lets the sharded engine
    include its live workers — each holds a full replica, so coordinator
    RSS alone understates the footprint (K+1)×.
    """

    def __init__(self, budget_mb: float, worker_pids=None) -> None:
        if budget_mb <= 0:
            raise UniverseError(
                f"rss budget must be positive, got {budget_mb}"
            )
        self.budget_mb = float(budget_mb)
        self.worker_pids = worker_pids
        self.last_mb: float | None = None

    def exceeded(self) -> bool:
        total = process_rss_mb()
        if total is None:
            return False
        if self.worker_pids is not None:
            for pid in self.worker_pids():
                worker = process_rss_mb(pid)
                if worker is not None:
                    total += worker
        self.last_mb = total
        return total > self.budget_mb


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointSession",
    "ResumedExploration",
    "RssWatchdog",
    "compatibility_token",
    "process_rss_mb",
]
