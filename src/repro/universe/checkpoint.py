"""Durable checkpoint/resume for universe exploration.

Long explorations (star n=8 is ~20 s, n=9 is ~11 min and ~26 GB) are
lost in their entirety when the process dies — OOM kill, ^C, a worker
crash that exhausts recovery.  This module makes exploration *resumable*
at BFS layer boundaries, for both the in-process kernel and the sharded
engine, with one on-disk format shared by both — and makes the
checkpoint itself survive the failure modes long runs actually hit:
whole-process SIGKILL mid-save, torn writes, and bit-flipped files.

Design: the checkpoint does **not** store configurations or hashes.  It
stores the *merged discovery stream* — the sequence ``[(parent_id,
event), ...]`` of first discoveries in global BFS order — plus the CSR
successor arrays (dense ids only) and the completeness flag.  Replaying
the stream through the same construction path the sharded workers use
(:class:`repro.universe.sharded._Replica`) rebuilds the configuration
list, the content-hash id table (including collision-bucket layout) and
the rolling entry-hash memo *exactly*, so exploration continues from the
first unexpanded layer as if it had never stopped; the finished universe
is bit-identical to an uninterrupted run (asserted in
``tests/test_universe_checkpoint.py`` and, across whole-process SIGKILLs,
in ``tests/test_universe_chaos.py``).

Because hashes are recomputed at load time, a checkpoint is **portable
across interpreter hash seeds** — unlike the live sharded exchange,
which ships raw content hashes and needs ``hash_domain_token`` to match.
The compatibility token therefore covers what replay genuinely depends
on: the format version, the protocol identity (class and process set)
and the ``max_events`` bound.

Segmented incremental format (version 2)
----------------------------------------

The PR 6 format was a single monolithic blob rewritten in full on every
save — O(stream) per layer, which dominates checkpointing cost at large
n.  Version 2 replaces it with a **manifest plus append-only per-layer
delta segments**:

* ``PATH`` is the *manifest*: magic ``REPRO-CKPT2\\n``, a CRC-32, and a
  compressed pickle of ``{token, layers, frontier_start, count,
  complete, generation, segments: [...]}`` — small (metadata only),
  always written atomically (tmp + fsync + ``os.replace``);
* each committed save appends one *segment* file
  (``PATH.g<generation>-<index>.seg``): segment magic, a CRC-guarded
  header (layer range, frontier, cumulative count/completeness), and a
  CRC-guarded compressed payload holding that save's **delta** — the new
  discovery records plus the CSR slice appended since the previous save.
  ``commit_layer`` therefore writes O(new layers), not O(stream);
* resume concatenates the segment deltas (CSR arrays are rebuilt by
  concatenation, configurations by replaying the concatenated stream)
  and verifies every CRC on the way;
* when the segment count exceeds :data:`DEFAULT_COMPACT_SEGMENTS` the
  session *compacts*: folds all committed segments into one under a new
  generation, commits the manifest, then deletes the old files — so the
  file count is bounded and the fold cost is amortised over the
  compaction interval.

**Crash anatomy.**  The manifest is the commit point.  A crash after the
segment append but before the manifest replace leaves an *orphan*
segment the manifest never references — discarded (and logged) on
resume.  A crash mid-manifest-write is impossible to observe thanks to
``os.replace``.  A bit flip or truncation inside a committed segment is
caught by its CRC: resume **salvages** the longest valid prefix,
truncating to the last intact layer boundary, records the event on the
universe's ``recovery_log``, and re-explores the lost tail —
``strict=True`` (``repro explore --strict``) turns salvage into a loud
:class:`CheckpointError` instead, and ``repro checkpoint verify PATH``
reports per-segment integrity with a non-zero exit on any damage.

**Background writes.**  Segmented saves run on a dedicated writer
thread: ``save`` snapshots the delta synchronously (the pending records
list is handed off wholesale and the CSR slices are copied with
``tobytes()``) and returns, so the exploration thread never waits on
compression or ``fsync``.  The crash-safety argument is unchanged
because the *ordering* is unchanged: jobs drain FIFO through one
writer, each job appends its segment (write + fsync) before the
manifest replace, and the manifest replace remains the only commit
point.  A crash at any moment therefore leaves either the previous
manifest (plus discardable orphan segments) or the new one — exactly
the two states the resume path already heals.  ``flush()`` blocks until
the queue drains; the final save flushes implicitly, so a completed
exploration always returns with its checkpoint committed, and
compaction only runs against a drained queue.  A writer-thread failure
is sticky: the stored exception re-raises on the next ``save``/
``flush`` on the exploration thread.  The ``stall_write`` fault kind
makes the writer sleep *inside* the append→commit window, giving the
chaos harness a deterministic target for SIGKILL-mid-background-write.

Version 1 monolithic checkpoints are still **readable**: resuming one
migrates it in place to the segmented format (one folded segment).
Writing v1 is retained behind ``format="monolithic"`` for the
controlled incremental-vs-full benchmark pair
(``repro bench --suite fault-recovery``).

The module also hosts the RSS watchdog used by ``--rss-budget``: rather
than being OOM-killed mid-layer (losing the run *and* the checkpoint
window), exploration that crosses the budget degrades to the
``on_limit="truncate"`` behaviour at the next layer boundary — the
partial universe is flagged incomplete, the checkpoint survives, and a
resume on a bigger machine finishes the job.  On hosts without a
readable ``/proc`` the watchdog deactivates with a one-time warning
(surfaced as :attr:`RssWatchdog.active`) instead of silently arming a
check that can never fire.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
import zlib
from array import array
from collections import deque
from pathlib import Path

from repro.core.errors import UniverseError
from repro.universe.arena import ArenaStore, compress_batch, decompress_batch
from repro.universe.fileops import DEFAULT_FILEOPS
from repro.universe.recovery import RecoveryLog
from repro.universe.retry import (
    DEFAULT_RETRY_POLICY,
    classify_storage_error,
    retry_io,
)

CHECKPOINT_MAGIC = b"REPRO-CKPT\n"
"""Version-1 (monolithic) magic — still readable, migrated on resume."""

MANIFEST_MAGIC = b"REPRO-CKPT2\n"
"""Version-2 (segmented) manifest magic."""

SEGMENT_MAGIC = b"RSEG"
"""Leading magic of every segment file."""

CHECKPOINT_VERSION = 2
MIN_READABLE_VERSION = 1

DEFAULT_COMPACT_SEGMENTS = 64
"""Compaction threshold: when a manifest references more committed
segments than this, the session folds them into a single segment under a
new generation.  The fold costs O(stream) but runs once per threshold
saves, so steady-state save cost stays O(delta) amortised."""


class CheckpointError(UniverseError):
    """A checkpoint file is unreadable, corrupt, or incompatible with
    the exploration it was asked to resume."""


def compatibility_token(protocol, max_events) -> tuple:
    """What a checkpoint's replay actually depends on.

    The discovery stream is replayed through the protocol's step tables,
    so the protocol identity (class and ordered process set) and the
    ``max_events`` bound must match; content hashes are *recomputed* at
    load time, so the interpreter hash seed need not.
    """
    return (
        CHECKPOINT_VERSION,
        type(protocol).__qualname__,
        tuple(protocol.ordered_processes),
        max_events,
    )


def _parse_version(raw: bytes) -> int:
    """The format version encoded in the magic line, or raise.

    ``REPRO-CKPT\\n`` is version 1; ``REPRO-CKPT<digits>\\n`` is that
    version.  Anything else is not a repro checkpoint.
    """
    prefix = b"REPRO-CKPT"
    if not raw.startswith(prefix):
        raise CheckpointError("not a repro checkpoint file (bad magic header)")
    newline = raw.find(b"\n", len(prefix), len(prefix) + 8)
    if newline < 0:
        raise CheckpointError("not a repro checkpoint file (bad magic header)")
    digits = raw[len(prefix):newline]
    if digits == b"":
        return 1
    if digits.isdigit():
        return int(digits)
    raise CheckpointError("not a repro checkpoint file (bad magic header)")


class ResumedExploration:
    """What :meth:`CheckpointSession.try_resume` hands back to an engine."""

    __slots__ = ("frontier_start", "stream", "entry_hash_of", "layers")

    def __init__(self, frontier_start, stream, entry_hash_of, layers) -> None:
        self.frontier_start = frontier_start
        self.stream = stream
        self.entry_hash_of = entry_hash_of
        self.layers = layers


class _SegmentInvalid(Exception):
    """Internal: one segment failed verification (reason in ``args``)."""


# ---------------------------------------------------------------------
# Segment encode / decode
# ---------------------------------------------------------------------
def _encode_segment(header: dict, payload: bytes) -> bytes:
    header_blob = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        SEGMENT_MAGIC
        + len(header_blob).to_bytes(4, "little")
        + zlib.crc32(header_blob).to_bytes(4, "little")
        + header_blob
        + payload
    )


def _decode_segment(raw: bytes) -> tuple[dict, bytes]:
    """``(header, payload_bytes)`` of one segment file, or raise
    :class:`_SegmentInvalid` with the reason."""
    if not raw.startswith(SEGMENT_MAGIC):
        raise _SegmentInvalid("bad segment magic")
    base = len(SEGMENT_MAGIC)
    if len(raw) < base + 8:
        raise _SegmentInvalid("segment header truncated")
    header_len = int.from_bytes(raw[base : base + 4], "little")
    header_crc = int.from_bytes(raw[base + 4 : base + 8], "little")
    header_blob = raw[base + 8 : base + 8 + header_len]
    if len(header_blob) != header_len:
        raise _SegmentInvalid("segment header truncated")
    if zlib.crc32(header_blob) != header_crc:
        raise _SegmentInvalid("segment header CRC mismatch")
    try:
        header = pickle.loads(header_blob)
    except Exception as error:
        raise _SegmentInvalid(f"segment header unreadable: {error}") from error
    payload = raw[base + 8 + header_len :]
    if len(payload) != header.get("payload_len"):
        raise _SegmentInvalid(
            f"segment payload truncated: {len(payload)} bytes, header "
            f"records {header.get('payload_len')}"
        )
    if zlib.crc32(payload) != header.get("payload_crc"):
        raise _SegmentInvalid("segment payload CRC mismatch")
    return header, payload


def _load_segment(
    path: Path, entry: dict, fileops=DEFAULT_FILEOPS, on_retry=None
) -> tuple[dict, dict]:
    """Read and fully verify one committed segment against its manifest
    entry.  Returns ``(header, payload_dict)``; raises
    :class:`_SegmentInvalid` on any damage.

    The read goes through the file-ops shim and the typed retry policy:
    a transient ``EIO`` is re-read with backoff and the result is CRC
    re-verified below — exactly the contract that makes ``EIO``-on-read
    safe to retry at all."""
    seg_path = path.with_name(entry["name"])
    try:
        raw = retry_io(
            "segment read",
            lambda: fileops.read_bytes(seg_path),
            on_retry=on_retry,
        )
    except FileNotFoundError:
        raise _SegmentInvalid("segment file missing") from None
    except OSError as error:
        raise _SegmentInvalid(f"segment file unreadable: {error}") from error
    if len(raw) != entry["size"]:
        raise _SegmentInvalid(
            f"segment size {len(raw)} differs from the manifest's "
            f"{entry['size']}"
        )
    header, payload = _decode_segment(raw)
    if header["payload_crc"] != entry["payload_crc"]:
        raise _SegmentInvalid("segment CRC differs from the manifest's")
    for field in ("layer_from", "layer_to", "frontier_start", "count"):
        if header[field] != entry[field]:
            raise _SegmentInvalid(
                f"segment {field} {header[field]} differs from the "
                f"manifest's {entry[field]}"
            )
    try:
        decoded = decompress_batch(payload)
    except Exception as error:
        raise _SegmentInvalid(
            f"segment payload undecodable: {error}"
        ) from error
    if len(decoded.get("records", ())) != header["records"]:
        raise _SegmentInvalid("segment record count differs from its header")
    return header, decoded


class CheckpointSession:
    """One exploration's checkpoint lifecycle: resume, commit, save.

    Created by :class:`~repro.universe.explorer.Universe` when a
    ``checkpoint`` path is given and threaded through whichever engine
    runs the exploration.  ``every`` saves once per ``every`` completed
    layers (the final state is always saved).

    ``format`` selects the on-disk writer: ``"segmented"`` (default,
    version 2 — O(delta) incremental saves) or ``"monolithic"`` (the
    retained PR 6 full-rewrite format, kept for the controlled
    incremental-vs-full benchmark pair).  Both resume either format;
    resuming a v1 file with a segmented session migrates it in place.

    ``strict`` turns corrupt-tail salvage into a hard
    :class:`CheckpointError`.  ``fault_actions`` is the checkpoint slice
    of a :class:`~repro.universe.faults.FaultPlan` — ``(kind, layer,
    seconds)`` wire tuples, each fired at most once, for the
    chaos/recovery test matrix; empty in production use.

    ``background`` (default on) runs segmented saves on the writer
    thread; ``background=False`` keeps them on the calling thread — the
    knob exists for the synchronous-cost benchmark pair and for tests
    that need deterministic interleaving.

    ``fileops`` is the file-operations shim every filesystem call routes
    through (fault-injecting under chaos, passthrough otherwise);
    ``recovery_log`` is the shared :class:`RecoveryLog` structured
    events land on (the universe's own, when the session belongs to
    one).  Storage failures follow the typed retry policy: transient
    errors are retried with bounded backoff (logged as ``storage_retry``
    events); a *permanent* error (``ENOSPC``/``EROFS``) or an exhausted
    retry **degrades** the session instead of killing the exploration —
    checkpointing is disabled with a single loud warning and a
    ``checkpoint_degraded`` event, later ``save``/``flush`` calls no-op,
    and the last committed manifest remains valid on disk
    (:attr:`degraded` is surfaced as ``Universe.checkpoint_degraded``).
    Unclassified writer errors stay **sticky** and re-raise verbatim on
    the exploration thread, exactly as before.
    """

    def __init__(
        self,
        path,
        protocol,
        max_events,
        every: int = 1,
        *,
        strict: bool = False,
        format: str = "segmented",
        compact_at: int | None = None,
        fault_actions=(),
        background: bool = True,
        fileops=None,
        recovery_log: RecoveryLog | None = None,
        retry_policy=None,
    ) -> None:
        if every < 1:
            raise UniverseError(
                f"checkpoint interval must be >= 1 layer, got {every}"
            )
        if format not in ("segmented", "monolithic"):
            raise UniverseError(
                f"checkpoint format must be 'segmented' or 'monolithic', "
                f"got {format!r}"
            )
        self.path = Path(path)
        self.protocol = protocol
        self.max_events = max_events
        self.every = every
        self.strict = strict
        self.format = format
        self.compact_at = (
            DEFAULT_COMPACT_SEGMENTS if compact_at is None else compact_at
        )
        if self.compact_at < 2:
            raise UniverseError(
                f"checkpoint compaction threshold must be >= 2, got "
                f"{self.compact_at}"
            )
        self.token = compatibility_token(protocol, max_events)
        # Monolithic mode retains the cumulative stream (it rewrites the
        # whole thing per save); segmented mode only buffers the delta.
        self.stream: list = []
        self._pending_records: list = []
        self._segments: list[dict] = []
        self._generation = 0
        self._saved_frontier = 0
        self._saved_edges = 0
        self._saved_count = 1
        self._saved_layers = 0
        self._complete_at_save = True
        self.layers = 0
        self.resumed_from: int | None = None
        self.salvaged = False
        self.saves = 0
        self.save_seconds: list[float] = []
        self.writer_seconds: list[float] = []
        self.background = background
        self._segment_index = 0
        self._writer_thread: threading.Thread | None = None
        self._writer_cv = threading.Condition()
        self._writer_queue: deque = deque()
        self._writer_inflight = 0
        self._writer_error: BaseException | None = None
        self._fileops = fileops if fileops is not None else DEFAULT_FILEOPS
        self.recovery_log = (
            recovery_log if recovery_log is not None else RecoveryLog()
        )
        self._retry = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.degraded = False
        self.degraded_reason: str | None = None
        self._faults: dict[int, list[tuple[str, float]]] = {}
        for action in fault_actions:
            kind, layer = action[0], action[1]
            seconds = action[2] if len(action) > 2 else 0.0
            self._faults.setdefault(layer, []).append((kind, seconds))

    # -- fault hooks ---------------------------------------------------
    def _take_fault_actions(self) -> list[tuple[str, float]]:
        """``(kind, seconds)`` pairs armed for any layer covered by this
        save (each fired at most once)."""
        due = [layer for layer in self._faults if layer < self.layers]
        actions: list[tuple[str, float]] = []
        for layer in sorted(due):
            actions.extend(self._faults.pop(layer))
        return actions

    @staticmethod
    def _hard_exit() -> None:  # pragma: no cover - exercised in chaos runs
        """The ``torn_save`` fault: die the way SIGKILL/OOM would —
        no cleanup, no manifest commit.  Monkeypatchable in-process."""
        os._exit(23)

    # -- storage degradation ladder ------------------------------------
    def _log_retry(self, operation, attempt, error, delay) -> None:
        """The typed-retry logging hook: every absorbed transient
        failure leaves a ``storage_retry`` event."""
        self.recovery_log.record(
            "storage_retry",
            "retry",
            layer=self.layers,
            detail=(
                f"{operation}: {error} (attempt {attempt}, backing off "
                f"{delay:.3f}s)"
            ),
        )

    def _degrade(self, error: BaseException) -> None:
        """Persistent checkpoint-write failure: disable checkpointing
        loudly and let the exploration continue.

        One warning, one ``checkpoint_degraded`` recovery event; every
        later ``save``/``flush`` no-ops.  The last committed manifest is
        untouched (the manifest replace is atomic and a failed segment
        write is never referenced by it), so ``repro checkpoint verify``
        still passes on whatever was durable before the storage went
        hostile."""
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = str(error)
        self.recovery_log.record(
            "checkpoint_degraded",
            "disable-checkpointing",
            layer=self.layers,
            detail=str(error),
        )
        warnings.warn(
            f"checkpointing disabled after a persistent storage failure "
            f"({error}); exploration continues WITHOUT further "
            f"checkpoints — the last committed manifest at {self.path} "
            f"is still valid",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- resume --------------------------------------------------------
    def try_resume(self, universe) -> ResumedExploration | None:
        """Load ``self.path`` if it exists and rebuild ``universe``'s
        stores from it.

        Returns the engine-facing resume state, or ``None`` when there
        is no checkpoint file (a fresh run) or salvage discarded
        everything.  Raises :class:`CheckpointError` on an incompatible
        file always, and on a corrupt one when ``strict`` — resuming
        from the wrong protocol must fail loudly, never mis-merge.
        """
        try:
            raw = retry_io(
                "manifest read",
                lambda: self._fileops.read_bytes(self.path),
                policy=self._retry,
                on_retry=self._log_retry,
            )
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        version = _parse_version(raw)
        if version == 1:
            return self._resume_monolithic(universe, raw)
        if version == CHECKPOINT_VERSION:
            return self._resume_segmented(universe, raw)
        raise CheckpointError(
            f"checkpoint format version {version} is not supported (this "
            f"build reads versions {MIN_READABLE_VERSION}"
            f"..{CHECKPOINT_VERSION})"
        )

    def _check_token(self, theirs: tuple) -> None:
        """Field-by-field compatibility check with actionable messages."""
        ours = self.token
        if theirs[1] != ours[1]:
            raise CheckpointError(
                f"checkpoint {self.path} is incompatible: it records "
                f"protocol {theirs[1]!r}, this exploration runs "
                f"{ours[1]!r} — point --checkpoint at a fresh path or "
                f"rebuild the matching protocol"
            )
        if tuple(theirs[2]) != ours[2]:
            raise CheckpointError(
                f"checkpoint {self.path} is incompatible: it records "
                f"process set {list(theirs[2])}, this exploration has "
                f"{list(ours[2])} — the protocol size/processes differ"
            )
        if theirs[3] != ours[3]:
            raise CheckpointError(
                f"checkpoint {self.path} is incompatible: it records "
                f"max_events={theirs[3]}, this exploration uses "
                f"max_events={ours[3]} — resume with the original bound"
            )

    def _resume_monolithic(self, universe, raw: bytes):
        """Read a version-1 blob; migrate it to the segmented layout
        when this session writes segmented."""
        payload = self._decode_v1(raw)
        self._check_token(payload["token"])
        stream = payload["stream"]
        offsets = array("q")
        offsets.frombytes(payload["succ_offsets"])
        resumed = self._install(
            universe,
            stream,
            payload["succ_ids"],
            offsets,
            payload["count"],
            payload["frontier_start"],
            payload["complete"],
            payload["layers"],
        )
        if self.format == "monolithic":
            self.stream = list(stream)
        else:
            # Migrate in place: one folded segment + manifest covering
            # the restored state, so subsequent saves append deltas.
            # ``_install`` marked everything as already saved; rewind the
            # watermarks so the fold captures the full stream and CSR.
            self._pending_records = list(stream)
            self._saved_frontier = 0
            self._saved_edges = 0
            self._saved_layers = 0
            self._save_segmented(payload["frontier_start"], universe)
            # Migration must be durable before the resumed exploration
            # starts appending deltas on top of it.
            self.flush()
        return resumed

    def _resume_segmented(self, universe, raw: bytes):
        manifest = self._decode_manifest(raw)
        self._check_token(manifest["token"])
        entries = manifest["segments"]
        self._generation = manifest["generation"]
        stream: list = []
        succ_ids = array("q")
        offsets = array("q", (0,))
        kept: list[dict] = []
        damage: tuple[int, str] | None = None
        for index, entry in enumerate(entries):
            try:
                _, decoded = _load_segment(
                    self.path, entry, self._fileops, self._log_retry
                )
            except _SegmentInvalid as error:
                damage = (index, str(error))
                break
            stream.extend(decoded["records"])
            succ_ids.frombytes(decoded["succ_ids"])
            offsets.frombytes(decoded["succ_offsets"])
            kept.append(entry)
        if damage is not None:
            index, reason = damage
            name = entries[index]["name"]
            if self.strict:
                raise CheckpointError(
                    f"checkpoint {self.path} segment {name} is corrupt "
                    f"({reason}); {index} of {len(entries)} segments are "
                    f"intact — resume without --strict to salvage that "
                    f"prefix"
                )
            self.salvaged = True
            self.recovery_log.record(
                "corrupt_segment",
                "salvage-truncate" if kept else "restart",
                layer=entries[index]["layer_from"],
                detail=f"{name}: {reason}",
            )
        self._discard_orphans(
            universe, {entry["name"] for entry in entries}
        )
        self._segments = kept
        self._segment_index = len(kept)
        if not kept:
            # Nothing salvageable: a fresh run (the first save overwrites
            # the damaged segment names and recommits the manifest).
            return None
        last = kept[-1]
        if damage is None and (
            manifest["layers"] != last["layer_to"]
            or manifest["count"] != last["count"]
            or manifest["frontier_start"] != last["frontier_start"]
        ):
            raise CheckpointError(
                f"checkpoint {self.path} manifest totals disagree with "
                f"its own segments — the file is corrupt"
            )
        return self._install(
            universe,
            stream,
            succ_ids.tobytes(),
            offsets,
            last["count"],
            last["frontier_start"],
            last["complete"] if damage is not None else manifest["complete"],
            last["layer_to"],
        )

    def _discard_orphans(self, universe, referenced: set[str]) -> None:
        """Remove (and log) segment files the manifest never committed —
        the torn tail of a crash between segment append and manifest
        replace."""
        pattern = f"{self.path.name}.g*-*.seg"
        for stray in sorted(self.path.parent.glob(pattern)):
            if stray.name in referenced:
                continue
            self.recovery_log.record(
                "torn_save",
                "discard-orphan",
                layer=self.layers,
                detail=stray.name,
            )
            try:
                self._fileops.unlink(stray)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _install(
        self,
        universe,
        stream,
        succ_ids_bytes,
        offsets,
        count,
        frontier_start,
        complete,
        layers,
    ) -> ResumedExploration:
        """Rebuild ``universe``'s stores from a verified stream + CSR.

        Replays the stream through the exact construction path the
        sharded replicas use, so the rebuilt state is bit-identical.
        Under the arena store the replay goes straight into the packed
        columns (:meth:`~repro.universe.arena.ArenaStore.replay`) — the
        hot window advances with the stream, so resume memory stays
        O(two layers) instead of a full object replica.
        """
        if len(offsets) != frontier_start + 1:
            raise CheckpointError(
                f"checkpoint {self.path} CSR desync: {len(offsets)} "
                f"offsets for a frontier at {frontier_start}"
            )
        configurations = universe._configurations
        if isinstance(configurations, ArenaStore):
            ids_by_hash = configurations.replay(stream)
            if len(configurations) != count:
                raise CheckpointError(
                    f"checkpoint {self.path} replay desync: rebuilt "
                    f"{len(configurations)} configurations, file "
                    f"records {count}"
                )
            # The kernel's entry memo recomputes on miss, so an empty
            # memo is correct (the arena evicted the cold histories).
            entry_hash_of: dict[int, int] = {}
        else:
            from repro.universe.sharded import _Replica

            replica = _Replica(self.protocol, self.max_events)
            replica.apply(stream)
            if len(replica.configurations) != count:
                raise CheckpointError(
                    f"checkpoint {self.path} replay desync: rebuilt "
                    f"{len(replica.configurations)} configurations, file "
                    f"records {count}"
                )
            configurations.clear()
            configurations.extend(replica.configurations)
            entry_hash_of = replica.entry_hash_of
            ids_by_hash = replica.ids_by_hash
        universe._ids_by_hash.clear()
        universe._ids_by_hash.update(ids_by_hash)
        del universe._succ_ids[:]
        universe._succ_ids.frombytes(succ_ids_bytes)
        del universe._succ_offsets[:]
        universe._succ_offsets.extend(offsets)
        universe._complete = complete
        self.layers = layers
        self._saved_layers = layers
        self._saved_frontier = frontier_start
        self._saved_edges = len(universe._succ_ids)
        self._saved_count = count
        self._complete_at_save = complete
        self.resumed_from = frontier_start
        return ResumedExploration(frontier_start, stream, entry_hash_of, layers)

    # -- commit --------------------------------------------------------
    def commit_layer(
        self, records, frontier_start, universe, final: bool = False
    ) -> None:
        """Fold one completed layer's discovery records into the pending
        delta and save if the interval (or ``final``) says so.

        A degraded session keeps counting layers (the clock other
        recovery events are stamped with) but buffers nothing — the
        delta could never be written, so holding it would just leak the
        memory the run may already be short on."""
        self.layers += 1
        if self.degraded:
            self._pending_records = []
            return
        if records:
            self._pending_records.extend(records)
        if final or self.layers % self.every == 0:
            self.save(frontier_start, universe, final=final)

    def save(self, frontier_start: int, universe, final: bool = False) -> None:
        """Persist the state up to ``frontier_start`` (format-dispatch).

        Segmented saves hand the delta to the background writer and
        return; the ``final`` save additionally :meth:`flush`\\ es so a
        finished exploration never returns with uncommitted state.

        A degraded session no-ops; a storage-classified failure on the
        synchronous paths degrades the session here (the background
        writer degrades inside its own loop).  Unclassified errors —
        including a sticky writer error — re-raise verbatim.
        """
        if self.degraded:
            return
        start = time.perf_counter()
        try:
            if self.format == "monolithic":
                self._save_monolithic(frontier_start, universe)
            else:
                self._save_segmented(frontier_start, universe)
                if final:
                    self.flush()
        except Exception as error:
            if classify_storage_error(error) is None:
                raise
            self._degrade(error)
            return
        self.saves += 1
        self.save_seconds.append(time.perf_counter() - start)

    # -- segmented writer ----------------------------------------------
    def _segment_name(self, generation: int, index: int) -> str:
        return f"{self.path.name}.g{generation}-{index:06d}.seg"

    def _save_segmented(self, frontier_start: int, universe) -> None:
        """Snapshot this save's delta and hand it to the writer.

        Everything the writer needs is copied (or ownership-transferred)
        here, on the exploration thread: the pending-records list is
        handed off wholesale, the CSR slices are materialised with
        ``tobytes()``, and the header counters are plain values — the
        universe is free to mutate the moment this returns.  Watermarks
        advance immediately so the *next* delta starts where this one
        ended, regardless of when the write lands on disk.
        """
        succ_ids = universe._succ_ids
        offsets = universe._succ_offsets
        records = self._pending_records
        job = {
            "records": records,
            "succ_ids": succ_ids[self._saved_edges :].tobytes(),
            "succ_offsets": offsets[
                self._saved_frontier + 1 : frontier_start + 1
            ].tobytes(),
            "generation": self._generation,
            "index": self._segment_index,
            "layer_from": self._saved_layers,
            "layer_to": self.layers,
            "frontier_start": frontier_start,
            "count": len(universe._configurations),
            "complete": universe._complete,
            "actions": self._take_fault_actions(),
        }
        self._segment_index += 1
        self._saved_frontier = frontier_start
        self._saved_edges = len(succ_ids)
        self._saved_count = job["count"]
        self._saved_layers = self.layers
        self._complete_at_save = job["complete"]
        self._pending_records = []
        if self.background:
            self._enqueue(job)
        else:
            self._write_segment_job(job)
        if self._segment_index > self.compact_at:
            self.flush()
            self._compact(universe)
            self._segment_index = len(self._segments)

    def arm_storage_faults(self, actions) -> bool:
        """Queue write-fault arming *behind* every save already handed
        to the background writer, so an armed fault can only land on
        this layer boundary's own (or a later) filesystem operation —
        never retroactively on a still-queued earlier save, whose
        manifest must stay committable.  Returns ``False`` when the
        session cannot order the arming (foreground writes, monolithic
        format, degraded, or an idle drained writer — all of which make
        the caller's direct arming already ordered)."""
        if self.degraded or self.format != "segmented" or not self.background:
            return False
        with self._writer_cv:
            if self._writer_thread is None and not self._writer_queue:
                return False
            self._writer_queue.append({"arm": list(actions)})
            self._writer_inflight += 1
            self._writer_cv.notify_all()
        return True

    def _enqueue(self, job: dict) -> None:
        self._raise_writer_error()
        with self._writer_cv:
            self._writer_queue.append(job)
            self._writer_inflight += 1
            if self._writer_thread is None:
                # Daemonic on purpose: an exploration that dies mid-queue
                # behaves like any other crash — orphan segments, previous
                # manifest — which resume already heals.  Graceful runs
                # always end in a flushing final save.
                self._writer_thread = threading.Thread(
                    target=self._writer_loop,
                    name="repro-checkpoint-writer",
                    daemon=True,
                )
                self._writer_thread.start()
            self._writer_cv.notify_all()

    def _writer_loop(self) -> None:
        while True:
            with self._writer_cv:
                if not self._writer_queue:
                    # Idle: retire rather than park — _enqueue respawns
                    # under this same lock, so no job can slip between
                    # this check and the thread's exit.
                    self._writer_thread = None
                    return
                job = self._writer_queue.popleft()
            try:
                self._write_segment_job(job)
            except BaseException as error:  # noqa: BLE001 - re-raised later
                storage = classify_storage_error(error) is not None
                if storage:
                    # Hostile storage, not a bug: take the degradation
                    # ladder (checkpointing off, exploration continues)
                    # instead of poisoning the session with a sticky
                    # error the exploration thread would die on.
                    self._degrade(error)
                with self._writer_cv:
                    if not storage:
                        self._writer_error = error
                    self._writer_queue.clear()
                    self._writer_inflight = 0
                    self._writer_thread = None
                    self._writer_cv.notify_all()
                return
            with self._writer_cv:
                self._writer_inflight -= 1
                self._writer_cv.notify_all()

    def flush(self) -> None:
        """Block until every queued segment write has committed (or
        re-raise the writer's stored failure).

        Never deadlocks after a failure: a degrading or sticky writer
        zeroes the in-flight count and notifies before retiring, and a
        degraded session returns immediately."""
        with self._writer_cv:
            while (
                self._writer_inflight
                and self._writer_error is None
                and not self.degraded
            ):
                self._writer_cv.wait()
        self._raise_writer_error()

    def _raise_writer_error(self) -> None:
        error = self._writer_error
        if error is not None:
            # Sticky: the session is dead once its writer failed — every
            # later save/flush re-raises rather than committing a
            # manifest past a hole in the segment sequence.
            raise error

    def _write_segment_job(self, job: dict) -> None:
        """Compress, append, and commit one segment (writer thread, or
        the calling thread when ``background=False``)."""
        arm = job.get("arm")
        if arm is not None:
            # Queue-ordered fault arming marker, not a segment: every
            # save enqueued before it has committed by now.
            for kind, seconds in arm:
                self._fileops.arm(kind, seconds)
            return
        start = time.perf_counter()
        actions = job["actions"]
        payload = compress_batch(
            {
                "records": job["records"],
                "succ_ids": job["succ_ids"],
                "succ_offsets": job["succ_offsets"],
            }
        )
        header = {
            "version": CHECKPOINT_VERSION,
            "generation": job["generation"],
            "index": job["index"],
            "layer_from": job["layer_from"],
            "layer_to": job["layer_to"],
            "frontier_start": job["frontier_start"],
            "count": job["count"],
            "complete": job["complete"],
            "records": len(job["records"]),
            "payload_len": len(payload),
            "payload_crc": zlib.crc32(payload),
        }
        blob = _encode_segment(header, payload)
        name = self._segment_name(job["generation"], job["index"])
        seg_path = self.path.with_name(name)
        retry_io(
            "segment append",
            lambda: self._fileops.write_durable(seg_path, blob),
            policy=self._retry,
            on_retry=self._log_retry,
        )
        for kind, seconds in actions:
            if kind == "stall_write":
                # Chaos hook: hold the append→commit window open so an
                # external SIGKILL lands mid-background-write.
                time.sleep(seconds)
        if any(kind == "torn_save" for kind, _ in actions):
            # Chaos hook: die between segment append and manifest commit
            # — the archetypal torn save the orphan-discard path heals.
            self._hard_exit()
        entry = {
            "name": name,
            "size": len(blob),
            "payload_crc": header["payload_crc"],
            "layer_from": header["layer_from"],
            "layer_to": header["layer_to"],
            "frontier_start": header["frontier_start"],
            "count": header["count"],
            "complete": header["complete"],
            "records": header["records"],
        }
        self._segments.append(entry)
        self._write_manifest()
        if any(kind == "corrupt_segment" for kind, _ in actions):
            # Chaos hook: flip one committed payload byte *after* the
            # CRC was recorded — the next resume must detect + salvage.
            damaged = bytearray(seg_path.read_bytes())
            damaged[-1] ^= 0xFF
            seg_path.write_bytes(bytes(damaged))
        self.writer_seconds.append(time.perf_counter() - start)

    def _write_manifest(self) -> None:
        # Totals come from the last *committed* segment, not the live
        # watermarks: with queued background saves the watermarks run
        # ahead of the disk state, and the manifest must describe
        # exactly what its segment list can rebuild.
        last = self._segments[-1] if self._segments else None
        _commit_manifest(
            self.path,
            {
                "token": self.token,
                "layers": last["layer_to"] if last else self._saved_layers,
                "frontier_start": (
                    last["frontier_start"] if last else self._saved_frontier
                ),
                "count": last["count"] if last else self._saved_count,
                "complete": (
                    last["complete"] if last else self._complete_at_save
                ),
                "generation": self._generation,
                "segments": self._segments,
                "recovery": [
                    event.as_dict() for event in self.recovery_log
                ],
            },
            fileops=self._fileops,
            policy=self._retry,
            on_retry=self._log_retry,
        )

    def _compact(self, universe) -> None:
        """Fold every committed segment into one under a new generation.

        Crash-safe by construction: the fold is written under names the
        current manifest does not reference, the manifest replace is the
        commit point, and only then are the old generation's files
        removed (a crash in between leaves orphans, discarded on the
        next resume).
        """
        records: list = []
        succ_ids_parts: list[bytes] = []
        offsets_parts: list[bytes] = []
        for entry in self._segments:
            try:
                _, decoded = _load_segment(
                    self.path, entry, self._fileops, self._log_retry
                )
            except _SegmentInvalid as error:  # pragma: no cover - defensive
                # A just-committed segment went bad under us: skip the
                # fold, keep the (still consistent) multi-segment layout.
                warnings.warn(
                    f"checkpoint compaction skipped: {entry['name']} "
                    f"failed verification ({error})",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return
            records.extend(decoded["records"])
            succ_ids_parts.append(decoded["succ_ids"])
            offsets_parts.append(decoded["succ_offsets"])
        last = self._segments[-1]
        payload = compress_batch(
            {
                "records": records,
                "succ_ids": b"".join(succ_ids_parts),
                "succ_offsets": b"".join(offsets_parts),
            }
        )
        generation = self._generation + 1
        header = {
            "version": CHECKPOINT_VERSION,
            "generation": generation,
            "index": 0,
            "layer_from": 0,
            "layer_to": last["layer_to"],
            "frontier_start": last["frontier_start"],
            "count": last["count"],
            "complete": last["complete"],
            "records": len(records),
            "payload_len": len(payload),
            "payload_crc": zlib.crc32(payload),
        }
        blob = _encode_segment(header, payload)
        name = self._segment_name(generation, 0)
        retry_io(
            "compaction fold write",
            lambda: self._fileops.write_durable(self.path.with_name(name), blob),
            policy=self._retry,
            on_retry=self._log_retry,
        )
        stale = [entry["name"] for entry in self._segments]
        self._segments = [
            {
                "name": name,
                "size": len(blob),
                "payload_crc": header["payload_crc"],
                "layer_from": 0,
                "layer_to": last["layer_to"],
                "frontier_start": last["frontier_start"],
                "count": last["count"],
                "complete": last["complete"],
                "records": len(records),
            }
        ]
        self._generation = generation
        self._write_manifest()
        for old in stale:
            try:
                self._fileops.unlink(self.path.with_name(old))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- monolithic (v1) writer ----------------------------------------
    def _save_monolithic(self, frontier_start: int, universe) -> None:
        """The retained PR 6 full-rewrite save: one blob, O(stream)."""
        self.stream.extend(self._pending_records)
        self._pending_records = []
        payload = {
            "token": (1,) + self.token[1:],
            "stream": self.stream,
            "count": len(universe._configurations),
            "frontier_start": frontier_start,
            "succ_ids": universe._succ_ids.tobytes(),
            "succ_offsets": universe._succ_offsets.tobytes(),
            "complete": universe._complete,
            "layers": self.layers,
        }
        blob = CHECKPOINT_MAGIC + compress_batch(payload)
        temp = self.path.with_name(self.path.name + ".tmp")

        def commit() -> None:
            self._fileops.write_durable(temp, blob)
            self._fileops.replace(temp, self.path)

        retry_io(
            "monolithic save",
            commit,
            policy=self._retry,
            on_retry=self._log_retry,
        )

    # -- decoding ------------------------------------------------------
    @staticmethod
    def _decode_v1(raw: bytes) -> dict:
        try:
            payload = decompress_batch(raw[len(CHECKPOINT_MAGIC):])
        except Exception as error:
            raise CheckpointError(
                f"checkpoint is corrupt or truncated: {error}"
            ) from error
        if not isinstance(payload, dict) or "token" not in payload:
            raise CheckpointError("checkpoint payload is malformed")
        return payload

    def _decode_manifest(self, raw: bytes) -> dict:
        return decode_manifest(raw)


def decode_manifest(raw: bytes) -> dict:
    """Decode + CRC-verify a version-2 manifest blob, or raise
    :class:`CheckpointError`."""
    base = len(MANIFEST_MAGIC)
    if len(raw) < base + 4:
        raise CheckpointError("checkpoint manifest is corrupt or truncated")
    crc = int.from_bytes(raw[base : base + 4], "little")
    blob = raw[base + 4 :]
    if zlib.crc32(blob) != crc:
        raise CheckpointError(
            "checkpoint manifest is corrupt or truncated (CRC mismatch)"
        )
    try:
        manifest = pickle.loads(zlib.decompress(blob))
    except Exception as error:
        raise CheckpointError(
            f"checkpoint manifest is corrupt or truncated: {error}"
        ) from error
    if not isinstance(manifest, dict) or "token" not in manifest:
        raise CheckpointError("checkpoint payload is malformed")
    return manifest


def _commit_manifest(
    path: Path,
    manifest: dict,
    fileops=DEFAULT_FILEOPS,
    policy=DEFAULT_RETRY_POLICY,
    on_retry=None,
) -> None:
    """Atomically write a version-2 manifest (tmp + fsync + replace).

    The whole tmp-write-replace sequence is one retry unit: it restarts
    from the in-memory blob, and ``os.replace`` stays the sole commit
    point, so a transient failure anywhere re-runs cleanly and a
    permanent one leaves the previous manifest untouched."""
    blob = compress_batch(manifest)
    raw = MANIFEST_MAGIC + zlib.crc32(blob).to_bytes(4, "little") + blob
    temp = path.with_name(path.name + ".tmp")

    def commit() -> None:
        fileops.write_durable(temp, raw)
        fileops.replace(temp, path)

    retry_io("manifest commit", commit, policy=policy, on_retry=on_retry)


def compact_checkpoint(path) -> dict:
    """Fold every committed segment of a checkpoint into one — the
    ``repro checkpoint compact PATH`` operator verb.

    Works offline on the files alone (no protocol object needed): every
    segment is read and fully CRC-verified, their deltas are
    concatenated into a single folded segment written under a **bumped
    generation**, the manifest replace is the commit point, and only
    then are the old generation's files unlinked — the same crash-safe
    dance the in-session auto-compaction performs, so a kill at any
    point leaves either the old layout or the new one plus discardable
    orphans.  A damaged segment aborts with :class:`CheckpointError`
    (run ``repro checkpoint verify`` / a non-strict resume to salvage
    first).  Returns a report dict (segment and byte counts before and
    after, the new generation).
    """
    path = Path(path)
    fileops = DEFAULT_FILEOPS
    try:
        raw = retry_io("manifest read", lambda: fileops.read_bytes(path))
    except FileNotFoundError:
        raise CheckpointError(f"no such checkpoint: {path}") from None
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    version = _parse_version(raw)
    if version == 1:
        return {
            "path": str(path),
            "compacted": False,
            "reason": "version-1 checkpoints are a single blob already",
            "segments_before": 1,
            "segments_after": 1,
        }
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {version} is not supported (this "
            f"build reads versions {MIN_READABLE_VERSION}"
            f"..{CHECKPOINT_VERSION})"
        )
    manifest = decode_manifest(raw)
    entries = manifest["segments"]
    bytes_before = sum(entry["size"] for entry in entries)
    if len(entries) <= 1:
        return {
            "path": str(path),
            "compacted": False,
            "reason": "already a single segment",
            "segments_before": len(entries),
            "segments_after": len(entries),
            "bytes_before": bytes_before,
            "bytes_after": bytes_before,
            "generation": manifest["generation"],
        }
    records: list = []
    succ_ids_parts: list[bytes] = []
    offsets_parts: list[bytes] = []
    for entry in entries:
        try:
            _, decoded = _load_segment(path, entry)
        except _SegmentInvalid as error:
            raise CheckpointError(
                f"cannot compact {path}: segment {entry['name']} is "
                f"damaged ({error}) — verify/salvage before compacting"
            ) from error
        records.extend(decoded["records"])
        succ_ids_parts.append(decoded["succ_ids"])
        offsets_parts.append(decoded["succ_offsets"])
    last = entries[-1]
    payload = compress_batch(
        {
            "records": records,
            "succ_ids": b"".join(succ_ids_parts),
            "succ_offsets": b"".join(offsets_parts),
        }
    )
    generation = manifest["generation"] + 1
    header = {
        "version": CHECKPOINT_VERSION,
        "generation": generation,
        "index": 0,
        "layer_from": 0,
        "layer_to": last["layer_to"],
        "frontier_start": last["frontier_start"],
        "count": last["count"],
        "complete": last["complete"],
        "records": len(records),
        "payload_len": len(payload),
        "payload_crc": zlib.crc32(payload),
    }
    blob = _encode_segment(header, payload)
    name = f"{path.name}.g{generation}-{0:06d}.seg"
    retry_io(
        "compaction fold write",
        lambda: fileops.write_durable(path.with_name(name), blob),
    )
    folded = {
        "name": name,
        "size": len(blob),
        "payload_crc": header["payload_crc"],
        "layer_from": 0,
        "layer_to": last["layer_to"],
        "frontier_start": last["frontier_start"],
        "count": last["count"],
        "complete": last["complete"],
        "records": len(records),
    }
    _commit_manifest(
        path,
        {
            "token": manifest["token"],
            "layers": manifest["layers"],
            "frontier_start": manifest["frontier_start"],
            "count": manifest["count"],
            "complete": manifest["complete"],
            "generation": generation,
            "segments": [folded],
            "recovery": manifest.get("recovery", []),
        },
        fileops=fileops,
    )
    for entry in entries:
        try:
            fileops.unlink(path.with_name(entry["name"]))
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return {
        "path": str(path),
        "compacted": True,
        "segments_before": len(entries),
        "segments_after": 1,
        "bytes_before": bytes_before,
        "bytes_after": len(blob),
        "generation": generation,
        "layers": manifest["layers"],
        "count": manifest["count"],
    }


# ---------------------------------------------------------------------
# Inspection (``repro checkpoint verify|inspect``)
# ---------------------------------------------------------------------
def inspect_checkpoint(path, verify_segments: bool = True) -> dict:
    """Integrity/metadata report of a checkpoint — never raises.

    Returns a dict with ``exists``, ``format_version``, the decoded
    compatibility ``token`` (as a readable mapping), ``layers``/
    ``count``/``complete``/``frontier_start``, a per-segment status list
    (``ok`` / ``missing`` / ``corrupt: <reason>`` / ``unverified``),
    the unreferenced ``orphans``, ``salvageable_layers`` (the valid
    prefix), and ``valid`` — True iff every byte needed for a full
    resume checks out.  ``verify_segments=False`` skips reading segment
    payloads (a cheap progress probe).
    """
    path = Path(path)
    report: dict = {
        "path": str(path),
        "exists": True,
        "format_version": None,
        "error": None,
        "token": None,
        "layers": None,
        "count": None,
        "complete": None,
        "frontier_start": None,
        "generation": None,
        "segments": [],
        "orphans": [],
        "recovery": [],
        "salvageable_layers": 0,
        "valid": False,
    }
    try:
        raw = retry_io(
            "manifest read", lambda: DEFAULT_FILEOPS.read_bytes(path)
        )
    except FileNotFoundError:
        report["exists"] = False
        report["error"] = "no such file"
        return report
    except OSError as error:
        report["exists"] = False
        report["error"] = str(error)
        return report
    try:
        version = _parse_version(raw)
    except CheckpointError as error:
        report["error"] = str(error)
        return report
    report["format_version"] = version

    def token_view(token) -> dict:
        return {
            "format_version": token[0],
            "protocol": token[1],
            "processes": list(token[2]),
            "max_events": token[3],
        }

    if version == 1:
        try:
            payload = CheckpointSession._decode_v1(raw)
        except CheckpointError as error:
            report["error"] = str(error)
            return report
        report["token"] = token_view(payload["token"])
        report["layers"] = payload["layers"]
        report["count"] = payload["count"]
        report["complete"] = payload["complete"]
        report["frontier_start"] = payload["frontier_start"]
        report["salvageable_layers"] = payload["layers"]
        report["valid"] = True
        return report
    if version != CHECKPOINT_VERSION:
        report["error"] = (
            f"format version {version} is not supported (this build reads "
            f"versions {MIN_READABLE_VERSION}..{CHECKPOINT_VERSION})"
        )
        return report
    try:
        manifest = decode_manifest(raw)
    except CheckpointError as error:
        report["error"] = str(error)
        return report
    report["token"] = token_view(manifest["token"])
    report["layers"] = manifest["layers"]
    report["count"] = manifest["count"]
    report["complete"] = manifest["complete"]
    report["frontier_start"] = manifest["frontier_start"]
    report["generation"] = manifest["generation"]
    # Recovery/degradation events recorded up to the committing save
    # (structured RecoveryEvent dicts persisted with the manifest).
    report["recovery"] = list(manifest.get("recovery", []))
    prefix_intact = True
    for entry in manifest["segments"]:
        row = {
            "name": entry["name"],
            "layer_from": entry["layer_from"],
            "layer_to": entry["layer_to"],
            "records": entry["records"],
            "size": entry["size"],
            "status": "unverified",
        }
        if verify_segments:
            try:
                _load_segment(path, entry)
            except _SegmentInvalid as error:
                row["status"] = (
                    "missing"
                    if str(error) == "segment file missing"
                    else f"corrupt: {error}"
                )
                prefix_intact = False
            else:
                row["status"] = "ok"
                if prefix_intact:
                    report["salvageable_layers"] = entry["layer_to"]
        report["segments"].append(row)
    referenced = {entry["name"] for entry in manifest["segments"]}
    report["orphans"] = sorted(
        stray.name
        for stray in path.parent.glob(f"{path.name}.g*-*.seg")
        if stray.name not in referenced
    )
    if verify_segments:
        report["valid"] = prefix_intact and all(
            row["status"] == "ok" for row in report["segments"]
        )
    else:
        report["salvageable_layers"] = manifest["layers"]
        report["valid"] = True  # manifest-level only
    return report


# ---------------------------------------------------------------------
# RSS watchdog (``--rss-budget``)
# ---------------------------------------------------------------------
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss_mb(pid: int | None = None) -> float | None:
    """Resident set size of one process in MiB, or ``None`` if unknown.

    Reads ``/proc/<pid>/statm`` (Linux); falls back to ``ru_maxrss``
    (peak, self only) elsewhere.  The watchdog only ever compares
    against a budget, so peak-vs-current imprecision errs on the safe
    (earlier-truncation) side.
    """
    try:
        with open(f"/proc/{pid or 'self'}/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * _PAGE_SIZE / (1 << 20)
    except (OSError, ValueError, IndexError):
        pass
    if pid is not None:
        return None
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return peak / (1 << 10) if peak < (1 << 40) else peak / (1 << 20)
    except Exception:  # pragma: no cover - exotic platforms only
        return None


class RssWatchdog:
    """Checks total exploration RSS against a budget at layer boundaries.

    ``worker_pids`` (a zero-argument callable) lets the sharded engine
    include its live workers — each holds a full replica, so coordinator
    RSS alone understates the footprint (K+1)×.

    On hosts where RSS cannot be measured at all (no readable ``/proc``
    and no ``resource`` fallback) the watchdog *deactivates* with a
    one-time :class:`RuntimeWarning` instead of silently never firing;
    callers can observe the degradation via :attr:`active`.
    """

    def __init__(self, budget_mb: float, worker_pids=None) -> None:
        if budget_mb <= 0:
            raise UniverseError(
                f"rss budget must be positive, got {budget_mb}"
            )
        self.budget_mb = float(budget_mb)
        self.worker_pids = worker_pids
        self.last_mb: float | None = None
        self.active = True

    def exceeded(self) -> bool:
        total = process_rss_mb()
        if total is None:
            if self.active:
                self.active = False
                warnings.warn(
                    "RSS watchdog disabled: this host exposes no way to "
                    "measure resident memory (no readable /proc, no "
                    "resource.getrusage) — --rss-budget will not truncate",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        if self.worker_pids is not None:
            for pid in self.worker_pids():
                worker = process_rss_mb(pid)
                if worker is not None:
                    total += worker
        self.last_mb = total
        return total > self.budget_mb


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "DEFAULT_COMPACT_SEGMENTS",
    "MANIFEST_MAGIC",
    "SEGMENT_MAGIC",
    "CheckpointError",
    "CheckpointSession",
    "ResumedExploration",
    "RssWatchdog",
    "compact_checkpoint",
    "compatibility_token",
    "decode_manifest",
    "inspect_checkpoint",
    "process_rss_mb",
]
