"""Computation universes: protocols and exhaustive exploration."""

from repro.universe.builder import (
    configuration_from_events,
    figure_3_1_computations,
    figure_3_1_universe,
)
from repro.universe.checkpoint import (
    CheckpointError,
    CheckpointSession,
    RssWatchdog,
    compatibility_token,
)
from repro.universe.explorer import (
    EnumeratedUniverse,
    PartitionTable,
    Universe,
    iter_bit_ids,
)
from repro.universe.faults import Fault, FaultPlan
from repro.universe.protocol import History, Protocol
from repro.universe.sharded import (
    ShardedExplorer,
    SupervisionPolicy,
    WorkerError,
    discovery_stream,
)

__all__ = [
    "CheckpointError",
    "CheckpointSession",
    "EnumeratedUniverse",
    "Fault",
    "FaultPlan",
    "History",
    "PartitionTable",
    "Protocol",
    "RssWatchdog",
    "ShardedExplorer",
    "SupervisionPolicy",
    "Universe",
    "WorkerError",
    "compatibility_token",
    "discovery_stream",
    "iter_bit_ids",
    "configuration_from_events",
    "figure_3_1_computations",
    "figure_3_1_universe",
]
