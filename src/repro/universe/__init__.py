"""Computation universes: protocols and exhaustive exploration."""

from repro.universe.builder import (
    configuration_from_events,
    figure_3_1_computations,
    figure_3_1_universe,
)
from repro.universe.explorer import EnumeratedUniverse, Universe
from repro.universe.protocol import History, Protocol

__all__ = [
    "EnumeratedUniverse",
    "History",
    "Protocol",
    "Universe",
    "configuration_from_events",
    "figure_3_1_computations",
    "figure_3_1_universe",
]
