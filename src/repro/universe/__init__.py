"""Computation universes: protocols and exhaustive exploration."""

from repro.universe.builder import (
    configuration_from_events,
    figure_3_1_computations,
    figure_3_1_universe,
)
from repro.universe.explorer import (
    EnumeratedUniverse,
    PartitionTable,
    Universe,
    iter_bit_ids,
)
from repro.universe.protocol import History, Protocol
from repro.universe.sharded import ShardedExplorer

__all__ = [
    "EnumeratedUniverse",
    "History",
    "PartitionTable",
    "Protocol",
    "ShardedExplorer",
    "Universe",
    "iter_bit_ids",
    "configuration_from_events",
    "figure_3_1_computations",
    "figure_3_1_universe",
]
