"""Compact arena configuration store: packed histories, lazy objects.

The exploration kernel discovers every configuration as *one parent plus
one event*.  The arena persists exactly that — three packed
struct-of-arrays columns (parent dense id, interned event index, rolling
content hash; 20 bytes per configuration) — and materialises
:class:`~repro.core.configuration.Configuration` objects lazily, behind
the same sequence interface the object store exposed:

* a **hot window** keeps the current BFS frontier and the layer under
  construction as real objects (the only ids the kernel dereferences,
  thanks to the layer-uniform event count of BFS layers);
* everything colder is reached by a **chain walk** up the parent column
  to the nearest materialised ancestor, rebuilding descendants through a
  bounded LRU — property sweeps and spot lookups never pay for objects
  they don't touch;
* sealed **cold chunks** (whole column slices below the hot window)
  compress with zlib at batch level and, when a ``spill_dir`` is given,
  stream to an mmap-backed on-disk arena so resident memory stays
  O(frontier), not O(universe).

:func:`compress_batch`/:func:`decompress_batch` are the batch codec the
cold tier shares with the sharded engine's per-layer successor exchange
and the checkpoint segment payloads (identical bytes to the historical
``zlib(pickle(...))`` segment idiom, so on-disk checkpoints are
unaffected).
"""

from __future__ import annotations

import os
import pickle
import warnings
import zlib
from array import array
from collections import OrderedDict
from collections.abc import Iterator

from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.universe.fileops import DEFAULT_FILEOPS
from repro.universe.retry import classify_storage_error, retry_io


def compress_batch(payload: object) -> bytes:
    """Pickle + zlib(level 1) a batch payload.

    One codec for every bulk transfer in the system: checkpoint segment
    payloads, the sharded engine's layer exchange and full-stream respawn
    blobs, and the arena's spilled metadata.  Level 1 because every call
    site is latency-sensitive and the pickled streams are highly
    repetitive (ratios of 3-6x at negligible CPU).
    """
    return zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 1)


def decompress_batch(blob: bytes) -> object:
    """Inverse of :func:`compress_batch`."""
    return pickle.loads(zlib.decompress(blob))


_CHUNK_BITS = 16
_CHUNK_SIZE = 1 << _CHUNK_BITS
_CHUNK_MASK = _CHUNK_SIZE - 1
_PARENT_BYTES = 8 * _CHUNK_SIZE
_EVENT_BYTES = 4 * _CHUNK_SIZE
_RAW_CHUNK_BYTES = _PARENT_BYTES + _EVENT_BYTES + 8 * _CHUNK_SIZE


def _materialise_child(
    parent: Configuration, event: Event, content_hash: int
) -> Configuration:
    """Rebuild the child ``parent + event`` with its recorded hash.

    Mirrors the kernel's first-discovery construction exactly (same
    sorted-insert items layout, same trusted constructor, same cache
    propagation), so a lazily rematerialised configuration is
    structurally identical to the object the kernel once held.
    """
    process = event.process
    parent_histories = parent._histories
    old_history = parent_histories.get(process)
    if old_history is not None:
        items = dict(parent_histories)
        items[process] = old_history + (event,)
    else:
        items = {}
        placed = False
        for existing_process, history in parent_histories.items():
            if not placed and process < existing_process:
                items[process] = (event,)
                placed = True
            items[existing_process] = history
        if not placed:
            items[process] = (event,)
    child = Configuration._from_trusted(items, content_hash, None)
    if parent._length is not None:
        child._length = parent._length + 1
    parent._propagate_caches(child, event)
    return child


class _Chunk:
    """One sealed column slice of ``_CHUNK_SIZE`` configurations."""

    __slots__ = ("state", "blob", "offset", "length")

    def __init__(self, blob: bytes) -> None:
        self.state = "zlib"  # "zlib" (blob in RAM) | "spilled" (on disk)
        self.blob: bytes | None = blob
        self.offset = 0
        self.length = len(blob)


def _rebuild_pinned(configurations: list[Configuration]) -> "ArenaStore":
    store = ArenaStore()
    for configuration in configurations:
        store.append(configuration)
    return store


class ArenaStore:
    """Packed ``(parent_id, event, hash)`` store behind a sequence API.

    Drop-in for the explorer's ``_configurations`` list: supports
    ``len``, indexing (lazy materialisation), iteration (streaming, two
    layers of transient objects), equality against any configuration
    sequence, and ``append``/``clear``/``extend`` for the seeding and
    checkpoint-install paths.
    """

    def __init__(
        self,
        spill_dir: str | os.PathLike | None = None,
        lru_size: int = 4096,
        chunk_cache_size: int = 8,
        fileops=None,
        recovery_log=None,
    ) -> None:
        self._spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._lru_size = lru_size
        self._chunk_cache_size = chunk_cache_size
        self._fileops = fileops if fileops is not None else DEFAULT_FILEOPS
        self._recovery_log = recovery_log
        self._spill_disabled = False
        self._count = 0
        # Interned event vocabulary: protocols have a small finite event
        # set, so the 4-byte column index replaces a per-history pointer.
        self._events: list[Event] = []
        self._event_index: dict[Event, int] = {}
        # Sealed cold chunks + the growing uncompressed tail columns.
        self._chunks: list[_Chunk] = []
        self._tail_parent = array("q")
        self._tail_event = array("i")
        self._tail_hash = array("q")
        # Hot window: materialised objects for the ids the kernel still
        # dereferences (current frontier + layer under construction).
        self._window: dict[int, Configuration] = {}
        self._window_floor = 0
        # Roots appended directly (no parent) stay pinned forever.
        self._pinned: dict[int, Configuration] = {}
        self._lru: OrderedDict[int, Configuration] = OrderedDict()
        self._chunk_cache: OrderedDict[int, tuple[array, array, array]] = (
            OrderedDict()
        )
        self._spill_file = None
        self._spill_path: str | None = None
        self._spill_mmap = None
        self._spill_offset = 0
        # Telemetry for bench/PERFORMANCE.md.
        self.raw_bytes = 0
        self.compressed_bytes = 0
        self.spilled_bytes = 0
        self.materialisations = 0
        self.chain_walks = 0

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def _chunk_arrays(self, chunk_index: int) -> tuple[array, array, array]:
        cache = self._chunk_cache
        cached = cache.get(chunk_index)
        if cached is not None:
            cache.move_to_end(chunk_index)
            return cached
        chunk = self._chunks[chunk_index]
        if chunk.state == "zlib":
            raw = zlib.decompress(chunk.blob)
        else:
            raw = zlib.decompress(
                self._read_spill(chunk.offset, chunk.length)
            )
        parents = array("q")
        parents.frombytes(raw[:_PARENT_BYTES])
        events = array("i")
        events.frombytes(raw[_PARENT_BYTES : _PARENT_BYTES + _EVENT_BYTES])
        hashes = array("q")
        hashes.frombytes(raw[_PARENT_BYTES + _EVENT_BYTES :])
        columns = (parents, events, hashes)
        cache[chunk_index] = columns
        while len(cache) > self._chunk_cache_size:
            cache.popitem(last=False)
        return columns

    def _entry(self, index: int) -> tuple[int, int, int]:
        """``(parent_id, event_index, content_hash)`` of one id."""
        chunk_index = index >> _CHUNK_BITS
        if chunk_index < len(self._chunks):
            parents, events, hashes = self._chunk_arrays(chunk_index)
            offset = index & _CHUNK_MASK
            return parents[offset], events[offset], hashes[offset]
        offset = index - (len(self._chunks) << _CHUNK_BITS)
        return (
            self._tail_parent[offset],
            self._tail_event[offset],
            self._tail_hash[offset],
        )

    def parent_id(self, index: int) -> int:
        """Parent dense id of ``index`` (-1 for roots)."""
        return self._entry(index)[0]

    def content_hash(self, index: int) -> int:
        """Stored rolling content hash of ``index``."""
        return self._entry(index)[2]

    def records(self, start: int, end: int) -> list[tuple[int, Event]]:
        """Discovery records ``(parent_id, event)`` for ids in [start, end).

        Read straight off the columns — the arena *is* the discovery
        stream, so worker respawn and checkpointing never reconstruct it
        from CSR walks or object identity.
        """
        events = self._events
        out: list[tuple[int, Event]] = []
        for index in range(start, end):
            parent, event_index, _ = self._entry(index)
            if parent < 0:
                continue
            out.append((parent, events[event_index]))
        return out

    # ------------------------------------------------------------------
    # Growth (exploration hot path)
    # ------------------------------------------------------------------
    def append(self, configuration: Configuration) -> int:
        """Append a root configuration (no parent); pinned permanently."""
        index = self._count
        self._tail_parent.append(-1)
        self._tail_event.append(-1)
        self._tail_hash.append(hash(configuration))
        self._count += 1
        self._pinned[index] = configuration
        return index

    def append_child(
        self,
        parent_id: int,
        event: Event,
        content_hash: int,
        child: Configuration | None,
    ) -> int:
        """Record a first discovery: pack the columns, keep the object hot.

        ``child`` may be ``None``: the packed exploration kernel tracks
        its own window of history rows and never builds child objects,
        so only the columns are written and any later read materialises
        through the cold tiers.
        """
        event_index = self._event_index.get(event)
        if event_index is None:
            event_index = len(self._events)
            self._event_index[event] = event_index
            self._events.append(event)
        index = self._count
        self._tail_parent.append(parent_id)
        self._tail_event.append(event_index)
        self._tail_hash.append(content_hash)
        self._count += 1
        if child is not None:
            self._window[index] = child
        return index

    def extend(self, configurations) -> None:
        """Append arbitrary configurations as pinned roots.

        Compatibility fallback (generic install paths); the kernel and
        checkpoint replay use :meth:`append_child`/:meth:`replay`, which
        keep the store packed.
        """
        for configuration in configurations:
            self.append(configuration)

    def retire(self, new_floor: int) -> None:
        """Evict the consumed layer(s) below ``new_floor`` and seal cold
        chunks.  Called at BFS layer boundaries with the id where the
        next frontier starts."""
        window = self._window
        stop = min(new_floor, self._count)
        for index in range(self._window_floor, stop):
            window.pop(index, None)
        if new_floor > self._window_floor:
            self._window_floor = new_floor
        self._seal_cold()

    def _seal_cold(self) -> None:
        while True:
            base = len(self._chunks) << _CHUNK_BITS
            if base + _CHUNK_SIZE > self._window_floor:
                break
            if base + _CHUNK_SIZE > self._count:
                break
            raw = (
                self._tail_parent[:_CHUNK_SIZE].tobytes()
                + self._tail_event[:_CHUNK_SIZE].tobytes()
                + self._tail_hash[:_CHUNK_SIZE].tobytes()
            )
            del self._tail_parent[:_CHUNK_SIZE]
            del self._tail_event[:_CHUNK_SIZE]
            del self._tail_hash[:_CHUNK_SIZE]
            chunk = _Chunk(zlib.compress(raw, 1))
            self.raw_bytes += len(raw)
            self.compressed_bytes += chunk.length
            if self._spill_dir is not None and not self._spill_disabled:
                self._spill_chunk(chunk)
            self._chunks.append(chunk)

    # ------------------------------------------------------------------
    # Spill tier
    # ------------------------------------------------------------------
    @property
    def spill_disabled(self) -> bool:
        """True once a persistent storage failure sealed the cold tier
        in RAM (the ``spill_degraded`` rung); chunks stay compressed
        in-memory from then on and the RSS watchdog's only remaining
        rung is truncation."""
        return self._spill_disabled

    def _log_retry(self, operation, attempt, error, delay) -> None:
        if self._recovery_log is not None:
            self._recovery_log.record(
                "storage_retry",
                "retry",
                detail=(
                    f"{operation}: {error} (attempt {attempt}, "
                    f"backing off {delay:.3f}s)"
                ),
            )

    def _disable_spill(self, error: BaseException) -> None:
        """Sealed-in-RAM rung of the degradation ladder: the spill tier
        is gone (disk full, I/O errors beyond the retry budget) but the
        cold chunks are still intact as in-RAM zlib blobs, so
        exploration continues; if memory pressure persists, the RSS
        watchdog's graceful truncate is the next (and last) rung."""
        if self._spill_disabled:
            return
        self._spill_disabled = True
        if self._recovery_log is not None:
            self._recovery_log.record(
                "spill_degraded", "sealed-in-ram", detail=str(error)
            )
        warnings.warn(
            f"arena spill disabled after a persistent storage failure "
            f"({error}); cold chunks stay sealed in RAM — if the RSS "
            f"budget is exceeded the exploration will truncate instead "
            f"of spilling",
            RuntimeWarning,
            stacklevel=3,
        )

    def _ensure_spill_file(self):
        if self._spill_file is None:
            fileops = self._fileops
            fileops.makedirs(self._spill_dir)
            handle, path = fileops.mkstemp(
                prefix="arena-", suffix=".spill", dir=self._spill_dir
            )
            self._spill_file = fileops.fdopen(handle, "r+b")
            self._spill_path = path
        return self._spill_file

    def _spill_chunk(self, chunk: _Chunk) -> int:
        def write() -> None:
            # Idempotent retry unit: seek to the chunk's reserved offset
            # and rewrite the whole blob from RAM — a half-applied
            # attempt is simply overwritten.
            spill = self._ensure_spill_file()
            self._fileops.seek(spill, self._spill_offset)
            self._fileops.write(spill, chunk.blob)

        try:
            retry_io("spill write", write, on_retry=self._log_retry)
        except Exception as error:
            if classify_storage_error(error) is None:
                raise
            self._disable_spill(error)
            return 0
        chunk.offset = self._spill_offset
        self._spill_offset += chunk.length
        self.spilled_bytes += chunk.length
        chunk.blob = None
        chunk.state = "spilled"
        return chunk.length

    def _read_spill(self, offset: int, length: int) -> bytes:
        def read() -> bytes:
            mapped = self._spill_mmap
            if mapped is None or offset + length > len(mapped):
                if mapped is not None:
                    mapped.close()
                    self._spill_mmap = None
                self._fileops.flush(self._spill_file)
                mapped = self._fileops.mmap_read(self._spill_file)
                self._spill_mmap = mapped
            return self._fileops.mmap_slice(mapped, offset, length)

        # Transient read errors retry (the blob is zlib-framed, so a bad
        # read fails loudly downstream rather than silently corrupting).
        return retry_io("spill read", read, on_retry=self._log_retry)

    def spill_cold(self) -> int:
        """Push every sealed chunk to disk and drop materialisation caches.

        The RSS watchdog's *first* response to memory pressure — before
        it falls back to truncating the exploration.  Returns the number
        of freed bytes (0 when there is no spill directory, the spill
        tier is degraded, or nothing cold remains in RAM).
        """
        freed = 0
        self._seal_cold()
        if self._spill_dir is not None and not self._spill_disabled:
            for chunk in self._chunks:
                if self._spill_disabled:
                    break  # sealed-in-RAM mid-sweep: keep the rest hot
                if chunk.state == "zlib":
                    freed += self._spill_chunk(chunk)
            if self._spill_file is not None:
                self._fileops.flush(self._spill_file)
        if self._chunk_cache:
            freed += _RAW_CHUNK_BYTES * len(self._chunk_cache)
            self._chunk_cache.clear()
        if self._lru:
            self._lru.clear()
        return freed

    # ------------------------------------------------------------------
    # Sequence protocol + lazy materialisation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def _get_hot(self, index: int) -> Configuration:
        """Kernel fast path: hot window first, full lookup on miss."""
        configuration = self._window.get(index)
        if configuration is not None:
            return configuration
        return self[index]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("arena index out of range")
        configuration = self._window.get(index)
        if configuration is not None:
            return configuration
        configuration = self._pinned.get(index)
        if configuration is not None:
            return configuration
        lru = self._lru
        configuration = lru.get(index)
        if configuration is not None:
            lru.move_to_end(index)
            return configuration
        return self._materialise(index)

    def _materialise(self, index: int) -> Configuration:
        """Chain-walk up the parent column to the nearest live ancestor,
        then rebuild downwards through the LRU."""
        self.chain_walks += 1
        window = self._window
        pinned = self._pinned
        lru = self._lru
        chain: list[tuple[int, int, int]] = []
        cursor = index
        while True:
            parent, event_index, content_hash = self._entry(cursor)
            if parent < 0:
                current = pinned[cursor]
                break
            chain.append((cursor, event_index, content_hash))
            cursor = parent
            current = window.get(cursor)
            if current is None:
                current = pinned.get(cursor)
            if current is None:
                current = lru.get(cursor)
                if current is not None:
                    lru.move_to_end(cursor)
            if current is not None:
                break
        events = self._events
        lru_size = self._lru_size
        for child_id, event_index, content_hash in reversed(chain):
            current = _materialise_child(
                current, events[event_index], content_hash
            )
            self.materialisations += 1
            lru[child_id] = current
            if len(lru) > lru_size:
                lru.popitem(last=False)
        return current

    def __iter__(self) -> Iterator[Configuration]:
        """Stream all configurations in id order.

        BFS parent ids are non-decreasing along the id order, so one
        rolling two-layer cache gives every child an O(1) parent lookup;
        resident transient objects stay bounded by two BFS layers no
        matter the universe size.
        """
        cache: dict[int, Configuration] = {}
        floor = 0
        events = self._events
        for index in range(self._count):
            parent_id, event_index, content_hash = self._entry(index)
            if parent_id < 0:
                current = self._pinned[index]
            else:
                while floor < parent_id:
                    cache.pop(floor, None)
                    floor += 1
                parent = cache.get(parent_id)
                if parent is None:
                    parent = self[parent_id]
                current = _materialise_child(
                    parent, events[event_index], content_hash
                )
            cache[index] = current
            yield current

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, (ArenaStore, list, tuple)):
            if len(other) != self._count:
                return False
            return all(ours == theirs for ours, theirs in zip(self, other))
        return NotImplemented

    __hash__ = None  # mutable container semantics, like list

    def __reduce__(self):
        # Pickling materialises: arenas hold OS resources (spill file)
        # and pickle only for small diagnostic universes.
        return (_rebuild_pinned, (list(self),))

    # ------------------------------------------------------------------
    # Checkpoint replay
    # ------------------------------------------------------------------
    def replay(self, stream) -> dict[int, int | list[int]]:
        """Rebuild the arena from checkpoint discovery records.

        ``stream`` is the saved ``(parent_id, event)`` record list in
        discovery order.  Parents arrive in non-decreasing order, so the
        hot window advances exactly as it did during live exploration —
        resident objects stay bounded by two BFS layers instead of the
        full-universe replica the object store instantiates.  Returns the
        content-hash -> dense id dedup table (with collision buckets),
        ready to install on the universe.
        """
        if self._count:
            self.clear()
        from repro.core.configuration import EMPTY_CONFIGURATION

        self.append(EMPTY_CONFIGURATION)
        ids_by_hash: dict[int, int | list[int]] = {
            hash(EMPTY_CONFIGURATION): 0
        }
        window = self._window
        for parent_id, event in stream:
            while self._window_floor < parent_id:
                window.pop(self._window_floor, None)
                self._window_floor += 1
            parent = window.get(parent_id)
            if parent is None:
                parent = self[parent_id]
            child = parent.extend_unregistered(event)
            child_hash = hash(child)
            child_id = self.append_child(parent_id, event, child_hash, child)
            entry = ids_by_hash.get(child_hash)
            if entry is None:
                ids_by_hash[child_hash] = child_id
            elif type(entry) is int:
                ids_by_hash[child_hash] = [entry, child_id]
            else:
                entry.append(child_id)
        self._seal_cold()
        return ids_by_hash

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._count = 0
        self._events.clear()
        self._event_index.clear()
        self._chunks.clear()
        del self._tail_parent[:]
        del self._tail_event[:]
        del self._tail_hash[:]
        self._window.clear()
        self._window_floor = 0
        self._pinned.clear()
        self._lru.clear()
        self._chunk_cache.clear()
        if self._spill_mmap is not None:
            self._spill_mmap.close()
            self._spill_mmap = None
        self._spill_offset = 0
        if self._spill_file is not None:
            self._fileops.truncate(self._spill_file, 0)

    def stats(self) -> dict:
        """Layout/compression/spill telemetry for bench and docs."""
        tail_bytes = (
            len(self._tail_parent) * 8
            + len(self._tail_event) * 4
            + len(self._tail_hash) * 8
        )
        resident_blob_bytes = sum(
            chunk.length for chunk in self._chunks if chunk.state == "zlib"
        )
        return {
            "configurations": self._count,
            "event_table": len(self._events),
            "sealed_chunks": len(self._chunks),
            "spilled_chunks": sum(
                1 for chunk in self._chunks if chunk.state == "spilled"
            ),
            "tail_bytes": tail_bytes,
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
            "resident_blob_bytes": resident_blob_bytes,
            "spilled_bytes": self.spilled_bytes,
            "spill_disabled": self._spill_disabled,
            "window": len(self._window),
            "lru": len(self._lru),
            "materialisations": self.materialisations,
            "chain_walks": self.chain_walks,
        }

    def close(self) -> None:
        """Release the spill file (idempotent)."""
        if self._spill_mmap is not None:
            self._spill_mmap.close()
            self._spill_mmap = None
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None
        if self._spill_path is not None:
            try:
                self._fileops.unlink(self._spill_path)
            except OSError:
                pass
            self._spill_path = None

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "ArenaStore",
    "compress_batch",
    "decompress_batch",
]
