"""Typed retry/backoff policy for hostile environments.

PR 7 taught the worker-spawn path to retry ``EAGAIN`` with exponential
backoff; this module generalises that into one shared vocabulary for
*every* operation that touches the OS — storage I/O (checkpoint segment
appends, manifest commits, arena spill writes and reads) and process
spawning — so each call site stops inventing its own errno folklore.

The policy is **typed**: an :class:`OSError` is classified as

``transient``
    Worth retrying in place with bounded exponential backoff —
    scheduler pressure (``EAGAIN``/``EWOULDBLOCK``), interrupted
    syscalls (``EINTR``), descriptor-table pressure
    (``EMFILE``/``ENFILE``), transient memory pressure (``ENOMEM``),
    and ``EIO``.  ``EIO`` earns transient status only because every
    retried read in this codebase re-verifies a CRC afterwards
    (checkpoint segments and manifests are CRC-guarded end to end) and
    every retried write restarts the *whole* durable-write unit from
    the in-memory buffer — a half-applied retry can't corrupt state.
``permanent``
    Retry cannot help: the disk is full (``ENOSPC``), the quota is
    exhausted (``EDQUOT``), or the filesystem went read-only
    (``EROFS``).  These escalate immediately to the caller, which
    decides the degradation rung (see ``checkpoint.py``'s
    disable-checkpointing ladder and ``arena.py``'s sealed-in-RAM
    fallback).
``None`` (unclassified)
    Anything else — programming errors, ``EBADF``, permission walls.
    Never retried, never absorbed by a degradation ladder; these
    re-raise verbatim (the background writer keeps them *sticky*).

:func:`retry_io` is the single retry loop: it retries transient
failures up to ``policy.attempts`` total tries, sleeping
``backoff * factor**n`` (capped) between them, logging each retry
through the caller's hook, and re-raises the final error otherwise.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass

TRANSIENT = "transient"
PERMANENT = "permanent"

TRANSIENT_ERRNOS = frozenset(
    {
        errno.EAGAIN,
        errno.EWOULDBLOCK,
        errno.EINTR,
        errno.EMFILE,
        errno.ENFILE,
        errno.ENOMEM,
        errno.EIO,
    }
)

PERMANENT_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EROFS})


def classify_storage_error(error: BaseException) -> str | None:
    """``"transient"``, ``"permanent"``, or ``None`` for an exception.

    Only :class:`OSError` with a recognised ``errno`` is classified;
    everything else returns ``None`` (escalate verbatim, no retry, no
    degradation ladder).
    """
    if not isinstance(error, OSError) or error.errno is None:
        return None
    if error.errno in PERMANENT_ERRNOS:
        return PERMANENT
    if error.errno in TRANSIENT_ERRNOS:
        return TRANSIENT
    return None


def is_storage_error(error: BaseException) -> bool:
    """True when ``error`` is an environmental storage/resource failure
    (either retryable or permanent) rather than a deterministic bug —
    the sharded engine uses this to route a worker's failure into the
    failover path instead of re-raising it as the exploration's own."""
    return classify_storage_error(error) is not None


# Spawn-side transients (generalised from PR 7's worker-spawn backoff):
# fork/posix_spawn under load fails with EAGAIN/ENOMEM, and some libcs
# surface only the message text.
TRANSIENT_SPAWN_ERRNOS = frozenset(
    {errno.EAGAIN, errno.EWOULDBLOCK, errno.ENOMEM}
)


def transient_spawn_error(error: BaseException) -> bool:
    """True when a process-spawn failure is worth retrying."""
    if isinstance(error, OSError) and error.errno in TRANSIENT_SPAWN_ERRNOS:
        return True
    return "temporarily unavailable" in str(error).lower()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``attempts`` total tries, sleeping
    ``backoff * factor**n`` (capped at ``max_backoff``) between them."""

    attempts: int = 4
    backoff: float = 0.02
    factor: float = 2.0
    max_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("retry backoff must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"retry factor must be >= 1, got {self.factor}")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return min(self.backoff * self.factor ** (attempt - 1), self.max_backoff)


DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_io(
    operation: str,
    fn,
    *,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    classify=classify_storage_error,
    on_retry=None,
    sleep=time.sleep,
):
    """Run ``fn()``; retry transient failures, escalate the rest.

    ``fn`` must be safe to re-run wholesale — in this codebase every
    retry unit is a complete durable-write sequence (open → write →
    fsync from an in-memory buffer) or a complete read that is
    CRC-verified downstream, so a retry can only repeat work, never
    half-apply it.

    ``on_retry(operation, attempt, error, delay)`` is called before
    each backoff sleep (the logging hook); ``classify`` maps an
    exception to ``"transient"``/``"permanent"``/``None``.  Permanent
    and unclassified errors re-raise immediately; a transient error on
    the final attempt re-raises as-is (the caller re-classifies to pick
    a degradation rung).
    """
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except Exception as error:
            if classify(error) != TRANSIENT or attempt == policy.attempts:
                raise
            delay = policy.delay(attempt)
            if on_retry is not None:
                on_retry(operation, attempt, error, delay)
            if delay:
                sleep(delay)


__all__ = [
    "DEFAULT_RETRY_POLICY",
    "PERMANENT",
    "PERMANENT_ERRNOS",
    "TRANSIENT",
    "TRANSIENT_ERRNOS",
    "TRANSIENT_SPAWN_ERRNOS",
    "RetryPolicy",
    "classify_storage_error",
    "is_storage_error",
    "retry_io",
    "transient_spawn_error",
]
