"""Exhaustive enumeration of a protocol's system computations.

A :class:`Universe` is the set of all reachable configurations (canonical
``[D]``-classes of system computations) of a protocol, up to optional
bounds.  It is *the* quantification domain for everything in the theory:

* ``x [P] y`` quantifies over projections — answered by an index from
  P-projections to configurations;
* composed relations ``x [P1 … Pn] z`` existentially quantify over
  intermediate computations — answered by breadth-first search through
  isomorphism classes;
* ``(P knows b) at x`` universally quantifies over the ``[P]``-class of
  ``x`` — answered by scanning the indexed class.

When exploration terminates without hitting a bound the universe is
*complete* and every quantifier is exact (the protocols shipped in
:mod:`repro.protocols` are designed to have finite computation spaces).
When a bound is hit the universe is a sound under-approximation and
:attr:`Universe.is_complete` is ``False``; theorem checkers refuse
incomplete universes unless explicitly told otherwise.

Every configuration receives a *dense integer id* (its BFS discovery
index).  Successor lists are stored as id arrays and projection indexes
map each ``[P]``-projection key to an **int bitmask** over ids, so set
algebra over the universe (knowledge extensions, class containment,
fixpoints) runs as single bitwise operations on Python ints — see
PERFORMANCE.md for the architecture.
"""

from __future__ import annotations

import gc
import os
import sys
import zlib
from math import inf
from array import array
from collections import deque
from collections.abc import Iterable, Iterator, Sequence

from repro.core.configuration import (
    _HASH_MODULUS,
    _ROLL_MULTIPLIER,
    _entry_hash,
    EMPTY_CONFIGURATION,
    Configuration,
)
from repro.core.errors import UniverseError
from repro.core.events import Event, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.universe.arena import ArenaStore
from repro.universe.fileops import DEFAULT_FILEOPS, FaultInjectingFileOps
from repro.universe.options import UNSET, ExplorationOptions, resolve_options
from repro.universe.recovery import RecoveryLog
from repro.universe.protocol import Protocol

ProjectionKey = tuple
"""Canonical key identifying a ``[P]``-class (see Configuration.projection)."""


_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)
"""Set-bit offsets per byte value, for O(bytes) mask iteration."""

_LITTLE_ENDIAN = sys.byteorder == "little"


def iter_bit_ids(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, ascending (dense config ids).

    Serialises the mask once and walks it as zero-copy 64-bit words
    (``memoryview.cast``): zero words — the bulk of fragmented class
    masks — are skipped with a single comparison instead of eight
    byte tests, and set bits inside a nonzero word are extracted from a
    *small* int with the byte offset table.  Isolating bits on the
    big int itself (``mask & -mask``) would copy the whole mask per set
    bit, which is quadratic on the dense masks the composed-relation
    pipelines produce.
    """
    if not mask:
        return
    byte_bits = _BYTE_BITS
    length = (mask.bit_length() + 63) >> 6  # words
    raw = mask.to_bytes(length << 3, "little")
    if _LITTLE_ENDIAN:
        words: Iterable[int] = memoryview(raw).cast("Q")
    else:
        # cast("Q") reads native-order words; on big-endian hosts the
        # little-endian serialisation must be decoded per word.
        words = (
            int.from_bytes(raw[start : start + 8], "little")
            for start in range(0, len(raw), 8)
        )
    offset = 0
    for word in words:
        if word == 0xFFFFFFFFFFFFFFFF:  # saturated word: the dense bulk
            yield from range(offset, offset + 64)
            offset += 64
        elif word:
            while word:
                byte = word & 0xFF
                if byte:
                    for bit in byte_bits[byte]:
                        yield offset + bit
                word >>= 8
                offset += 8
            offset = (offset + 63) & -64
        else:
            offset += 64


_DENSE_MASK_WORD_BUDGET = 1 << 21
"""Dense partition tables cache one big-int mask per class; a table whose
cached masks would exceed this many 64-bit words (16 MiB) stores member
id-arrays instead and materialises masks on demand.  Highly fragmented
partitions — e.g. the all-singleton ``[D]``-classes, where per-class masks
cost ``O(classes × n/64)`` words — take the sparse representation long
before coarse partitions do."""

_COMPOSE_MEMO_LIMIT = 8192
"""Cap on memoised class-combination masks per partition table."""

_SPARSE_MASK_MEMO_WORDS = 1 << 16
"""Sparse tables memoise transiently-materialised class masks up to this
many 64-bit words (512 KiB per table): fragmented ``[D]``-like partitions
have repeat ``class_mask`` callers (property checkers, knowledge
evaluation) that would otherwise re-materialise the same mask per call,
while the full dense cache stays quadratic and out of reach."""


class PartitionTable:
    """The ``[P]``-partition of a universe on dense configuration ids.

    One table answers every class-level question the isomorphism engine
    asks:

    * ``class_of[config_id]`` — the class index of a configuration;
    * ``members[k]`` — the ids of class ``k``, ascending;
    * ``class_mask(k)`` / ``masks()`` — classes as int bitmasks;
    * ``compose(mask)`` — the closure of a mask under ``[P]`` in one
      pass (the primitive behind ``[P1 … Pn]`` composition);
    * ``contained_classes_mask(body)`` — the union of classes wholly
      inside ``body`` (the modal step of ``knows``).

    Dense tables cache all class masks; *sparse* tables (fragmented
    partitions where per-class masks would be quadratic in memory) keep
    only the id arrays and materialise masks transiently.
    """

    __slots__ = (
        "size",
        "num_classes",
        "class_of",
        "members",
        "key_to_class",
        "sparse",
        "_masks",
        "_compose_memo",
        "_sparse_memo",
        "_sparse_memo_words",
        "_fingerprint",
        "_consistent",
    )

    def __init__(
        self,
        size: int,
        buckets: dict[ProjectionKey, list[int]],
        sparse: bool | None = None,
    ) -> None:
        self.size = size
        self.num_classes = len(buckets)
        self.key_to_class: dict[ProjectionKey, int] = {}
        class_of = array("i", bytes(4 * size))
        members: list[array] = []
        for index, (key, ids) in enumerate(buckets.items()):
            self.key_to_class[key] = index
            row = array("i", ids)
            members.append(row)
            for config_id in ids:
                class_of[config_id] = index
        self.class_of = class_of
        self.members = tuple(members)
        if sparse is None:
            words = (size + 63) >> 6
            sparse = self.num_classes * words > _DENSE_MASK_WORD_BUDGET
        self.sparse = sparse
        self._masks: list[int] | None = None
        self._compose_memo: dict[tuple[int, ...], int] = {}
        self._sparse_memo: dict[int, int] = {}
        self._sparse_memo_words = 0
        self._fingerprint: tuple[int, int, int] | None = None
        self._consistent: bool | None = None

    # -- mask materialisation ------------------------------------------
    def _mask_of_ids(self, ids: Sequence[int]) -> int:
        if len(ids) == 1:
            return 1 << ids[0]
        bits = bytearray(((ids[-1] if ids else 0) >> 3) + 1)
        for config_id in ids:
            bits[config_id >> 3] |= 1 << (config_id & 7)
        return int.from_bytes(bits, "little")

    def _dense_masks(self) -> list[int]:
        masks = self._masks
        if masks is None:
            masks = [self._mask_of_ids(ids) for ids in self.members]
            self._masks = masks
        return masks

    def class_mask(self, index: int) -> int:
        """The bitmask of class ``index``.

        Sparse tables materialise transiently but memoise repeat callers
        up to a word budget (``_SPARSE_MASK_MEMO_WORDS``), so fragmented
        ``[D]``-like partitions stop re-materialising the same mask per
        call without ever caching quadratically many words.
        """
        if self.sparse:
            memo = self._sparse_memo
            mask = memo.get(index)
            if mask is None:
                mask = self._mask_of_ids(self.members[index])
                words = ((mask.bit_length() + 63) >> 6) or 1
                if self._sparse_memo_words + words <= _SPARSE_MASK_MEMO_WORDS:
                    memo[index] = mask
                    self._sparse_memo_words += words
            return mask
        return self._dense_masks()[index]

    def masks(self) -> tuple[int, ...]:
        """All class masks, in class-index order.

        Dense tables return a cached tuple; sparse tables materialise a
        fresh tuple per call (reusing the bounded per-class memo) —
        prefer :attr:`class_of`/:attr:`members` or :meth:`compose` on
        fragmented partitions.
        """
        if self.sparse:
            return tuple(self.class_mask(index) for index in range(self.num_classes))
        return tuple(self._dense_masks())

    # -- identity ------------------------------------------------------
    @property
    def fingerprint(self) -> tuple[int, int, int]:
        """Stable identity of the partition: ``(size, classes, crc)``.

        Class indices are assigned in first-occurrence order over the
        dense configuration ids, so the ``class_of`` array is a
        *canonical* labelling: two tables over the same universe describe
        the same partition iff their arrays are equal, and the
        fingerprint — a CRC of the array bytes, independent of hash
        randomisation — is equal whenever the partitions are.  Callers
        that need exactness confirm with :meth:`same_partition_as`
        (fingerprint first, then a C-level array compare).
        """
        fingerprint = self._fingerprint
        if fingerprint is None:
            fingerprint = (
                self.size,
                self.num_classes,
                zlib.crc32(self.class_of.tobytes()),
            )
            self._fingerprint = fingerprint
        return fingerprint

    def same_partition_as(self, other: "PartitionTable") -> bool:
        """Exact partition equality (fingerprint fast-path, then arrays)."""
        if self is other:
            return True
        return self.fingerprint == other.fingerprint and self.class_of == other.class_of

    def verify_consistency(self) -> bool:
        """Cross-check mask materialisation against the id arrays.

        Confirms, for every class, that the materialised mask decodes to
        exactly the member ids and that each member's ``class_of`` entry
        points back at the class — and that the member rows partition
        ``range(size)``.  This is the mask↔index cross-check the property
        checkers lean on; it is a property of the table alone, verified
        once and memoised (checkers used to re-derive it per subset
        pair).
        """
        result = self._consistent
        if result is None:
            result = True
            total = 0
            class_of = self.class_of
            for index, ids in enumerate(self.members):
                total += len(ids)
                if any(class_of[config_id] != index for config_id in ids):
                    result = False
                    break
                if list(iter_bit_ids(self.class_mask(index))) != list(ids):
                    result = False
                    break
            if result:
                result = total == self.size
            self._consistent = result
        return result

    # -- relational algebra --------------------------------------------
    def compose(self, mask: int) -> int:
        """Close ``mask`` under ``[P]``: the union of the classes of its
        members, each class unioned exactly once."""
        class_of = self.class_of
        hit = bytearray(self.num_classes)
        touched: list[int] = []
        for config_id in iter_bit_ids(mask):
            index = class_of[config_id]
            if not hit[index]:
                hit[index] = 1
                touched.append(index)
        touched.sort()
        return self._union_of(tuple(touched))

    def classes_mask(self, indices: Iterable[int]) -> int:
        """Union mask of the given classes (memoised per combination).

        Composed relations repeatedly materialise the same unions of
        final-partition classes; the memo makes each distinct combination
        cost its ORs once.
        """
        return self._union_of(tuple(sorted(set(indices))))

    def _union_of(self, key: tuple[int, ...]) -> int:
        if len(key) == 1:
            return self.class_mask(key[0])
        if self.sparse:
            bits = bytearray((self.size >> 3) + 1)
            for index in key:
                for config_id in self.members[index]:
                    bits[config_id >> 3] |= 1 << (config_id & 7)
            return int.from_bytes(bits, "little")
        memo = self._compose_memo
        result = memo.get(key)
        if result is None:
            masks = self._dense_masks()
            result = 0
            for index in key:
                result |= masks[index]
            if len(memo) < _COMPOSE_MEMO_LIMIT:
                memo[key] = result
        return result

    def contained_classes_mask(self, body: int) -> int:
        """Union of the classes wholly contained in ``body``.

        This is the modal step of ``knows``: a class is kept iff every
        member satisfies the body.
        """
        if self.sparse:
            # Index the body's bytes directly: shifting the big-int per
            # member would copy it once per bit tested.
            body_bytes = body.to_bytes((self.size >> 3) + 1, "little")
            bits = bytearray((self.size >> 3) + 1)
            for ids in self.members:
                if all(
                    body_bytes[config_id >> 3] >> (config_id & 7) & 1
                    for config_id in ids
                ):
                    for config_id in ids:
                        bits[config_id >> 3] |= 1 << (config_id & 7)
            return int.from_bytes(bits, "little")
        satisfied = 0
        for class_mask in self._dense_masks():
            if class_mask & body == class_mask:
                satisfied |= class_mask
        return satisfied


_BOUND_MESSAGE = (
    "exploration exceeded %s configurations; raise the bound or shrink "
    "the protocol"
)

_EMPTY_ENTRY_MEMO: dict[int, int] = {}
"""Permanent previous-generation entry-hash memo of the object store."""


class Universe:
    """All reachable configurations of a protocol, with isomorphism indexes.

    Parameters
    ----------
    protocol:
        The protocol to explore.
    max_events:
        Stop extending configurations that already have this many events
        (``None`` = unbounded; the protocol must then be finite).
    max_configurations:
        Bound on the number of configurations (safety valve).
    on_limit:
        What to do when ``max_configurations`` is hit: ``"raise"``
        (default) aborts with :class:`UniverseError`; ``"truncate"``
        stops exploring and returns the partial universe with
        :attr:`is_complete` ``False`` — the streaming mode that keeps
        partial universes at n≥8 usable.
    workers:
        Number of exploration processes.  ``None``, ``0`` or ``1`` run
        the in-process frontier kernel; ``K > 1`` runs the multiprocess
        sharded engine (:mod:`repro.universe.sharded`): the frontier is
        partitioned by configuration content hash into ``K`` forked
        worker shards exchanging successor batches per BFS layer, and
        the merged universe is bit-identical to single-process
        exploration — same dense ids, successor arrays, class masks and
        truncation behaviour.
    checkpoint:
        Optional path for layer-boundary checkpointing
        (:mod:`repro.universe.checkpoint`): if the file exists, the
        exploration *resumes* from its last completed BFS layer; the
        finished universe is bit-identical to an uninterrupted run.
        Saved every ``checkpoint_every`` layers in the segmented
        incremental format (append one delta segment, atomically replace
        the manifest) and at the end.  A corrupt tail is salvaged to the
        last valid layer boundary (logged on :attr:`recovery_log`)
        unless ``checkpoint_strict``.
    checkpoint_strict:
        Refuse to salvage a damaged checkpoint: raise
        :class:`~repro.universe.checkpoint.CheckpointError` instead of
        truncating to the valid prefix.
    checkpoint_format:
        ``"segmented"`` (default) or ``"monolithic"`` (the PR 6
        full-rewrite format, retained for the controlled
        incremental-vs-full benchmark pair).
    rss_budget_mb:
        Optional resident-memory budget (MiB, coordinator plus live
        workers).  When exploration crosses it at a layer boundary it
        degrades to the ``on_limit="truncate"`` behaviour — partial
        universe, :attr:`is_complete` ``False`` — instead of being
        OOM-killed (pair with ``checkpoint`` to resume elsewhere).  On
        hosts where RSS cannot be measured the watchdog deactivates
        with a one-time warning (see :attr:`rss_watchdog_active`).
    fault_plan:
        Deterministic fault injection (:mod:`repro.universe.faults`).
        Worker fault kinds require ``workers >= 2``; checkpoint fault
        kinds (``torn_save``, ``corrupt_segment``) require a
        ``checkpoint`` path and run on either engine.
    supervision:
        :class:`~repro.universe.sharded.SupervisionPolicy` overriding
        the coordinator's heartbeat/respawn tunables; ``workers >= 2``
        only.
    store:
        Configuration storage backend.  ``"objects"`` (default) keeps
        every configuration as a live Python object; ``"arena"`` keeps
        packed ``(parent id, event, hash)`` columns
        (:class:`~repro.universe.arena.ArenaStore`) and materialises
        objects lazily — same dense ids, CSR arrays and hash buckets,
        at a fraction of the resident memory.
    spill_dir:
        Directory for the arena's on-disk cold tier (``store="arena"``
        only): sealed cold chunks stream to an mmap-backed spill file
        there as layers retire, and the ``rss_budget_mb`` watchdog
        force-spills before it ever truncates.
    options:
        The grouped form of everything above
        (:class:`~repro.universe.options.ExplorationOptions`, bundling
        :class:`~repro.universe.options.Limits`,
        :class:`~repro.universe.options.CheckpointPolicy`,
        :class:`~repro.universe.options.ResourceBudget` and
        :class:`~repro.universe.options.Sharding`) — the preferred
        calling style.  The flat keyword arguments remain as a
        compatibility shim normalised into the same dataclasses; a
        ``DeprecationWarning`` fires only when the same knob is set
        through both paths with different values (the explicit kwarg
        wins).
    """

    def __init__(
        self,
        protocol: Protocol,
        max_events=UNSET,
        max_configurations=UNSET,
        on_limit=UNSET,
        workers=UNSET,
        checkpoint=UNSET,
        checkpoint_every=UNSET,
        checkpoint_strict=UNSET,
        checkpoint_format=UNSET,
        rss_budget_mb=UNSET,
        fault_plan=UNSET,
        supervision=UNSET,
        store=UNSET,
        spill_dir=UNSET,
        options: ExplorationOptions | None = None,
    ) -> None:
        opts = resolve_options(
            options,
            {
                "max_events": max_events,
                "max_configurations": max_configurations,
                "on_limit": on_limit,
                "workers": workers,
                "checkpoint": checkpoint,
                "checkpoint_every": checkpoint_every,
                "checkpoint_strict": checkpoint_strict,
                "checkpoint_format": checkpoint_format,
                "rss_budget_mb": rss_budget_mb,
                "fault_plan": fault_plan,
                "supervision": supervision,
                "store": store,
                "spill_dir": spill_dir,
            },
        )
        self._options = opts
        max_events = opts.limits.max_events
        max_configurations = opts.limits.max_configurations
        on_limit = opts.limits.on_limit
        workers = opts.sharding.workers
        supervision = opts.sharding.supervision
        fault_plan = opts.sharding.fault_plan
        checkpoint = opts.checkpoint.path
        rss_budget_mb = opts.budget.rss_budget_mb
        spill_dir = opts.budget.spill_dir
        store = opts.store
        if on_limit not in ("raise", "truncate"):
            raise UniverseError(
                f"on_limit must be 'raise' or 'truncate', got {on_limit!r}"
            )
        if store not in ("objects", "arena"):
            raise UniverseError(
                f"store must be 'objects' or 'arena', got {store!r}"
            )
        if spill_dir is not None and store != "arena":
            raise UniverseError("spill_dir requires store='arena'")
        self._protocol = protocol
        self._max_events = max_events
        self._recovery_log = RecoveryLog()
        # Storage fault delivery: every checkpoint/spill filesystem call
        # routes through one shared file-ops shim; write-targeting kinds
        # arm at the BFS layer boundary covering their layer, eio_read
        # arms immediately so it can land on the resume read path.
        storage_actions = (
            fault_plan.take_storage_faults() if fault_plan is not None else []
        )
        if storage_actions:
            self._fileops = FaultInjectingFileOps()
        else:
            self._fileops = DEFAULT_FILEOPS
        self._storage_faults: dict[int, list[tuple[str, float]]] = {}
        for kind, layer, seconds in storage_actions:
            if kind == "eio_read":
                self._fileops.arm(kind, seconds)
            else:
                self._storage_faults.setdefault(layer, []).append(
                    (kind, seconds)
                )
        if store == "arena":
            self._configurations: list[Configuration] | ArenaStore = (
                ArenaStore(
                    spill_dir=spill_dir,
                    fileops=self._fileops,
                    recovery_log=self._recovery_log,
                )
            )
        else:
            self._configurations = []
        # Content hash -> dense id (or list of ids on hash collision).
        # This is both the BFS dedup table and, after exploration, the
        # public configuration -> id index: one table, no second
        # content-keyed dict and no weak-registry round-trips.
        self._ids_by_hash: dict[int, int | list[int]] = {}
        # CSR successor store: the successor ids of configuration i are
        # _succ_ids[_succ_offsets[i]:_succ_offsets[i+1]].  BFS emits each
        # configuration's successors contiguously, so the flat layout is
        # append-only — no per-configuration list objects.
        self._succ_offsets = array("q", (0,))
        self._succ_ids = array("q")
        self._complete = True
        self._init_relation_caches()
        from repro.universe.sharded import ShardedExplorer, resolve_workers

        worker_count = resolve_workers(workers)
        if worker_count <= 1:
            if fault_plan is not None and fault_plan.has_worker_faults:
                raise UniverseError(
                    "fault injection requires the sharded engine "
                    "(workers >= 2); the in-process kernel has no workers "
                    "to fail"
                )
            if supervision is not None:
                raise UniverseError(
                    "supervision policies apply to the sharded engine only "
                    "(workers >= 2)"
                )
        if (
            fault_plan is not None
            and fault_plan.has_checkpoint_faults
            and checkpoint is None
        ):
            raise UniverseError(
                "checkpoint fault injection (torn_save/corrupt_segment) "
                "requires a checkpoint path"
            )
        if storage_actions and checkpoint is None and spill_dir is None:
            raise UniverseError(
                "storage fault injection (enospc/eio_read/eio_write/"
                "fsync_fail/slow_io/fd_exhaust) requires a checkpoint "
                "path or a spill_dir — there are no filesystem calls to "
                "land on otherwise"
            )
        if checkpoint is not None and spill_dir is not None:
            # A killed predecessor's spill file is unreachable (spill
            # offsets live only in its process memory); our own store
            # has not spilled yet (creation is lazy), so every existing
            # arena-*.spill here is an orphan.
            self._clean_orphan_spills(spill_dir)
        session = None
        if checkpoint is not None:
            from repro.universe.checkpoint import CheckpointSession

            session = CheckpointSession(
                checkpoint,
                protocol,
                max_events,
                every=opts.checkpoint.every,
                strict=opts.checkpoint.strict,
                format=opts.checkpoint.format,
                fault_actions=(
                    fault_plan.take_checkpoint_faults()
                    if fault_plan is not None
                    else ()
                ),
                fileops=self._fileops,
                recovery_log=self._recovery_log,
            )
        self._checkpoint_session = session
        self._rss_watchdog = None
        try:
            if worker_count > 1:
                ShardedExplorer(
                    protocol,
                    max_events,
                    worker_count,
                    supervision=supervision,
                    fault_plan=fault_plan,
                ).explore_into(
                    self,
                    max_configurations,
                    on_limit,
                    checkpoint=session,
                    rss_budget_mb=rss_budget_mb,
                )
            else:
                self._explore(
                    max_configurations,
                    on_limit,
                    session=session,
                    rss_budget_mb=rss_budget_mb,
                )
        finally:
            if session is not None:
                # Exploration may exit early (truncation, bound errors)
                # between interval saves; drain the background writer so
                # every handed-off segment is committed — or its stored
                # failure surfaces — before the universe is usable.
                session.flush()

    def _init_relation_caches(self) -> None:
        self._partition_tables: dict[frozenset[ProcessId], PartitionTable] = {}
        self._adjacency: dict[
            tuple[frozenset[ProcessId], frozenset[ProcessId]],
            tuple[tuple[int, ...], ...],
        ] = {}
        # Refinement products: frozenset-pair -> (first_set, table, pairs);
        # fingerprint-keyed layer shares products across subset pairs
        # whose partitions coincide extensionally.
        self._refinement_products: dict[
            frozenset[frozenset[ProcessId]],
            tuple[frozenset[ProcessId], PartitionTable, list[tuple[int, int]]],
        ] = {}
        self._refinement_by_fp: dict[
            tuple[tuple[int, int, int], tuple[int, int, int]],
            tuple[array, array, PartitionTable, list[tuple[int, int]]],
        ] = {}
        # Composed-relation frontier memo, shared across the property
        # checkers (inversion, concatenation, reflexivity, equality all
        # fold the same class graphs): sequence of process sets ->
        # (base table, final table, per-base-class final-class frontiers).
        # Owned by the universe so one sweep's folds serve the next.
        self._frontier_class_memo: dict[
            tuple[frozenset[ProcessId], ...], tuple
        ] = {}

    def _explore(
        self,
        max_configurations: int | None,
        on_limit: str,
        session=None,
        rss_budget_mb: float | None = None,
    ) -> None:
        """The frontier-batched exploration kernel.

        The BFS works over *append-only id buffers*: `configurations` is
        the discovery-ordered buffer, the cursor walks it one frontier
        batch at a time, and successors append to the flat CSR arrays.
        Per popped configuration the enabled events are table lookups —
        compiled local steps plus the memoised receive set — and each
        candidate child is resolved against the local content-hash table
        via :meth:`Configuration._extension_parts` (O(1) child hash, no
        intern-registry round-trip, construction only on first
        discovery).  Projection/partition indexes are built lazily after
        exploration, never incrementally inside this loop.
        """
        configurations = self._configurations
        if isinstance(configurations, ArenaStore):
            # The arena runs its own kernel over packed window rows —
            # no child objects at all; see :meth:`_explore_packed`.
            return self._explore_packed(
                max_configurations,
                on_limit,
                session=session,
                rss_budget_mb=rss_budget_mb,
            )
        lookup = configurations.__getitem__
        ids_by_hash = self._ids_by_hash
        succ_ids = self._succ_ids
        succ_offsets = self._succ_offsets
        protocol = self._protocol
        max_events = self._max_events
        bound_error: str | None = None

        table = protocol.step_table
        steps_for = table.steps
        by_history = table._by_history
        ordered = protocol.ordered_processes
        selective = protocol.is_selective
        custom_enabling = protocol.has_custom_enabling
        enabling_filter = (
            protocol.filter_enabled_events
            if protocol.has_enabling_filter
            else None
        )
        receive_sets = protocol.receive_events_for
        selective_receives = protocol.selective_receive_events
        compiled_enabled = protocol.compiled_enabled_events
        # Processes absent from a configuration all share one compiled
        # entry: their local steps after the empty history.
        initial_steps = {
            process: steps_for(process, ()) for process in ordered
        }
        # math.inf compares greater than every count, so `count >= limit`
        # is the single bound test; non-positive bounds fire on the first
        # discovered child, like the pre-CSR explorer.
        limit = max_configurations if max_configurations is not None else inf
        modulus = _HASH_MODULUS
        multiplier = _ROLL_MULTIPLIER
        seed_of = {
            process: hash(process) % modulus for process in ordered
        }
        # Rolling entry hashes, keyed by history-tuple *identity*: the
        # tuples are pinned alive by the configurations list for the whole
        # exploration, every child shares its unchanged histories with its
        # parent, and the kernel creates exactly one tuple per discovered
        # child — so this one memo replaces the per-child entry-hash dict
        # copy (and its ~360 bytes/configuration) entirely.  The object
        # store pins every tuple forever, so the memo never rotates and
        # the previous generation stays the shared empty dict.  (The
        # packed kernel evicts tuples and must rotate — see
        # :meth:`_explore_packed`.)
        entry_hash_of: dict[int, int] = {}
        entry_prev_get = _EMPTY_ENTRY_MEMO.get
        from_trusted = Configuration._from_trusted

        watchdog = None
        if rss_budget_mb is not None:
            from repro.universe.checkpoint import RssWatchdog

            watchdog = RssWatchdog(rss_budget_mb)
        self._rss_watchdog = watchdog
        resumed = session.try_resume(self) if session is not None else None
        if resumed is not None:
            # try_resume rebuilt the stores in place; adopt its state and
            # continue from the first unexpanded layer.
            entry_hash_of = resumed.entry_hash_of
            count = len(configurations)
            edges = len(succ_ids)
            cursor = resumed.frontier_start
        else:
            configurations.append(EMPTY_CONFIGURATION)
            ids_by_hash[hash(EMPTY_CONFIGURATION)] = 0
            count = 1  # == len(configurations), maintained locally
            edges = 0  # == len(succ_ids)
            cursor = 0
        entry_memo_get = entry_hash_of.get
        track = session is not None
        layers_done = resumed.layers if resumed is not None else 0
        self._arm_storage_faults(layers_done)
        rss_truncated = False
        # The kernel allocates millions of acyclic, long-lived objects and
        # creates no reference cycles of its own; CPython's generational
        # collector would rescan the growing universe on every threshold
        # crossing — a superlinear tax that dominated n=8 exploration.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while cursor < count:
                batch_end = count  # one BFS frontier batch
                layer_records = [] if track else None
                while cursor < batch_end:
                    current = lookup(cursor)
                    cursor += 1
                    if max_events is not None and len(current) >= max_events:
                        if compiled_enabled(current):
                            self._complete = False
                        succ_offsets.append(edges)
                        continue
                    parent_histories = current._histories
                    history_of = parent_histories.get
                    if custom_enabling:
                        # The protocol restricts system-level enabling
                        # beyond local steps + willing receives; its
                        # override is authoritative.
                        enabled = list(protocol.enabled_events(current))
                    else:
                        enabled = []
                        for process in ordered:
                            history = history_of(process)
                            if history is None:
                                enabled += initial_steps[process]
                            else:
                                steps = by_history[process].get(history)
                                enabled += (
                                    steps
                                    if steps is not None
                                    else steps_for(process, history)
                                )
                        in_flight = current.in_flight_messages
                        if in_flight:
                            if not selective:
                                enabled += receive_sets(in_flight)
                            else:
                                enabled += selective_receives(
                                    history_of, in_flight
                                )
                        if enabling_filter is not None:
                            # Declarative system-level restriction on top
                            # of the compiled local steps + receives —
                            # the hook that keeps filter-only protocols
                            # on this fast path.
                            enabled = enabling_filter(current, enabled)
                    # Inlined Configuration._extension_parts, with the
                    # parent's content hash loop-invariant across this
                    # configuration's edges and rolling entry hashes read
                    # from the history-identity memo.
                    parent_hash = current._hash
                    if parent_hash is None:
                        parent_hash = hash(current)
                    matches = current._matches_extension
                    propagate = current._propagate_caches
                    for event in enabled:
                        process = event.process
                        try:
                            event_hash = event._hash_cache
                        except AttributeError:
                            event_hash = hash(event)
                        old_history = history_of(process)
                        if old_history is None:
                            new_history = (event,)
                            new_entry = (
                                seed_of[process] * multiplier + event_hash
                            ) % modulus
                            child_hash = (parent_hash + new_entry) % modulus
                        else:
                            key = id(old_history)
                            old_entry = entry_memo_get(key)
                            if old_entry is None:
                                old_entry = entry_prev_get(key)
                                if old_entry is None:
                                    old_entry = _entry_hash(
                                        process, old_history
                                    )
                                entry_hash_of[key] = old_entry
                            new_history = old_history + (event,)
                            new_entry = (
                                old_entry * multiplier + event_hash
                            ) % modulus
                            child_hash = (
                                parent_hash - old_entry + new_entry
                            ) % modulus
                        existing = ids_by_hash.get(child_hash)
                        if existing is None:
                            if count >= limit:
                                bound_error = _BOUND_MESSAGE % max_configurations
                                break
                            child_id = count
                        elif type(existing) is int:
                            if matches(
                                lookup(existing), process, new_history
                            ):
                                succ_ids.append(existing)
                                edges += 1
                                continue
                            # content-hash collision: open the bucket
                            if count >= limit:
                                bound_error = _BOUND_MESSAGE % max_configurations
                                break
                            child_id = count
                            ids_by_hash[child_hash] = [existing, child_id]
                        else:
                            for candidate_id in existing:
                                if matches(
                                    lookup(candidate_id),
                                    process,
                                    new_history,
                                ):
                                    child_id = candidate_id
                                    break
                            else:
                                if count >= limit:
                                    bound_error = (
                                        _BOUND_MESSAGE % max_configurations
                                    )
                                    break
                                child_id = count
                                existing.append(child_id)
                            if child_id != count:
                                succ_ids.append(child_id)
                                edges += 1
                                continue
                        # First discovery: build the child without a
                        # per-child entry-hash dict (lazy recompute path).
                        if existing is None:
                            ids_by_hash[child_hash] = child_id
                        count += 1
                        entry_hash_of[id(new_history)] = new_entry
                        if old_history is not None:
                            items = dict(parent_histories)
                            items[process] = new_history
                        else:
                            items = {}
                            placed = False
                            for existing_process, history in (
                                parent_histories.items()
                            ):
                                if not placed and process < existing_process:
                                    items[process] = new_history
                                    placed = True
                                items[existing_process] = history
                            if not placed:
                                items[process] = new_history
                        child = from_trusted(items, child_hash, None)
                        propagate(child, event)
                        configurations.append(child)
                        succ_ids.append(child_id)
                        edges += 1
                        if track:
                            layer_records.append((cursor - 1, event))
                    succ_offsets.append(edges)
                    if bound_error is not None:
                        break
                if bound_error is not None:
                    # Mid-layer stop: the checkpoint keeps the previous
                    # (complete) layer boundary, never a torn layer.
                    break
                layers_done += 1
                self._arm_storage_faults(layers_done)
                if track:
                    session.commit_layer(
                        layer_records,
                        batch_end,
                        self,
                        final=cursor >= count,
                    )
                if watchdog is not None and cursor < count and watchdog.exceeded():
                    # The object store has no cold tier to spill; truncate
                    # is the only rung of the degradation ladder here.
                    self._recovery_log.record(
                        "rss_budget",
                        "truncate",
                        detail=f"{count} configurations",
                    )
                    rss_truncated = True
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        if bound_error is not None and on_limit == "raise":
            raise UniverseError(bound_error)
        if bound_error is not None or rss_truncated:
            self._complete = False
            # Unexpanded frontier configurations keep empty successor rows.
            while len(succ_offsets) < len(configurations) + 1:
                succ_offsets.append(len(succ_ids))

    def _explore_packed(
        self,
        max_configurations: int | None,
        on_limit: str,
        session=None,
        rss_budget_mb: float | None = None,
    ) -> None:
        """The arena kernel: frontier BFS over *packed window rows*.

        Mirror of :meth:`_explore` for the arena store.  The object
        kernel keeps two full layers of ``Configuration`` objects alive
        — frontier plus the layer under construction — and at star n=8
        that window peaks at ~474k objects of ~1.1 KB each, dominating
        peak RSS.  This kernel never builds child objects at all.  A
        window entry is the 4-tuple

            ``(row, content_hash, received, in_flight)``

        where ``row`` is a fixed-width tuple of per-process histories in
        ``ordered_processes`` order (``()`` for absent processes) and
        the two message frozensets are interned per layer, so siblings
        with equal channel contents share one set object.  Parents are
        materialised transiently only on the slow paths (custom
        enabling, enabling filters, ``max_events`` probes), and each
        window entry is popped the moment its expansion completes, so a
        consumed frontier prefix stops counting toward peak RSS
        mid-layer instead of at the next boundary.  Dedup compares rows
        elementwise — shared history tuples make those identity hits —
        and the rare cross-layer content-hash collision falls back to
        the arena's chain-walk materialisation.

        Mid-layer eviction cannot alias the id-keyed entry memo: every
        history tuple a parent can look up is held by a live window row,
        and any tuple that reuses a freed address was itself a freshly
        discovered child's ``new_history``, whose memo entry is
        overwritten at creation.  The memo still rotates generations at
        layer boundaries exactly like the old arena path.

        Keep the dedup/bounds/checkpoint semantics in lockstep with
        :meth:`_explore`: the suite in ``tests/test_universe_arena.py``
        holds the two kernels bit-identical (ids, CSR arrays, hash
        buckets) on every bundled protocol and both engines.
        """
        arena: ArenaStore = self._configurations
        ids_by_hash = self._ids_by_hash
        succ_ids = self._succ_ids
        succ_offsets = self._succ_offsets
        protocol = self._protocol
        max_events = self._max_events
        bound_error: str | None = None

        table = protocol.step_table
        steps_for = table.steps
        by_history = table._by_history
        ordered = protocol.ordered_processes
        width = len(ordered)
        index_of = {process: i for i, process in enumerate(ordered)}
        selective = protocol.is_selective
        custom_enabling = protocol.has_custom_enabling
        enabling_filter = (
            protocol.filter_enabled_events
            if protocol.has_enabling_filter
            else None
        )
        receive_sets = protocol.receive_events_for
        selective_receives = protocol.selective_receive_events
        compiled_enabled = protocol.compiled_enabled_events
        initial_steps = {
            process: steps_for(process, ()) for process in ordered
        }
        limit = max_configurations if max_configurations is not None else inf
        modulus = _HASH_MODULUS
        multiplier = _ROLL_MULTIPLIER
        seed_of = {
            process: hash(process) % modulus for process in ordered
        }
        entry_hash_of: dict[int, int] = {}
        entry_prev_get = _EMPTY_ENTRY_MEMO.get
        from_trusted = Configuration._from_trusted
        # Per-layer frozenset intern table: channel contents repeat
        # heavily across siblings, so the per-child ``received`` /
        # ``in_flight`` sets collapse to a handful of shared objects.
        # Rotated with the memo so it never outlives the rows that
        # reference its sets.
        interned: dict[frozenset, frozenset] = {}
        intern = interned.setdefault

        window: dict[int, tuple] = {}
        empty_set: frozenset = frozenset()

        def row_of(configuration: Configuration) -> tuple:
            histories_get = configuration._histories.get
            return tuple(histories_get(process, ()) for process in ordered)

        def transient(entry: tuple) -> Configuration:
            """A throwaway ``Configuration`` for the slow-path hooks."""
            row, content_hash, received, in_flight = entry
            items = {
                process: history
                for process, history in zip(ordered, row)
                if history
            }
            configuration = from_trusted(items, content_hash, None)
            cache = configuration.__dict__
            cache["received_messages"] = received
            cache["in_flight_messages"] = in_flight
            return configuration

        def row_matches(
            candidate_id: int,
            row: tuple,
            position: int,
            new_history: tuple,
        ) -> bool:
            """``candidate == parent`` with ``position → new_history``."""
            entry = window.get(candidate_id)
            if entry is not None:
                candidate_row = entry[0]
            else:
                # Cross-layer content-hash collision: same-depth
                # duplicates always live in the window, so this is the
                # rare modulus collision — chain-walk the packed
                # columns.
                candidate_row = row_of(arena._get_hot(candidate_id))
            theirs = candidate_row[position]
            if theirs is not new_history and theirs != new_history:
                return False
            for j in range(width):
                if j == position:
                    continue
                theirs = candidate_row[j]
                ours = row[j]
                if theirs is not ours and theirs != ours:
                    return False
            return True

        watchdog = None
        if rss_budget_mb is not None:
            from repro.universe.checkpoint import RssWatchdog

            watchdog = RssWatchdog(rss_budget_mb)
        self._rss_watchdog = watchdog
        resumed = session.try_resume(self) if session is not None else None
        if resumed is not None:
            # try_resume replayed the stream into the packed columns;
            # rebuild the kernel's row window for the open frontier and
            # continue from the first unexpanded layer.  (The entry memo
            # resumes empty and recomputes on miss.)
            entry_hash_of = resumed.entry_hash_of
            count = len(arena)
            edges = len(succ_ids)
            cursor = resumed.frontier_start
            depth = 0
            for index in range(cursor, count):
                configuration = arena[index]
                if index == cursor:
                    # Every BFS edge appends one event, so the layer
                    # depth is any frontier member's event count.
                    depth = len(configuration)
                received = configuration.received_messages
                in_flight = configuration.in_flight_messages
                window[index] = (
                    row_of(configuration),
                    hash(configuration),
                    intern(received, received),
                    intern(in_flight, in_flight),
                )
            # The replay's materialised objects are now redundant: the
            # rows above carry the frontier from here on.
            arena.retire(count)
        else:
            arena.append(EMPTY_CONFIGURATION)
            root_hash = hash(EMPTY_CONFIGURATION)
            ids_by_hash[root_hash] = 0
            window[0] = (((),) * width, root_hash, empty_set, empty_set)
            count = 1
            edges = 0
            cursor = 0
            depth = 0
        entry_memo_get = entry_hash_of.get
        track = session is not None
        layers_done = resumed.layers if resumed is not None else 0
        self._arm_storage_faults(layers_done)
        rss_truncated = False
        # Same GC stance as the object kernel: acyclic long-lived data,
        # no cycles of our own — stop the generational rescans.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while cursor < count:
                batch_end = count  # one BFS frontier batch
                layer_records = [] if track else None
                while cursor < batch_end:
                    entry = window.pop(cursor)
                    parent_id = cursor
                    cursor += 1
                    if max_events is not None and depth >= max_events:
                        if compiled_enabled(transient(entry)):
                            self._complete = False
                        succ_offsets.append(edges)
                        continue
                    row, parent_hash, received, in_flight = entry
                    if custom_enabling:
                        # The protocol restricts system-level enabling
                        # beyond local steps + willing receives; its
                        # override is authoritative.
                        enabled = list(
                            protocol.enabled_events(transient(entry))
                        )
                    else:
                        enabled = []
                        for position, process in enumerate(ordered):
                            history = row[position]
                            if not history:
                                enabled += initial_steps[process]
                            else:
                                steps = by_history[process].get(history)
                                enabled += (
                                    steps
                                    if steps is not None
                                    else steps_for(process, history)
                                )
                        if in_flight:
                            if not selective:
                                enabled += receive_sets(in_flight)
                            else:
                                items = {
                                    process: history
                                    for process, history in zip(ordered, row)
                                    if history
                                }
                                enabled += selective_receives(
                                    items.get, in_flight
                                )
                        if enabling_filter is not None:
                            enabled = enabling_filter(
                                transient(entry), enabled
                            )
                    for event in enabled:
                        process = event.process
                        position = index_of[process]
                        try:
                            event_hash = event._hash_cache
                        except AttributeError:
                            event_hash = hash(event)
                        old_history = row[position]
                        if not old_history:
                            new_history = (event,)
                            new_entry = (
                                seed_of[process] * multiplier + event_hash
                            ) % modulus
                            child_hash = (parent_hash + new_entry) % modulus
                        else:
                            key = id(old_history)
                            old_entry = entry_memo_get(key)
                            if old_entry is None:
                                old_entry = entry_prev_get(key)
                                if old_entry is None:
                                    old_entry = _entry_hash(
                                        process, old_history
                                    )
                                entry_hash_of[key] = old_entry
                            new_history = old_history + (event,)
                            new_entry = (
                                old_entry * multiplier + event_hash
                            ) % modulus
                            child_hash = (
                                parent_hash - old_entry + new_entry
                            ) % modulus
                        existing = ids_by_hash.get(child_hash)
                        if existing is None:
                            if count >= limit:
                                bound_error = _BOUND_MESSAGE % max_configurations
                                break
                            child_id = count
                        elif type(existing) is int:
                            if row_matches(
                                existing, row, position, new_history
                            ):
                                succ_ids.append(existing)
                                edges += 1
                                continue
                            # content-hash collision: open the bucket
                            if count >= limit:
                                bound_error = _BOUND_MESSAGE % max_configurations
                                break
                            child_id = count
                            ids_by_hash[child_hash] = [existing, child_id]
                        else:
                            for candidate_id in existing:
                                if row_matches(
                                    candidate_id, row, position, new_history
                                ):
                                    child_id = candidate_id
                                    break
                            else:
                                if count >= limit:
                                    bound_error = (
                                        _BOUND_MESSAGE % max_configurations
                                    )
                                    break
                                child_id = count
                                existing.append(child_id)
                            if child_id != count:
                                succ_ids.append(child_id)
                                edges += 1
                                continue
                        # First discovery: pack the columns, keep only the
                        # row + message sets hot — no child object.
                        if existing is None:
                            ids_by_hash[child_hash] = child_id
                        count += 1
                        entry_hash_of[id(new_history)] = new_entry
                        child_row = (
                            row[:position] + (new_history,) + row[position + 1:]
                        )
                        # Inlined Configuration._propagate_caches over the
                        # interned frozensets, kept exactly equal to the
                        # lazy definitions (including the degenerate
                        # re-send of an already-received message).
                        if isinstance(event, SendEvent):
                            message = event.message
                            child_received = received
                            if message in received:
                                child_in_flight = in_flight
                            else:
                                new_set = in_flight | {message}
                                child_in_flight = intern(new_set, new_set)
                        elif isinstance(event, ReceiveEvent):
                            message = event.message
                            new_set = received | {message}
                            child_received = intern(new_set, new_set)
                            new_set = in_flight - {message}
                            child_in_flight = intern(new_set, new_set)
                        else:
                            child_received = received
                            child_in_flight = in_flight
                        window[child_id] = (
                            child_row,
                            child_hash,
                            child_received,
                            child_in_flight,
                        )
                        arena.append_child(parent_id, event, child_hash, None)
                        succ_ids.append(child_id)
                        edges += 1
                        if track:
                            layer_records.append((parent_id, event))
                    succ_offsets.append(edges)
                    if bound_error is not None:
                        break
                if bound_error is not None:
                    # Mid-layer stop: the checkpoint keeps the previous
                    # (complete) layer boundary, never a torn layer.
                    break
                layers_done += 1
                self._arm_storage_faults(layers_done)
                if track:
                    session.commit_layer(
                        layer_records,
                        batch_end,
                        self,
                        final=cursor >= count,
                    )
                # Advance the arena floor (seals + compresses full cold
                # chunks) and rotate the generation-scoped memos.
                arena.retire(batch_end)
                entry_prev_get = entry_hash_of.get
                entry_hash_of = {}
                entry_memo_get = entry_hash_of.get
                interned = {}
                intern = interned.setdefault
                depth += 1
                if watchdog is not None and cursor < count and watchdog.exceeded():
                    # Graceful degradation ladder: spill the cold tier to
                    # disk first; only truncate if that doesn't bring RSS
                    # back under budget.
                    if arena.spill_cold() and not watchdog.exceeded():
                        self._recovery_log.record(
                            "rss_budget",
                            "spill",
                            detail=f"{count} configurations",
                        )
                        continue
                    self._recovery_log.record(
                        "rss_budget",
                        "truncate",
                        detail=f"{count} configurations",
                    )
                    rss_truncated = True
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        if bound_error is not None and on_limit == "raise":
            raise UniverseError(bound_error)
        if bound_error is not None or rss_truncated:
            self._complete = False
            # Unexpanded frontier configurations keep empty successor rows.
            while len(succ_offsets) < len(arena) + 1:
                succ_offsets.append(len(succ_ids))

    def _id_of(self, configuration: Configuration) -> int | None:
        """Dense id of ``configuration``, or ``None`` if not a member."""
        entry = self._ids_by_hash.get(hash(configuration))
        if entry is None:
            return None
        configurations = self._configurations
        if type(entry) is int:
            if configurations[entry] == configuration:
                return entry
            return None
        for candidate_id in entry:
            if configurations[candidate_id] == configuration:
                return candidate_id
        return None

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The paper's ``D``."""
        return self._protocol.processes

    @property
    def is_complete(self) -> bool:
        """True iff no exploration bound truncated the computation space."""
        return self._complete

    @property
    def recovery_log(self):
        """Recovery events survived while building this universe, in
        order: one :class:`~repro.universe.recovery.RecoveryEvent`
        (dict-compatible — ``event["kind"]``/``event["action"]`` keep
        working) per recovered
        :class:`~repro.universe.sharded.WorkerFailure` (``layer``,
        ``shard``, ``kind``, rung ``"respawn"`` or ``"fold"``), per
        checkpoint salvage event (``"salvage-truncate"``, ``"restart"``
        or ``"discard-orphan"``), per storage retry/degradation rung
        (``"storage_retry"``/``"retry"``, ``"checkpoint_degraded"``/
        ``"disable-checkpointing"``, ``"spill_degraded"``/
        ``"sealed-in-ram"``, ``"orphan_spill"``/``"discard-orphan"``),
        and per RSS-watchdog rung (``"rss_budget"``/``"spill"`` or
        ``"truncate"``)."""
        return tuple(getattr(self, "_recovery_log", ()))

    @property
    def checkpoint_degraded(self) -> bool:
        """True when a persistent storage failure disabled checkpointing
        mid-run: exploration completed, the last committed manifest is
        still valid, but no further saves happened after the failure
        (the ``checkpoint_degraded`` rung on :attr:`recovery_log` has
        the detail)."""
        session = getattr(self, "_checkpoint_session", None)
        return bool(session is not None and session.degraded)

    def _clean_orphan_spills(self, spill_dir) -> None:
        """Delete arena spill files a killed predecessor left behind in
        ``spill_dir`` (their offsets died with its process memory) and
        log one ``orphan_spill`` recovery event per file."""
        try:
            entries = os.listdir(spill_dir)
        except OSError:
            return  # nothing spilled yet: the directory may not exist
        for name in sorted(entries):
            if not (name.startswith("arena-") and name.endswith(".spill")):
                continue
            try:
                self._fileops.unlink(os.path.join(spill_dir, name))
            except OSError:
                continue  # a live sibling may still own it; leave it be
            self._recovery_log.record(
                "orphan_spill", "discard-orphan", detail=name
            )

    def _arm_storage_faults(self, layers_done: int) -> None:
        """Arm every planned storage fault whose layer the exploration
        clock has now passed (same ``fault.layer < layers_done``
        semantics as the checkpoint fault actions): the next matching
        filesystem operation — this layer boundary's checkpoint save,
        spill write, or a background-writer append — takes the hit.

        When a background checkpoint writer is active the arming is
        queued behind its already-enqueued saves, so a fault for layer
        L can never land retroactively on a still-inflight save of an
        earlier layer: the manifest through L stays committed and
        clean, which is what the degradation ladder promises."""
        pending = getattr(self, "_storage_faults", None)
        if not pending:
            return
        due: list[tuple[str, float]] = []
        for layer in [layer for layer in pending if layer < layers_done]:
            due.extend(pending.pop(layer))
        if not due:
            return
        session = self._checkpoint_session
        if session is not None and session.arm_storage_faults(due):
            return
        for kind, seconds in due:
            self._fileops.arm(kind, seconds)

    @property
    def worker_peak_rss_mb(self) -> dict[int, float]:
        """Per-shard peak RSS (MiB) of the sharded engine's workers,
        collected from their farewell frames; empty for single-process
        exploration or workers that died before answering."""
        return dict(getattr(self, "_worker_peak_rss_mb", {}))

    @property
    def options(self) -> ExplorationOptions:
        """The resolved exploration options this universe was built with
        (legacy kwargs are normalised into the same dataclasses)."""
        return getattr(self, "_options", None) or ExplorationOptions()

    @property
    def rss_watchdog_active(self) -> bool | None:
        """Whether the ``rss_budget_mb`` watchdog could actually measure
        RSS on this host: ``None`` when no budget was set, ``False``
        when the host exposes no measurement (the watchdog warned once
        and will never truncate), ``True`` otherwise."""
        watchdog = getattr(self, "_rss_watchdog", None)
        if watchdog is None:
            return None
        return watchdog.active

    @property
    def configurations(self) -> Sequence[Configuration]:
        """All reachable configurations, in BFS order (shortest first)."""
        return tuple(self._configurations)

    def __len__(self) -> int:
        return len(self._configurations)

    def __contains__(self, configuration: Configuration) -> bool:
        return self._id_of(configuration) is not None

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configurations)

    def require(self, configuration: Configuration) -> Configuration:
        """Return ``configuration`` if it belongs to the universe, else raise."""
        if self._id_of(configuration) is None:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        return configuration

    def successors(self, configuration: Configuration) -> Sequence[Configuration]:
        """One-event extensions of ``configuration`` within the universe."""
        index = self._id_of(configuration)
        if index is None:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        configurations = self._configurations
        offsets = self._succ_offsets
        return tuple(
            configurations[successor]
            for successor in self._succ_ids[offsets[index] : offsets[index + 1]]
        )

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        return self._protocol.complement(processes)

    # ------------------------------------------------------------------
    # Dense-id / bitmask machinery
    # ------------------------------------------------------------------
    def config_id(self, configuration: Configuration) -> int:
        """The dense id (BFS discovery index) of ``configuration``."""
        index = self._id_of(configuration)
        if index is None:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        return index

    def configuration_of_id(self, index: int) -> Configuration:
        """The configuration with dense id ``index``."""
        return self._configurations[index]

    @property
    def full_mask(self) -> int:
        """Bitmask with one set bit per configuration of the universe."""
        return (1 << len(self._configurations)) - 1

    def configurations_in_mask(self, mask: int) -> tuple[Configuration, ...]:
        """The configurations whose ids are set in ``mask``, in id order."""
        configurations = self._configurations
        return tuple(configurations[index] for index in iter_bit_ids(mask))

    # ------------------------------------------------------------------
    # Isomorphism machinery
    # ------------------------------------------------------------------
    def partition_table(self, processes: ProcessSetLike) -> PartitionTable:
        """The ``[P]``-partition of the universe as a :class:`PartitionTable`.

        Tables are computed once per process set and cached; they are the
        engine behind ``iso_class``, composed-relation pipelines, the
        property checkers, and the knowledge evaluator.
        """
        p_set = as_process_set(processes)
        table = self._partition_tables.get(p_set)
        if table is None:
            buckets: dict[ProjectionKey, list[int]] = {}
            if len(p_set) == 1:
                # Single-process classes are keyed by the history tuple
                # itself — no projection tuple to build.  This is the hot
                # shape: the common-knowledge fixpoint and most ``knows``
                # queries partition by singletons.
                (process,) = p_set
                for config_id, configuration in enumerate(self._configurations):
                    key = configuration._histories.get(process, ())
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [config_id]
                    else:
                        bucket.append(config_id)
            else:
                # Multi-process classes are keyed by the tuple of
                # per-process histories in sorted process order — the
                # same equivalence as `Configuration.projection` for a
                # fixed process set, without building (and memoising) a
                # (process, history)-pair tuple per configuration.
                ordered_p = tuple(sorted(p_set))
                for config_id, configuration in enumerate(self._configurations):
                    histories = configuration._histories
                    key = tuple(
                        histories.get(process, ()) for process in ordered_p
                    )
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [config_id]
                    else:
                        bucket.append(config_id)
            table = PartitionTable(len(self._configurations), buckets)
            self._partition_tables[p_set] = table
        return table

    def class_masks(self, processes: ProcessSetLike) -> tuple[int, ...]:
        """One bitmask per ``[P]``-class of the universe.

        The masks partition :attr:`full_mask`; order is by first
        discovery (BFS order of the class representative).  On sparse
        (fragmented) partitions this materialises transiently — prefer
        :meth:`partition_table` there.
        """
        return self.partition_table(processes).masks()

    def compose_masks(self, mask: int, processes: ProcessSetLike) -> int:
        """Close ``mask`` under ``[P]`` in one pass.

        Returns the union of the ``[P]``-classes of the configurations in
        ``mask`` — the frontier step of ``[P1 … Pn]`` composition.  Each
        touched class is unioned exactly once.
        """
        return self.partition_table(processes).compose(mask)

    def _refinement_entry(
        self, p_set: frozenset[ProcessId], q_set: frozenset[ProcessId]
    ) -> tuple[PartitionTable, list[tuple[int, int]]]:
        """The common refinement of ``[P]`` and ``[Q]`` plus its pair keys.

        Returns ``(table, pairs)`` where ``table`` partitions the
        universe into the nonempty intersections of ``[P]``- and
        ``[Q]``-classes (labels in first-occurrence order — canonical)
        and ``pairs[k]`` is the ``(P-class, Q-class)`` pair of refinement
        class ``k``.  ``pairs`` is oriented for the *requested* order.

        Built from the two ``class_of`` index arrays in one O(n) pass and
        memoised per unordered pair of process sets; a fingerprint-keyed
        layer additionally shares the product across subset pairs whose
        partitions coincide extensionally (verified exactly, arrays
        compared, before reuse).
        """
        key = frozenset((p_set, q_set))
        cached = self._refinement_products.get(key)
        if cached is not None:
            first_set, table, pairs = cached
            if first_set == p_set:
                return table, pairs
            return table, [(b, a) for a, b in pairs]
        p_table = self.partition_table(p_set)
        q_table = self.partition_table(q_set)
        fp_key = (p_table.fingerprint, q_table.fingerprint)
        shared = self._refinement_by_fp.get(fp_key)
        if shared is not None:
            p_of, q_of, table, pairs = shared
            if p_of == p_table.class_of and q_of == q_table.class_of:
                self._refinement_products[key] = (p_set, table, pairs)
                return table, pairs
        shared = self._refinement_by_fp.get((fp_key[1], fp_key[0]))
        if shared is not None:
            q_of, p_of, table, transposed = shared
            if p_of == p_table.class_of and q_of == q_table.class_of:
                pairs = [(a, b) for b, a in transposed]
                self._refinement_products[key] = (p_set, table, pairs)
                return table, pairs
        p_of = p_table.class_of
        q_of = q_table.class_of
        width = q_table.num_classes
        labels: dict[int, int] = {}
        buckets: list[list[int]] = []
        pair_keys: list[int] = []
        for config_id in range(len(self._configurations)):
            pair = p_of[config_id] * width + q_of[config_id]
            label = labels.get(pair)
            if label is None:
                label = len(buckets)
                labels[pair] = label
                buckets.append([])
                pair_keys.append(pair)
            buckets[label].append(config_id)
        pairs = [divmod(pair, width) for pair in pair_keys]
        table = PartitionTable(
            len(self._configurations), dict(zip(pairs, buckets))
        )
        self._refinement_products[key] = (p_set, table, pairs)
        self._refinement_by_fp[fp_key] = (p_of, q_of, table, pairs)
        return table, pairs

    def refinement_product(
        self, first: ProcessSetLike, second: ProcessSetLike
    ) -> PartitionTable:
        """The common refinement of ``[P]`` and ``[Q]`` as a partition table.

        This is the relation ``[P] ∩ [Q]`` computed *from the class-index
        arrays* — independently of the ``[P ∪ Q]`` projection index, which
        is what lets :func:`repro.isomorphism.algebra.check_union` compare
        the two.  Canonically labelled, memoised, fingerprint-shared; see
        :meth:`_refinement_entry`.
        """
        p_set = as_process_set(first)
        q_set = as_process_set(second)
        if p_set == q_set:
            return self.partition_table(p_set)
        return self._refinement_entry(p_set, q_set)[0]

    def class_adjacency(
        self, first: ProcessSetLike, second: ProcessSetLike
    ) -> tuple[tuple[int, ...], ...]:
        """For each ``[P]``-class, the ``[Q]``-classes sharing a member.

        Entry ``k`` lists, ascending, the class indices of
        ``partition_table(second)`` reachable from class ``k`` of
        ``partition_table(first)`` in one ``[Q]`` step.  This is the class
        graph along which composed relations propagate.  Derived from the
        memoised refinement product — whose realised ``(P-class,
        Q-class)`` pairs are exactly the adjacency edges — so one O(n)
        pass serves both directions and every product consumer; cached
        per ordered pair.
        """
        p_set = as_process_set(first)
        q_set = as_process_set(second)
        cached = self._adjacency.get((p_set, q_set))
        if cached is None:
            if p_set == q_set:
                cached = tuple(
                    (index,)
                    for index in range(self.partition_table(p_set).num_classes)
                )
            else:
                _, pairs = self._refinement_entry(p_set, q_set)
                reachable: list[set[int]] = [
                    set() for _ in range(self.partition_table(p_set).num_classes)
                ]
                for p_class, q_class in pairs:
                    reachable[p_class].add(q_class)
                cached = tuple(tuple(sorted(entry)) for entry in reachable)
            self._adjacency[(p_set, q_set)] = cached
        return cached

    def iso_class_mask(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Bitmask of the ``[P]``-class of ``configuration``."""
        self.require(configuration)
        p_set = as_process_set(processes)
        table = self.partition_table(p_set)
        if len(p_set) == 1:
            (process,) = p_set
            key: ProjectionKey = configuration.history(process)
        else:
            histories = configuration._histories
            key = tuple(
                histories.get(process, ()) for process in sorted(p_set)
            )
        return table.class_mask(table.key_to_class[key])

    def iso_class_index(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Class index of ``configuration`` in ``partition_table(processes)``."""
        return self.partition_table(processes).class_of[
            self.config_id(configuration)
        ]

    def iso_class(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> Sequence[Configuration]:
        """All universe configurations ``y`` with ``configuration [P] y``."""
        return self.configurations_in_mask(
            self.iso_class_mask(configuration, processes)
        )

    def iso_class_size(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Size of the ``[P]``-class of ``configuration``."""
        return self.iso_class_mask(configuration, processes).bit_count()

    def sub_configuration_pairs(
        self,
    ) -> Iterator[tuple[Configuration, Configuration]]:
        """All ordered pairs ``(x, z)`` with ``x`` a sub-configuration of
        ``z`` — the configuration-level analogue of the paper's ``x <= z``.

        Quadratic in the universe size; intended for exhaustive theorem
        checking on small universes.  Candidates are bucketed by event
        count so ``x`` is only ever compared against configurations with
        at least as many events.
        """
        by_count: dict[int, list[Configuration]] = {}
        for configuration in self._configurations:
            by_count.setdefault(len(configuration), []).append(configuration)
        counts = sorted(by_count)
        for smaller in self._configurations:
            threshold = len(smaller)
            for count in counts:
                if count < threshold:
                    continue
                for larger in by_count[count]:
                    if smaller.is_sub_configuration_of(larger):
                        yield smaller, larger

    def events(self) -> frozenset[Event]:
        """Every event occurring anywhere in the universe."""
        found: set[Event] = set()
        for configuration in self._configurations:
            found.update(configuration.events())
        return frozenset(found)

    @property
    def active_processes(self) -> frozenset[ProcessId]:
        """Processes with at least one event somewhere in the universe."""
        cached = getattr(self, "_active_processes", None)
        if cached is None:
            active: set[ProcessId] = set()
            for configuration in self._configurations:
                active.update(configuration._histories)
            cached = frozenset(active)
            self._active_processes = cached
        return cached


def _consistent_cuts_exhaustive(
    configuration: Configuration,
) -> Iterator[Configuration]:
    """Reference enumeration over the full prefix-length product.

    Kept as the fallback for segments whose causal order is cyclic (no
    linearization), where the pruned forward search below is incomplete.
    """
    import itertools

    processes = sorted(configuration.processes)
    ranges = [range(len(configuration.history(process)) + 1) for process in processes]
    for cut_lengths in itertools.product(*ranges):
        histories = {
            process: configuration.history(process)[:length]
            for process, length in zip(processes, cut_lengths)
        }
        candidate = Configuration(histories)
        if candidate.received_messages <= candidate.sent_messages:
            yield candidate


def _consistent_cuts(configuration: Configuration) -> Iterator[Configuration]:
    """All message-consistent combinations of per-process history prefixes.

    System computations are prefix closed and closed under removing
    causally-maximal events, so every consistent cut of a computation is
    itself a computation of the same system.

    Implemented as a prefix-pruned forward search: starting from the
    empty cut, a cut is extended one event at a time, receives only when
    their message is already sent within the cut.  For configurations
    with an acyclic causal order this reaches exactly the cuts whose
    received messages are a subset of their sent messages, while never
    materialising the (exponentially larger) full product of prefix
    lengths.  Cyclic inputs fall back to the exhaustive reference.
    """
    processes = sorted(configuration.processes)
    if not processes:
        yield configuration
        return

    from repro.causality.order import CausalOrder

    if not CausalOrder(configuration).is_acyclic():
        yield from _consistent_cuts_exhaustive(configuration)
        return

    histories = [configuration.history(process) for process in processes]
    start = (0,) * len(processes)
    sent_at: dict[tuple[int, ...], frozenset] = {start: frozenset()}
    queue: deque[tuple[int, ...]] = deque([start])
    cuts: list[tuple[int, ...]] = [start]
    while queue:
        cut = queue.popleft()
        sent = sent_at[cut]
        for position, history in enumerate(histories):
            length = cut[position]
            if length >= len(history):
                continue
            event = history[length]
            if isinstance(event, ReceiveEvent) and event.message not in sent:
                continue
            extended = cut[:position] + (length + 1,) + cut[position + 1 :]
            if extended in sent_at:
                continue
            sent_at[extended] = (
                sent | {event.message} if isinstance(event, SendEvent) else sent
            )
            queue.append(extended)
            cuts.append(extended)
    for cut in cuts:
        yield Configuration(
            {
                process: histories[position][: cut[position]]
                for position, process in enumerate(processes)
                if cut[position]
            }
        )


class EnumeratedUniverse(Universe):
    """A universe given by an explicit set of computations.

    Used for hand-built examples (e.g. Figure 3-1) where no protocol
    exists: the given configurations are prefix-closed along the supplied
    linearizations and indexed exactly like an explored universe.
    """

    def __init__(self, configurations: Iterable[Configuration]) -> None:
        # Deliberately does not call super().__init__: there is no protocol.
        closure: list[Configuration] = []
        seen: set[Configuration] = set()
        processes: set[ProcessId] = set()
        for configuration in configurations:
            for cut in _consistent_cuts(configuration):
                if cut not in seen:
                    seen.add(cut)
                    closure.append(cut)
            processes.update(configuration.processes)
        closure.sort(key=len)
        self._protocol = None  # type: ignore[assignment]
        self._max_events = None
        self._configurations = closure
        self._ids_by_hash = {}
        for index, configuration in enumerate(closure):
            content_hash = hash(configuration)
            entry = self._ids_by_hash.get(content_hash)
            if entry is None:
                self._ids_by_hash[content_hash] = index
            elif type(entry) is int:
                self._ids_by_hash[content_hash] = [entry, index]
            else:
                entry.append(index)
        self._complete = True
        self._init_relation_caches()
        self._processes = frozenset(processes)
        # Successors: one-event extensions within the closure, stored in
        # the same CSR layout as explored universes.  Bucket the
        # candidates by event count so each configuration is only
        # compared against the next layer.
        by_count: dict[int, list[int]] = {}
        for index, configuration in enumerate(closure):
            by_count.setdefault(len(configuration), []).append(index)
        self._succ_offsets = array("q", (0,))
        self._succ_ids = array("q")
        for configuration in closure:
            for candidate in by_count.get(len(configuration) + 1, ()):
                if configuration.is_sub_configuration_of(closure[candidate]):
                    self._succ_ids.append(candidate)
            self._succ_offsets.append(len(self._succ_ids))

    @property
    def protocol(self) -> Protocol:  # type: ignore[override]
        raise UniverseError("an enumerated universe has no protocol")

    @property
    def processes(self) -> frozenset[ProcessId]:  # type: ignore[override]
        return self._processes

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise UniverseError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set
