"""Exhaustive enumeration of a protocol's system computations.

A :class:`Universe` is the set of all reachable configurations (canonical
``[D]``-classes of system computations) of a protocol, up to optional
bounds.  It is *the* quantification domain for everything in the theory:

* ``x [P] y`` quantifies over projections — answered by an index from
  P-projections to configurations;
* composed relations ``x [P1 … Pn] z`` existentially quantify over
  intermediate computations — answered by breadth-first search through
  isomorphism classes;
* ``(P knows b) at x`` universally quantifies over the ``[P]``-class of
  ``x`` — answered by scanning the indexed class.

When exploration terminates without hitting a bound the universe is
*complete* and every quantifier is exact (the protocols shipped in
:mod:`repro.protocols` are designed to have finite computation spaces).
When a bound is hit the universe is a sound under-approximation and
:attr:`Universe.is_complete` is ``False``; theorem checkers refuse
incomplete universes unless explicitly told otherwise.

Every configuration receives a *dense integer id* (its BFS discovery
index).  Successor lists are stored as id arrays and projection indexes
map each ``[P]``-projection key to an **int bitmask** over ids, so set
algebra over the universe (knowledge extensions, class containment,
fixpoints) runs as single bitwise operations on Python ints — see
PERFORMANCE.md for the architecture.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterable, Iterator, Sequence

from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.errors import UniverseError
from repro.core.events import Event, ReceiveEvent, SendEvent
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.universe.protocol import Protocol

ProjectionKey = tuple
"""Canonical key identifying a ``[P]``-class (see Configuration.projection)."""


_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)
"""Set-bit offsets per byte value, for O(bytes) mask iteration."""


def iter_bit_ids(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, ascending (dense config ids).

    Walks the mask's little-endian bytes against a 256-entry offset
    table: isolating bits with ``mask & -mask`` would copy the whole
    big-int per set bit, which is quadratic on the dense masks the
    composed-relation pipelines produce.
    """
    if not mask:
        return
    byte_bits = _BYTE_BITS
    offset = 0
    for byte in mask.to_bytes((mask.bit_length() + 7) >> 3, "little"):
        if byte:
            for bit in byte_bits[byte]:
                yield offset + bit
        offset += 8


_DENSE_MASK_WORD_BUDGET = 1 << 21
"""Dense partition tables cache one big-int mask per class; a table whose
cached masks would exceed this many 64-bit words (16 MiB) stores member
id-arrays instead and materialises masks on demand.  Highly fragmented
partitions — e.g. the all-singleton ``[D]``-classes, where per-class masks
cost ``O(classes × n/64)`` words — take the sparse representation long
before coarse partitions do."""

_COMPOSE_MEMO_LIMIT = 8192
"""Cap on memoised class-combination masks per partition table."""


class PartitionTable:
    """The ``[P]``-partition of a universe on dense configuration ids.

    One table answers every class-level question the isomorphism engine
    asks:

    * ``class_of[config_id]`` — the class index of a configuration;
    * ``members[k]`` — the ids of class ``k``, ascending;
    * ``class_mask(k)`` / ``masks()`` — classes as int bitmasks;
    * ``compose(mask)`` — the closure of a mask under ``[P]`` in one
      pass (the primitive behind ``[P1 … Pn]`` composition);
    * ``contained_classes_mask(body)`` — the union of classes wholly
      inside ``body`` (the modal step of ``knows``).

    Dense tables cache all class masks; *sparse* tables (fragmented
    partitions where per-class masks would be quadratic in memory) keep
    only the id arrays and materialise masks transiently.
    """

    __slots__ = (
        "size",
        "num_classes",
        "class_of",
        "members",
        "key_to_class",
        "sparse",
        "_masks",
        "_compose_memo",
    )

    def __init__(
        self,
        size: int,
        buckets: dict[ProjectionKey, list[int]],
        sparse: bool | None = None,
    ) -> None:
        self.size = size
        self.num_classes = len(buckets)
        self.key_to_class: dict[ProjectionKey, int] = {}
        class_of = array("i", bytes(4 * size))
        members: list[array] = []
        for index, (key, ids) in enumerate(buckets.items()):
            self.key_to_class[key] = index
            row = array("i", ids)
            members.append(row)
            for config_id in ids:
                class_of[config_id] = index
        self.class_of = class_of
        self.members = tuple(members)
        if sparse is None:
            words = (size + 63) >> 6
            sparse = self.num_classes * words > _DENSE_MASK_WORD_BUDGET
        self.sparse = sparse
        self._masks: list[int] | None = None
        self._compose_memo: dict[tuple[int, ...], int] = {}

    # -- mask materialisation ------------------------------------------
    def _mask_of_ids(self, ids: Sequence[int]) -> int:
        if len(ids) == 1:
            return 1 << ids[0]
        bits = bytearray(((ids[-1] if ids else 0) >> 3) + 1)
        for config_id in ids:
            bits[config_id >> 3] |= 1 << (config_id & 7)
        return int.from_bytes(bits, "little")

    def _dense_masks(self) -> list[int]:
        masks = self._masks
        if masks is None:
            masks = [self._mask_of_ids(ids) for ids in self.members]
            self._masks = masks
        return masks

    def class_mask(self, index: int) -> int:
        """The bitmask of class ``index`` (transient when sparse)."""
        if self.sparse:
            return self._mask_of_ids(self.members[index])
        return self._dense_masks()[index]

    def masks(self) -> tuple[int, ...]:
        """All class masks, in class-index order.

        Dense tables return a cached tuple; sparse tables materialise a
        fresh one per call — prefer :attr:`class_of`/:attr:`members` or
        :meth:`compose` on fragmented partitions.
        """
        if self.sparse:
            return tuple(self._mask_of_ids(ids) for ids in self.members)
        return tuple(self._dense_masks())

    # -- relational algebra --------------------------------------------
    def compose(self, mask: int) -> int:
        """Close ``mask`` under ``[P]``: the union of the classes of its
        members, each class unioned exactly once."""
        class_of = self.class_of
        hit = bytearray(self.num_classes)
        touched: list[int] = []
        for config_id in iter_bit_ids(mask):
            index = class_of[config_id]
            if not hit[index]:
                hit[index] = 1
                touched.append(index)
        touched.sort()
        return self._union_of(tuple(touched))

    def classes_mask(self, indices: Iterable[int]) -> int:
        """Union mask of the given classes (memoised per combination).

        Composed relations repeatedly materialise the same unions of
        final-partition classes; the memo makes each distinct combination
        cost its ORs once.
        """
        return self._union_of(tuple(sorted(set(indices))))

    def _union_of(self, key: tuple[int, ...]) -> int:
        if len(key) == 1:
            return self.class_mask(key[0])
        if self.sparse:
            bits = bytearray((self.size >> 3) + 1)
            for index in key:
                for config_id in self.members[index]:
                    bits[config_id >> 3] |= 1 << (config_id & 7)
            return int.from_bytes(bits, "little")
        memo = self._compose_memo
        result = memo.get(key)
        if result is None:
            masks = self._dense_masks()
            result = 0
            for index in key:
                result |= masks[index]
            if len(memo) < _COMPOSE_MEMO_LIMIT:
                memo[key] = result
        return result

    def contained_classes_mask(self, body: int) -> int:
        """Union of the classes wholly contained in ``body``.

        This is the modal step of ``knows``: a class is kept iff every
        member satisfies the body.
        """
        if self.sparse:
            # Index the body's bytes directly: shifting the big-int per
            # member would copy it once per bit tested.
            body_bytes = body.to_bytes((self.size >> 3) + 1, "little")
            bits = bytearray((self.size >> 3) + 1)
            for ids in self.members:
                if all(
                    body_bytes[config_id >> 3] >> (config_id & 7) & 1
                    for config_id in ids
                ):
                    for config_id in ids:
                        bits[config_id >> 3] |= 1 << (config_id & 7)
            return int.from_bytes(bits, "little")
        satisfied = 0
        for class_mask in self._dense_masks():
            if class_mask & body == class_mask:
                satisfied |= class_mask
        return satisfied


class Universe:
    """All reachable configurations of a protocol, with isomorphism indexes.

    Parameters
    ----------
    protocol:
        The protocol to explore.
    max_events:
        Stop extending configurations that already have this many events
        (``None`` = unbounded; the protocol must then be finite).
    max_configurations:
        Abort exploration after this many configurations (safety valve).
    """

    def __init__(
        self,
        protocol: Protocol,
        max_events: int | None = None,
        max_configurations: int | None = 1_000_000,
    ) -> None:
        self._protocol = protocol
        self._max_events = max_events
        self._configurations: list[Configuration] = []
        self._config_ids: dict[Configuration, int] = {}
        self._successor_ids: list[list[int]] = []
        self._complete = True
        self._partition_tables: dict[frozenset[ProcessId], PartitionTable] = {}
        self._adjacency: dict[
            tuple[frozenset[ProcessId], frozenset[ProcessId]],
            tuple[tuple[int, ...], ...],
        ] = {}
        self._explore(max_configurations)

    def _explore(self, max_configurations: int | None) -> None:
        configurations = self._configurations
        config_ids = self._config_ids
        successor_ids = self._successor_ids
        protocol = self._protocol
        max_events = self._max_events

        config_ids[EMPTY_CONFIGURATION] = 0
        configurations.append(EMPTY_CONFIGURATION)
        successor_ids.append([])
        # extend() returns the canonical interned instance, so ids can be
        # resolved by object identity during the hot loop; the
        # content-keyed dict stays authoritative for public lookups.
        ids_by_identity: dict[int, int] = {id(EMPTY_CONFIGURATION): 0}
        cursor = 0
        while cursor < len(configurations):
            current = configurations[cursor]
            row = successor_ids[cursor]
            cursor += 1
            if max_events is not None and len(current) >= max_events:
                if protocol.enabled_events(current):
                    self._complete = False
                continue
            for event in protocol.enabled_events(current):
                extended = current.extend(event)
                extended_id = ids_by_identity.get(id(extended))
                if extended_id is None:
                    extended_id = len(configurations)
                    config_ids[extended] = extended_id
                    ids_by_identity[id(extended)] = extended_id
                    configurations.append(extended)
                    successor_ids.append([])
                    if (
                        max_configurations is not None
                        and len(configurations) > max_configurations
                    ):
                        raise UniverseError(
                            f"exploration exceeded {max_configurations} "
                            "configurations; raise the bound or shrink the protocol"
                        )
                row.append(extended_id)

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The paper's ``D``."""
        return self._protocol.processes

    @property
    def is_complete(self) -> bool:
        """True iff no exploration bound truncated the computation space."""
        return self._complete

    @property
    def configurations(self) -> Sequence[Configuration]:
        """All reachable configurations, in BFS order (shortest first)."""
        return tuple(self._configurations)

    def __len__(self) -> int:
        return len(self._configurations)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._config_ids

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configurations)

    def require(self, configuration: Configuration) -> Configuration:
        """Return ``configuration`` if it belongs to the universe, else raise."""
        if configuration not in self._config_ids:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        return configuration

    def successors(self, configuration: Configuration) -> Sequence[Configuration]:
        """One-event extensions of ``configuration`` within the universe."""
        index = self._config_ids.get(configuration)
        if index is None:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        configurations = self._configurations
        return tuple(
            configurations[successor] for successor in self._successor_ids[index]
        )

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        return self._protocol.complement(processes)

    # ------------------------------------------------------------------
    # Dense-id / bitmask machinery
    # ------------------------------------------------------------------
    def config_id(self, configuration: Configuration) -> int:
        """The dense id (BFS discovery index) of ``configuration``."""
        index = self._config_ids.get(configuration)
        if index is None:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        return index

    def configuration_of_id(self, index: int) -> Configuration:
        """The configuration with dense id ``index``."""
        return self._configurations[index]

    @property
    def full_mask(self) -> int:
        """Bitmask with one set bit per configuration of the universe."""
        return (1 << len(self._configurations)) - 1

    def configurations_in_mask(self, mask: int) -> tuple[Configuration, ...]:
        """The configurations whose ids are set in ``mask``, in id order."""
        configurations = self._configurations
        return tuple(configurations[index] for index in iter_bit_ids(mask))

    # ------------------------------------------------------------------
    # Isomorphism machinery
    # ------------------------------------------------------------------
    def partition_table(self, processes: ProcessSetLike) -> PartitionTable:
        """The ``[P]``-partition of the universe as a :class:`PartitionTable`.

        Tables are computed once per process set and cached; they are the
        engine behind ``iso_class``, composed-relation pipelines, the
        property checkers, and the knowledge evaluator.
        """
        p_set = as_process_set(processes)
        table = self._partition_tables.get(p_set)
        if table is None:
            buckets: dict[ProjectionKey, list[int]] = {}
            if len(p_set) == 1:
                # Single-process classes are keyed by the history tuple
                # itself — no projection tuple to build.  This is the hot
                # shape: the common-knowledge fixpoint and most ``knows``
                # queries partition by singletons.
                (process,) = p_set
                for config_id, configuration in enumerate(self._configurations):
                    key = configuration._histories.get(process, ())
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [config_id]
                    else:
                        bucket.append(config_id)
            else:
                for config_id, configuration in enumerate(self._configurations):
                    key = configuration.projection(p_set)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [config_id]
                    else:
                        bucket.append(config_id)
            table = PartitionTable(len(self._configurations), buckets)
            self._partition_tables[p_set] = table
        return table

    def class_masks(self, processes: ProcessSetLike) -> tuple[int, ...]:
        """One bitmask per ``[P]``-class of the universe.

        The masks partition :attr:`full_mask`; order is by first
        discovery (BFS order of the class representative).  On sparse
        (fragmented) partitions this materialises transiently — prefer
        :meth:`partition_table` there.
        """
        return self.partition_table(processes).masks()

    def compose_masks(self, mask: int, processes: ProcessSetLike) -> int:
        """Close ``mask`` under ``[P]`` in one pass.

        Returns the union of the ``[P]``-classes of the configurations in
        ``mask`` — the frontier step of ``[P1 … Pn]`` composition.  Each
        touched class is unioned exactly once.
        """
        return self.partition_table(processes).compose(mask)

    def class_adjacency(
        self, first: ProcessSetLike, second: ProcessSetLike
    ) -> tuple[tuple[int, ...], ...]:
        """For each ``[P]``-class, the ``[Q]``-classes sharing a member.

        Entry ``k`` lists, ascending, the class indices of
        ``partition_table(second)`` reachable from class ``k`` of
        ``partition_table(first)`` in one ``[Q]`` step.  This is the class
        graph along which composed relations propagate — one O(n) pass,
        cached per ordered pair.
        """
        p_set = as_process_set(first)
        q_set = as_process_set(second)
        cached = self._adjacency.get((p_set, q_set))
        if cached is None:
            first_of = self.partition_table(p_set).class_of
            second_of = self.partition_table(q_set).class_of
            reachable: list[set[int]] = [
                set() for _ in range(self.partition_table(p_set).num_classes)
            ]
            for config_id in range(len(self._configurations)):
                reachable[first_of[config_id]].add(second_of[config_id])
            cached = tuple(tuple(sorted(entry)) for entry in reachable)
            self._adjacency[(p_set, q_set)] = cached
        return cached

    def iso_class_mask(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Bitmask of the ``[P]``-class of ``configuration``."""
        self.require(configuration)
        p_set = as_process_set(processes)
        table = self.partition_table(p_set)
        if len(p_set) == 1:
            (process,) = p_set
            key: ProjectionKey = configuration.history(process)
        else:
            key = configuration.projection(p_set)
        return table.class_mask(table.key_to_class[key])

    def iso_class_index(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Class index of ``configuration`` in ``partition_table(processes)``."""
        return self.partition_table(processes).class_of[
            self.config_id(configuration)
        ]

    def iso_class(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> Sequence[Configuration]:
        """All universe configurations ``y`` with ``configuration [P] y``."""
        return self.configurations_in_mask(
            self.iso_class_mask(configuration, processes)
        )

    def iso_class_size(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Size of the ``[P]``-class of ``configuration``."""
        return self.iso_class_mask(configuration, processes).bit_count()

    def sub_configuration_pairs(
        self,
    ) -> Iterator[tuple[Configuration, Configuration]]:
        """All ordered pairs ``(x, z)`` with ``x`` a sub-configuration of
        ``z`` — the configuration-level analogue of the paper's ``x <= z``.

        Quadratic in the universe size; intended for exhaustive theorem
        checking on small universes.  Candidates are bucketed by event
        count so ``x`` is only ever compared against configurations with
        at least as many events.
        """
        by_count: dict[int, list[Configuration]] = {}
        for configuration in self._configurations:
            by_count.setdefault(len(configuration), []).append(configuration)
        counts = sorted(by_count)
        for smaller in self._configurations:
            threshold = len(smaller)
            for count in counts:
                if count < threshold:
                    continue
                for larger in by_count[count]:
                    if smaller.is_sub_configuration_of(larger):
                        yield smaller, larger

    def events(self) -> frozenset[Event]:
        """Every event occurring anywhere in the universe."""
        found: set[Event] = set()
        for configuration in self._configurations:
            found.update(configuration.events())
        return frozenset(found)

    @property
    def active_processes(self) -> frozenset[ProcessId]:
        """Processes with at least one event somewhere in the universe."""
        cached = getattr(self, "_active_processes", None)
        if cached is None:
            active: set[ProcessId] = set()
            for configuration in self._configurations:
                active.update(configuration._histories)
            cached = frozenset(active)
            self._active_processes = cached
        return cached


def _consistent_cuts_exhaustive(
    configuration: Configuration,
) -> Iterator[Configuration]:
    """Reference enumeration over the full prefix-length product.

    Kept as the fallback for segments whose causal order is cyclic (no
    linearization), where the pruned forward search below is incomplete.
    """
    import itertools

    processes = sorted(configuration.processes)
    ranges = [range(len(configuration.history(process)) + 1) for process in processes]
    for cut_lengths in itertools.product(*ranges):
        histories = {
            process: configuration.history(process)[:length]
            for process, length in zip(processes, cut_lengths)
        }
        candidate = Configuration(histories)
        if candidate.received_messages <= candidate.sent_messages:
            yield candidate


def _consistent_cuts(configuration: Configuration) -> Iterator[Configuration]:
    """All message-consistent combinations of per-process history prefixes.

    System computations are prefix closed and closed under removing
    causally-maximal events, so every consistent cut of a computation is
    itself a computation of the same system.

    Implemented as a prefix-pruned forward search: starting from the
    empty cut, a cut is extended one event at a time, receives only when
    their message is already sent within the cut.  For configurations
    with an acyclic causal order this reaches exactly the cuts whose
    received messages are a subset of their sent messages, while never
    materialising the (exponentially larger) full product of prefix
    lengths.  Cyclic inputs fall back to the exhaustive reference.
    """
    processes = sorted(configuration.processes)
    if not processes:
        yield configuration
        return

    from repro.causality.order import CausalOrder

    if not CausalOrder(configuration).is_acyclic():
        yield from _consistent_cuts_exhaustive(configuration)
        return

    histories = [configuration.history(process) for process in processes]
    start = (0,) * len(processes)
    sent_at: dict[tuple[int, ...], frozenset] = {start: frozenset()}
    queue: deque[tuple[int, ...]] = deque([start])
    cuts: list[tuple[int, ...]] = [start]
    while queue:
        cut = queue.popleft()
        sent = sent_at[cut]
        for position, history in enumerate(histories):
            length = cut[position]
            if length >= len(history):
                continue
            event = history[length]
            if isinstance(event, ReceiveEvent) and event.message not in sent:
                continue
            extended = cut[:position] + (length + 1,) + cut[position + 1 :]
            if extended in sent_at:
                continue
            sent_at[extended] = (
                sent | {event.message} if isinstance(event, SendEvent) else sent
            )
            queue.append(extended)
            cuts.append(extended)
    for cut in cuts:
        yield Configuration(
            {
                process: histories[position][: cut[position]]
                for position, process in enumerate(processes)
                if cut[position]
            }
        )


class EnumeratedUniverse(Universe):
    """A universe given by an explicit set of computations.

    Used for hand-built examples (e.g. Figure 3-1) where no protocol
    exists: the given configurations are prefix-closed along the supplied
    linearizations and indexed exactly like an explored universe.
    """

    def __init__(self, configurations: Iterable[Configuration]) -> None:
        # Deliberately does not call super().__init__: there is no protocol.
        closure: list[Configuration] = []
        seen: set[Configuration] = set()
        processes: set[ProcessId] = set()
        for configuration in configurations:
            for cut in _consistent_cuts(configuration):
                if cut not in seen:
                    seen.add(cut)
                    closure.append(cut)
            processes.update(configuration.processes)
        closure.sort(key=len)
        self._protocol = None  # type: ignore[assignment]
        self._max_events = None
        self._configurations = closure
        self._config_ids = {
            configuration: index for index, configuration in enumerate(closure)
        }
        self._complete = True
        self._partition_tables = {}
        self._adjacency = {}
        self._processes = frozenset(processes)
        # Successors: one-event extensions within the closure.  Bucket the
        # candidates by event count so each configuration is only compared
        # against the next layer.
        by_count: dict[int, list[int]] = {}
        for index, configuration in enumerate(closure):
            by_count.setdefault(len(configuration), []).append(index)
        self._successor_ids = [
            [
                candidate
                for candidate in by_count.get(len(configuration) + 1, ())
                if configuration.is_sub_configuration_of(closure[candidate])
            ]
            for configuration in closure
        ]

    @property
    def protocol(self) -> Protocol:  # type: ignore[override]
        raise UniverseError("an enumerated universe has no protocol")

    @property
    def processes(self) -> frozenset[ProcessId]:  # type: ignore[override]
        return self._processes

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise UniverseError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set
