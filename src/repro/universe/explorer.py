"""Exhaustive enumeration of a protocol's system computations.

A :class:`Universe` is the set of all reachable configurations (canonical
``[D]``-classes of system computations) of a protocol, up to optional
bounds.  It is *the* quantification domain for everything in the theory:

* ``x [P] y`` quantifies over projections — answered by an index from
  P-projections to configurations;
* composed relations ``x [P1 … Pn] z`` existentially quantify over
  intermediate computations — answered by breadth-first search through
  isomorphism classes;
* ``(P knows b) at x`` universally quantifies over the ``[P]``-class of
  ``x`` — answered by scanning the indexed class.

When exploration terminates without hitting a bound the universe is
*complete* and every quantifier is exact (the protocols shipped in
:mod:`repro.protocols` are designed to have finite computation spaces).
When a bound is hit the universe is a sound under-approximation and
:attr:`Universe.is_complete` is ``False``; theorem checkers refuse
incomplete universes unless explicitly told otherwise.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence

from repro.core.configuration import EMPTY_CONFIGURATION, Configuration
from repro.core.errors import UniverseError
from repro.core.events import Event
from repro.core.process import ProcessId, ProcessSetLike, as_process_set
from repro.universe.protocol import Protocol

ProjectionKey = tuple
"""Canonical key identifying a ``[P]``-class (see Configuration.projection)."""


class Universe:
    """All reachable configurations of a protocol, with isomorphism indexes.

    Parameters
    ----------
    protocol:
        The protocol to explore.
    max_events:
        Stop extending configurations that already have this many events
        (``None`` = unbounded; the protocol must then be finite).
    max_configurations:
        Abort exploration after this many configurations (safety valve).
    """

    def __init__(
        self,
        protocol: Protocol,
        max_events: int | None = None,
        max_configurations: int | None = 1_000_000,
    ) -> None:
        self._protocol = protocol
        self._max_events = max_events
        self._configurations: list[Configuration] = []
        self._successors: dict[Configuration, list[Configuration]] = {}
        self._complete = True
        self._projection_indexes: dict[
            frozenset[ProcessId], dict[ProjectionKey, list[Configuration]]
        ] = {}
        self._explore(max_configurations)

    def _explore(self, max_configurations: int | None) -> None:
        seen: set[Configuration] = {EMPTY_CONFIGURATION}
        queue: deque[Configuration] = deque([EMPTY_CONFIGURATION])
        self._configurations.append(EMPTY_CONFIGURATION)
        while queue:
            current = queue.popleft()
            if self._max_events is not None and len(current) >= self._max_events:
                if self._protocol.enabled_events(current):
                    self._complete = False
                self._successors[current] = []
                continue
            successors: list[Configuration] = []
            for event in self._protocol.enabled_events(current):
                extended = current.extend(event)
                successors.append(extended)
                if extended not in seen:
                    seen.add(extended)
                    self._configurations.append(extended)
                    queue.append(extended)
                    if (
                        max_configurations is not None
                        and len(self._configurations) > max_configurations
                    ):
                        raise UniverseError(
                            f"exploration exceeded {max_configurations} "
                            "configurations; raise the bound or shrink the protocol"
                        )
            self._successors[current] = successors

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def processes(self) -> frozenset[ProcessId]:
        """The paper's ``D``."""
        return self._protocol.processes

    @property
    def is_complete(self) -> bool:
        """True iff no exploration bound truncated the computation space."""
        return self._complete

    @property
    def configurations(self) -> Sequence[Configuration]:
        """All reachable configurations, in BFS order (shortest first)."""
        return tuple(self._configurations)

    def __len__(self) -> int:
        return len(self._configurations)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._successors

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configurations)

    def require(self, configuration: Configuration) -> Configuration:
        """Return ``configuration`` if it belongs to the universe, else raise."""
        if configuration not in self:
            raise UniverseError(
                f"{configuration!r} is not a computation of this universe"
            )
        return configuration

    def successors(self, configuration: Configuration) -> Sequence[Configuration]:
        """One-event extensions of ``configuration`` within the universe."""
        self.require(configuration)
        return tuple(self._successors[configuration])

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        """``P̄ = D - P``."""
        return self._protocol.complement(processes)

    # ------------------------------------------------------------------
    # Isomorphism machinery
    # ------------------------------------------------------------------
    def _index_for(
        self, processes: frozenset[ProcessId]
    ) -> dict[ProjectionKey, list[Configuration]]:
        index = self._projection_indexes.get(processes)
        if index is None:
            index = {}
            for configuration in self._configurations:
                key = configuration.projection(processes)
                index.setdefault(key, []).append(configuration)
            self._projection_indexes[processes] = index
        return index

    def iso_class(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> Sequence[Configuration]:
        """All universe configurations ``y`` with ``configuration [P] y``."""
        self.require(configuration)
        p_set = as_process_set(processes)
        index = self._index_for(p_set)
        return tuple(index[configuration.projection(p_set)])

    def iso_class_size(
        self, configuration: Configuration, processes: ProcessSetLike
    ) -> int:
        """Size of the ``[P]``-class of ``configuration``."""
        return len(self.iso_class(configuration, processes))

    def sub_configuration_pairs(
        self,
    ) -> Iterator[tuple[Configuration, Configuration]]:
        """All ordered pairs ``(x, z)`` with ``x`` a sub-configuration of
        ``z`` — the configuration-level analogue of the paper's ``x <= z``.

        Quadratic in the universe size; intended for exhaustive theorem
        checking on small universes.
        """
        for smaller in self._configurations:
            for larger in self._configurations:
                if len(smaller) <= len(larger) and smaller.is_sub_configuration_of(
                    larger
                ):
                    yield smaller, larger

    def events(self) -> frozenset[Event]:
        """Every event occurring anywhere in the universe."""
        found: set[Event] = set()
        for configuration in self._configurations:
            found.update(configuration.events())
        return frozenset(found)


def _consistent_cuts(configuration: Configuration) -> Iterator[Configuration]:
    """All message-consistent combinations of per-process history prefixes.

    System computations are prefix closed and closed under removing
    causally-maximal events, so every consistent cut of a computation is
    itself a computation of the same system.
    """
    import itertools

    processes = sorted(configuration.processes)
    ranges = [range(len(configuration.history(process)) + 1) for process in processes]
    for cut_lengths in itertools.product(*ranges):
        histories = {
            process: configuration.history(process)[:length]
            for process, length in zip(processes, cut_lengths)
        }
        candidate = Configuration(histories)
        if candidate.received_messages <= candidate.sent_messages:
            yield candidate


class EnumeratedUniverse(Universe):
    """A universe given by an explicit set of computations.

    Used for hand-built examples (e.g. Figure 3-1) where no protocol
    exists: the given configurations are prefix-closed along the supplied
    linearizations and indexed exactly like an explored universe.
    """

    def __init__(self, configurations: Iterable[Configuration]) -> None:
        # Deliberately does not call super().__init__: there is no protocol.
        closure: list[Configuration] = []
        seen: set[Configuration] = set()
        processes: set[ProcessId] = set()
        for configuration in configurations:
            for cut in _consistent_cuts(configuration):
                if cut not in seen:
                    seen.add(cut)
                    closure.append(cut)
            processes.update(configuration.processes)
        closure.sort(key=len)
        self._protocol = None  # type: ignore[assignment]
        self._max_events = None
        self._configurations = closure
        self._complete = True
        self._projection_indexes = {}
        self._processes = frozenset(processes)
        self._successors = {}
        for configuration in closure:
            self._successors[configuration] = [
                other
                for other in closure
                if len(other) == len(configuration) + 1
                and configuration.is_sub_configuration_of(other)
            ]

    @property
    def protocol(self) -> Protocol:  # type: ignore[override]
        raise UniverseError("an enumerated universe has no protocol")

    @property
    def processes(self) -> frozenset[ProcessId]:  # type: ignore[override]
        return self._processes

    def complement(self, processes: ProcessSetLike) -> frozenset[ProcessId]:
        p_set = as_process_set(processes)
        if not p_set <= self._processes:
            raise UniverseError(
                f"{sorted(p_set)} is not a subset of D = {sorted(self._processes)}"
            )
        return self._processes - p_set
