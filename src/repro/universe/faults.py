"""Deterministic fault injection for the sharded exploration engine.

The paper studies what processes can know in a system whose peers and
messages fail; the sharded engine (:mod:`repro.universe.sharded`) *is*
such a system — K worker processes exchanging batches over pipes.  This
module gives its failure modes a deterministic, testable shape: a
:class:`FaultPlan` is an explicit (or seeded) list of :class:`Fault`
actions, each firing **at most once** at a specific (worker shard, BFS
layer), threaded through ``Universe(..., workers=K, fault_plan=plan)``.

Supported fault kinds, and the recovery path each exercises:

``kill``
    The worker hard-exits (``os._exit``) on receiving the layer's expand
    request — the coordinator sees ``EOFError`` on the pipe and runs the
    crash-failover path (respawn from the replayed discovery stream, or
    fold the shard into the coordinator once the respawn budget is
    spent).
``drop_batch``
    The worker expands the layer but never sends its batch — silence.
    The coordinator's heartbeat timeout fires and the worker is treated
    as hung: terminated and replaced.
``delay_batch``
    The worker sleeps ``seconds`` before sending.  A delay shorter than
    the heartbeat timeout is absorbed (measures pure wait overhead); a
    longer one is indistinguishable from a hang and triggers the same
    timeout failover.
``corrupt_batch``
    The worker flips a byte in its pickled batch *after* computing the
    frame checksum.  The coordinator's CRC verification rejects the
    frame and the worker is replaced — the payload is never unpickled.

Two further kinds target the **checkpoint** layer rather than a worker
(their ``shard`` is the sentinel ``-1``; they work on the kernel engine
too, where there are no workers at all):

``torn_save``
    The saving process hard-exits between the segment append and the
    manifest replace — the archetypal torn write.  The orphan segment is
    discarded (and logged) on the next resume.
``corrupt_segment``
    One byte of the just-committed segment is flipped *after* its CRC
    was recorded.  The next resume detects the mismatch and salvages the
    valid prefix (or raises under ``strict``).
``stall_write``
    The background checkpoint writer sleeps ``seconds`` between the
    segment append and the manifest replace — a deterministic window in
    the exact spot a torn save happens, so the chaos harness can SIGKILL
    the whole process mid-background-write and assert the orphan-discard
    recovery path.

Six **storage fault kinds** (PR 10) target the filesystem underneath
checkpoints and the arena spill tier rather than a worker or the save
protocol.  Like checkpoint kinds they are shard-free (``shard`` is the
``-1`` sentinel; a shard qualifier in the CLI grammar is rejected) and
layer-keyed; they are delivered through the fault-injecting file-ops
shim (:class:`repro.universe.fileops.FaultInjectingFileOps`) that every
checkpoint and spill filesystem call routes through:

``enospc``
    The next write-class operation raises ``OSError(ENOSPC)`` — a
    *permanent* error under the typed retry policy
    (:mod:`repro.universe.retry`), escalating straight to the
    degradation ladder (checkpointing disabled loudly, exploration
    continues).
``eio_write`` / ``eio_read``
    The next write/read operation raises ``OSError(EIO)`` — *transient*:
    the whole durable-write unit re-runs from its buffer, or the read
    is retried and CRC re-verified.
``fsync_fail``
    The next ``fsync`` raises ``OSError(EIO)``; the durable-write unit
    restarts from scratch (never a bare fsync retry, which could
    silently drop dirty pages).
``slow_io``
    The next write-class operation sleeps ``seconds`` first — latency,
    not failure.
``fd_exhaust``
    The next open-class operation raises ``OSError(EMFILE)`` —
    transient descriptor pressure, absorbed by the retry.

Write-targeting storage faults arm at the BFS layer boundary covering
``layer`` (same clock as checkpoint faults); ``eio_read`` arms at
engine start so it can land on the resume read path.

Faults are delivered to a worker at spawn time as plain tuples (no
module state crosses the fork), so a plan is reproducible regardless of
scheduling.  Because shard expansion is a pure function of the merged
discovery stream, every recovery path re-derives bit-identical batches;
the fault-injection matrix in ``tests/test_universe_faults.py`` asserts
the recovered universe equals the fault-free one, id for id.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import UniverseError

WORKER_FAULT_KINDS = ("kill", "drop_batch", "delay_batch", "corrupt_batch")
CHECKPOINT_FAULT_KINDS = ("torn_save", "corrupt_segment", "stall_write")
STORAGE_FAULT_KINDS = (
    "enospc",
    "eio_read",
    "eio_write",
    "fsync_fail",
    "slow_io",
    "fd_exhaust",
)
FAULT_KINDS = WORKER_FAULT_KINDS + CHECKPOINT_FAULT_KINDS + STORAGE_FAULT_KINDS


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``kind`` fires on worker ``shard`` when it
    handles the expand request for BFS layer ``layer`` (0-based index of
    the coordinator's layer exchanges).  ``seconds`` is only meaningful
    for ``delay_batch`` and ``stall_write``."""

    kind: str
    shard: int
    layer: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise UniverseError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.is_checkpoint or self.is_storage:
            # Checkpoint and storage faults target the saving process /
            # the filesystem, not a worker; normalise the shard to the
            # -1 sentinel.
            object.__setattr__(self, "shard", -1)
        elif self.shard < 0:
            raise UniverseError(f"fault shard must be >= 0, got {self.shard}")
        if self.layer < 0:
            raise UniverseError(f"fault layer must be >= 0, got {self.layer}")
        if self.seconds < 0:
            raise UniverseError(
                f"fault delay must be >= 0, got {self.seconds}"
            )

    @property
    def is_checkpoint(self) -> bool:
        """True for faults that fire in the checkpoint writer rather
        than in a worker."""
        return self.kind in CHECKPOINT_FAULT_KINDS

    @property
    def is_storage(self) -> bool:
        """True for faults delivered through the file-ops shim (they
        fire on the next matching filesystem operation)."""
        return self.kind in STORAGE_FAULT_KINDS

    def as_wire(self) -> tuple:
        """The fault as a plain tuple for the worker spawn arguments."""
        return (self.kind, self.layer, self.seconds)

    def spec(self) -> str:
        """The canonical CLI spelling, ``kind[:shard]@layer[~seconds]``
        — the exact inverse of :meth:`FaultPlan.parse` (round-tripped by
        the hypothesis grammar test)."""
        head = self.kind if self.shard < 0 else f"{self.kind}:{self.shard}"
        text = f"{head}@{self.layer}"
        if self.seconds:
            text += f"~{self.seconds!r}"
        return text


class FaultPlan:
    """An explicit, reproducible schedule of injected faults.

    The plan is owned by the coordinator: each fault is handed to the
    matching shard's worker exactly once, at the first spawn whose shard
    index matches — replacement workers do **not** re-arm faults already
    delivered (a killed worker's unfired faults die with it), so every
    fault fires at most once per exploration.
    """

    def __init__(self, faults: tuple[Fault, ...] | list[Fault] = ()) -> None:
        self._faults = tuple(faults)
        for fault in self._faults:
            if not isinstance(fault, Fault):
                raise UniverseError(
                    f"FaultPlan entries must be Fault instances, got "
                    f"{fault!r}"
                )
        self._delivered: set[int] = set()

    # -- construction helpers ------------------------------------------
    @classmethod
    def kill(cls, shard: int, layer: int) -> "FaultPlan":
        """Kill worker ``shard`` when it receives layer ``layer``."""
        return cls((Fault("kill", shard, layer),))

    @classmethod
    def drop_batch(cls, shard: int, layer: int) -> "FaultPlan":
        """Worker ``shard`` silently drops its layer-``layer`` batch."""
        return cls((Fault("drop_batch", shard, layer),))

    @classmethod
    def delay_batch(
        cls, shard: int, layer: int, seconds: float
    ) -> "FaultPlan":
        """Worker ``shard`` delays its layer-``layer`` batch."""
        return cls((Fault("delay_batch", shard, layer, seconds),))

    @classmethod
    def corrupt_batch(cls, shard: int, layer: int) -> "FaultPlan":
        """Worker ``shard`` corrupts its layer-``layer`` batch frame."""
        return cls((Fault("corrupt_batch", shard, layer),))

    @classmethod
    def torn_save(cls, layer: int) -> "FaultPlan":
        """Hard-exit the saving process between segment append and
        manifest replace at the save covering ``layer``."""
        return cls((Fault("torn_save", -1, layer),))

    @classmethod
    def corrupt_segment(cls, layer: int) -> "FaultPlan":
        """Flip a byte of the segment committed at ``layer`` after its
        CRC was recorded."""
        return cls((Fault("corrupt_segment", -1, layer),))

    @classmethod
    def stall_write(cls, layer: int, seconds: float) -> "FaultPlan":
        """Stall the background checkpoint writer for ``seconds``
        between segment append and manifest replace at the save covering
        ``layer`` — the chaos harness's SIGKILL window."""
        return cls((Fault("stall_write", -1, layer, seconds),))

    @classmethod
    def storage(cls, kind: str, layer: int, seconds: float = 0.0) -> "FaultPlan":
        """One storage fault (``enospc``/``eio_read``/``eio_write``/
        ``fsync_fail``/``slow_io``/``fd_exhaust``) armed at the layer
        boundary covering ``layer`` and delivered through the file-ops
        shim."""
        if kind not in STORAGE_FAULT_KINDS:
            raise UniverseError(
                f"unknown storage fault kind {kind!r}; expected one of "
                f"{', '.join(STORAGE_FAULT_KINDS)}"
            )
        return cls((Fault(kind, -1, layer, seconds=seconds),))

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        max_layer: int,
        faults: int = 1,
        kinds: tuple[str, ...] = ("kill",),
    ) -> "FaultPlan":
        """A reproducible random plan: ``faults`` draws of (kind, shard,
        layer) from a :class:`random.Random` seeded with ``seed``.

        ``kinds`` may mix worker and checkpoint kinds; a checkpoint draw
        ignores the shard draw (the rng is still advanced, so the layer
        sequence is stable across kind mixes).
        """
        if workers < 1:
            raise UniverseError(f"workers must be >= 1, got {workers}")
        if max_layer < 0:
            raise UniverseError(f"max_layer must be >= 0, got {max_layer}")
        rng = random.Random(seed)
        drawn = []
        for _ in range(faults):
            kind = rng.choice(kinds)
            shard = rng.randrange(workers)
            layer = rng.randint(0, max_layer)
            seconds = rng.uniform(0.05, 0.2)
            if kind in CHECKPOINT_FAULT_KINDS or kind in STORAGE_FAULT_KINDS:
                shard = -1
            drawn.append(Fault(kind, shard, layer, seconds=seconds))
        return cls(tuple(drawn))

    @classmethod
    def parse(cls, specs) -> "FaultPlan":
        """Build a plan from CLI specs: ``kind[:shard]@layer[~seconds]``.

        Worker kinds require the shard (``kill:0@3``); checkpoint kinds
        forbid it (``torn_save@5``).  ``~seconds`` is the
        ``delay_batch`` delay (``delay_batch:1@2~0.5``).
        """
        faults = []
        for spec in specs:
            text = spec.strip()
            seconds = 0.0
            if "~" in text:
                text, _, tail = text.partition("~")
                try:
                    seconds = float(tail)
                except ValueError:
                    raise UniverseError(
                        f"bad fault spec {spec!r}: delay {tail!r} is not "
                        f"a number"
                    ) from None
            head, sep, layer_text = text.partition("@")
            if not sep or not layer_text.isdigit():
                raise UniverseError(
                    f"bad fault spec {spec!r}: expected "
                    f"kind[:shard]@layer[~seconds]"
                )
            layer = int(layer_text)
            kind, sep, shard_text = head.partition(":")
            if kind in CHECKPOINT_FAULT_KINDS or kind in STORAGE_FAULT_KINDS:
                if sep:
                    category = (
                        "checkpoint"
                        if kind in CHECKPOINT_FAULT_KINDS
                        else "storage"
                    )
                    raise UniverseError(
                        f"bad fault spec {spec!r}: {kind} is a {category} "
                        f"fault and takes no shard"
                    )
                faults.append(Fault(kind, -1, layer, seconds=seconds))
                continue
            if not sep or not shard_text.isdigit():
                raise UniverseError(
                    f"bad fault spec {spec!r}: worker fault {kind!r} "
                    f"needs a shard, e.g. {kind}:0@{layer}"
                )
            faults.append(Fault(kind, int(shard_text), layer, seconds=seconds))
        return cls(tuple(faults))

    # -- coordinator-side delivery -------------------------------------
    @property
    def faults(self) -> tuple[Fault, ...]:
        return self._faults

    @property
    def has_worker_faults(self) -> bool:
        """True if any fault targets a worker (needs the sharded engine)."""
        return any(
            not fault.is_checkpoint and not fault.is_storage
            for fault in self._faults
        )

    @property
    def has_checkpoint_faults(self) -> bool:
        """True if any fault targets the checkpoint writer (needs a
        ``checkpoint`` path)."""
        return any(fault.is_checkpoint for fault in self._faults)

    @property
    def has_storage_faults(self) -> bool:
        """True if any fault is delivered through the file-ops shim
        (needs a ``checkpoint`` path or a ``spill_dir`` to have any
        filesystem calls to land on)."""
        return any(fault.is_storage for fault in self._faults)

    def take_for_shard(self, shard: int) -> list[tuple]:
        """Wire tuples of the not-yet-delivered worker faults for
        ``shard``, marking them delivered.  Called once per worker
        spawn."""
        taken: list[tuple] = []
        for index, fault in enumerate(self._faults):
            if fault.is_checkpoint or fault.is_storage:
                continue
            if fault.shard == shard and index not in self._delivered:
                self._delivered.add(index)
                taken.append(fault.as_wire())
        return taken

    def take_checkpoint_faults(self) -> list[tuple]:
        """``(kind, layer, seconds)`` tuples of the not-yet-delivered
        checkpoint faults, marking them delivered.  Called once per
        checkpoint session (each fires at most once, like worker
        faults)."""
        taken: list[tuple] = []
        for index, fault in enumerate(self._faults):
            if fault.is_checkpoint and index not in self._delivered:
                self._delivered.add(index)
                taken.append((fault.kind, fault.layer, fault.seconds))
        return taken

    def take_storage_faults(self) -> list[tuple]:
        """``(kind, layer, seconds)`` tuples of the not-yet-delivered
        storage faults, marking them delivered.  Called once per
        exploration; the universe arms each on its file-ops shim at the
        matching layer boundary (``eio_read`` at engine start)."""
        taken: list[tuple] = []
        for index, fault in enumerate(self._faults):
            if fault.is_storage and index not in self._delivered:
                self._delivered.add(index)
                taken.append((fault.kind, fault.layer, fault.seconds))
        return taken

    def validate(self, workers: int) -> None:
        """Reject plans naming shards the exploration does not have.
        Checkpoint faults carry no shard and always pass."""
        for fault in self._faults:
            if fault.is_checkpoint or fault.is_storage:
                continue
            if fault.shard >= workers:
                raise UniverseError(
                    f"fault targets shard {fault.shard} but the "
                    f"exploration has only {workers} workers"
                )

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{fault.kind}(@L{fault.layer})"
            if fault.shard < 0
            else f"{fault.kind}(w{fault.shard}@L{fault.layer})"
            for fault in self._faults
        )
        return f"FaultPlan({inner})"


__all__ = [
    "CHECKPOINT_FAULT_KINDS",
    "FAULT_KINDS",
    "STORAGE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "Fault",
    "FaultPlan",
]
