"""Structured recovery events: what the engine did when something broke.

Every degradation or failover path in the exploration stack — worker
respawns, shard folds, RSS-budget spills and truncations, corrupt-tail
salvage, checkpoint degradation, spill fallback — records what it did on
the universe's ``recovery_log``.  Until PR 10 those entries were loose
dicts and every consumer (bench, chaos, the CLI summary) string-matched
its way through them; this module promotes the entry to a frozen
:class:`RecoveryEvent` dataclass with a **monotonic sequence number**,
and the log itself to :class:`RecoveryLog`, a thread-safe append-only
container (the background checkpoint writer and the exploration thread
both record).

``RecoveryEvent`` stays **dict-compatible**: ``event["kind"]``,
``event.get("shard")`` and the historical ``event["action"]`` spelling
(an alias of ``rung``) all keep working, so existing assertions and
operator scripts survive the promotion — but new code should use the
attributes.

Vocabulary (see RELIABILITY.md for the full catalogue):

``kind``
    What failed or crossed a threshold — e.g. ``spawn``, ``worker``,
    ``rss_budget``, ``corrupt_segment``, ``torn_save``,
    ``checkpoint_degraded``, ``spill_degraded``, ``storage_retry``,
    ``orphan_spill``.
``rung``
    The ladder rung taken in response — e.g. ``retry``, ``respawn``,
    ``fold``, ``spill``, ``truncate``, ``salvage-truncate``,
    ``discard-orphan``, ``disable-checkpointing``, ``sealed-in-ram``,
    ``unlink``.
``layer`` / ``shard``
    Where, when known (``None`` otherwise; checkpoint-side events have
    no shard).
``seq``
    Position in this exploration's log — strictly increasing, so
    "every rung taken, in order" is a list comparison, not a grep.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields

_ALIASES = {"action": "rung"}


@dataclass(frozen=True)
class RecoveryEvent:
    """One structured entry on an exploration's ``recovery_log``."""

    kind: str
    rung: str
    layer: int | None = None
    shard: int | None = None
    detail: str = ""
    seq: int = 0

    @property
    def action(self) -> str:
        """Historical spelling of :attr:`rung` (pre-PR 10 dict key)."""
        return self.rung

    # -- dict compatibility -------------------------------------------
    def __getitem__(self, key: str):
        name = _ALIASES.get(key, key)
        try:
            return getattr(self, name)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def keys(self):
        return [f.name for f in fields(self)] + list(_ALIASES)

    def as_dict(self) -> dict:
        """A plain-dict view (for ``--json`` output and logging)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class RecoveryLog:
    """Thread-safe, append-only sequence of :class:`RecoveryEvent`.

    The exploration thread, the background checkpoint writer, and the
    sharded coordinator all record onto the same log; the lock makes the
    sequence numbers genuinely monotonic across them.
    """

    _events: list[RecoveryEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(
        self,
        kind: str,
        rung: str,
        *,
        layer: int | None = None,
        shard: int | None = None,
        detail: str = "",
    ) -> RecoveryEvent:
        with self._lock:
            event = RecoveryEvent(
                kind=kind,
                rung=rung,
                layer=layer,
                shard=shard,
                detail=detail,
                seq=len(self._events),
            )
            self._events.append(event)
            return event

    def append(self, entry) -> RecoveryEvent:
        """Legacy dict append — translated into a :class:`RecoveryEvent`.

        Accepts the pre-PR 10 loose-dict shape (``action`` meaning
        ``rung``); kept so out-of-tree producers keep working.
        """
        if isinstance(entry, RecoveryEvent):
            with self._lock:
                event = RecoveryEvent(
                    kind=entry.kind,
                    rung=entry.rung,
                    layer=entry.layer,
                    shard=entry.shard,
                    detail=entry.detail,
                    seq=len(self._events),
                )
                self._events.append(event)
                return event
        return self.record(
            entry["kind"],
            entry.get("rung", entry.get("action", "")),
            layer=entry.get("layer"),
            shard=entry.get("shard"),
            detail=entry.get("detail", ""),
        )

    def snapshot(self) -> tuple[RecoveryEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def __iter__(self):
        return iter(self.snapshot())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __getitem__(self, index):
        with self._lock:
            return self._events[index]

    def __bool__(self) -> bool:
        return len(self) > 0


__all__ = ["RecoveryEvent", "RecoveryLog"]
