"""Diffusing computations: the "underlying computation" of §5(c).

The paper's termination-detection lower bound speaks of an *underlying
computation* whose processes send messages and fall idle, overlaid by a
detection algorithm whose *overhead messages* must, in the worst case, be
at least as numerous as the underlying ones.

A :class:`TerminationWorkload` is a finite script: for each process, a
list of *activations*; the ``j``-th activation of a process runs when its
``j``-th work message arrives (the root's first activation runs at start).
An activation sends work messages to its targets, one by one, and then
the process falls idle (an internal ``idle`` event).  Because every work
message is eventually delivered and each delivery triggers exactly one
activation, the total number of work messages is a deterministic property
of the script, independent of scheduling —
:meth:`TerminationWorkload.total_work_messages`.

:class:`DiffusingComputationProtocol` executes a workload with no
detection overlay; the detectors in
:mod:`repro.protocols.dijkstra_scholten` and
:mod:`repro.protocols.polling_detector` build on the same state machine.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.formula import Atom
from repro.universe.protocol import History, Protocol

WORK_TAG = "work"
IDLE_TAG = "idle"


@dataclass(frozen=True)
class Activation:
    """One activation: send work to ``targets`` in order, then fall idle."""

    targets: tuple[ProcessId, ...] = ()


EMPTY_ACTIVATION = Activation(())


@dataclass(frozen=True)
class TerminationWorkload:
    """A finite script for a diffusing computation."""

    processes: tuple[ProcessId, ...]
    root: ProcessId
    plans: Mapping[ProcessId, tuple[Activation, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root not in self.processes:
            raise ValueError(f"root {self.root!r} is not among the processes")
        for process, plan in self.plans.items():
            if process not in self.processes:
                raise ValueError(f"plan given for unknown process {process!r}")
            for activation in plan:
                for target in activation.targets:
                    if target not in self.processes:
                        raise ValueError(
                            f"activation of {process!r} targets unknown "
                            f"process {target!r}"
                        )

    def plan_of(self, process: ProcessId) -> tuple[Activation, ...]:
        return tuple(self.plans.get(process, ()))

    def activation(self, process: ProcessId, index: int) -> Activation:
        """The ``index``-th activation (empty beyond the scripted ones)."""
        plan = self.plan_of(process)
        if index < len(plan):
            return plan[index]
        return EMPTY_ACTIVATION

    def total_work_messages(self) -> int:
        """Work messages sent in any complete run (schedule-independent).

        Computed by abstract replay: deliver pending messages in any
        order; each delivery triggers the receiver's next activation.
        """
        triggered = {process: 0 for process in self.processes}
        pending: deque[ProcessId] = deque([self.root])
        total = 0
        while pending:
            receiver = pending.popleft()
            activation = self.activation(receiver, triggered[receiver])
            triggered[receiver] += 1
            for target in activation.targets:
                total += 1
                pending.append(target)
        return total


def generate_workload(
    processes: Sequence[ProcessId],
    seed: int = 0,
    activations_per_process: int = 2,
    max_fanout: int = 2,
    root: ProcessId | None = None,
) -> TerminationWorkload:
    """A random but reproducible workload.

    Later activations have geometrically smaller fanout so the diffusing
    computation always dies out (total messages finite).
    """
    names = tuple(processes)
    chosen_root = root if root is not None else names[0]
    rng = random.Random(seed)
    plans: dict[ProcessId, tuple[Activation, ...]] = {}
    for process in names:
        plan = []
        for index in range(activations_per_process):
            ceiling = max(0, max_fanout - index)
            floor = 1 if process == chosen_root and index == 0 else 0
            fanout = rng.randint(floor, max(floor, ceiling))
            targets = tuple(
                rng.choice([name for name in names if name != process])
                for _ in range(fanout)
            )
            plan.append(Activation(targets))
        plans[process] = tuple(plan)
    return TerminationWorkload(processes=names, root=chosen_root, plans=plans)


@dataclass(frozen=True)
class UnderlyingState:
    """Derived underlying-computation state of one process."""

    triggered: int  # activations queued (work receipts, +1 for the root)
    completed: int  # activations finished (idle events)
    sends_in_current: int  # work sends already done in the running activation

    @property
    def active(self) -> bool:
        return self.completed < self.triggered


class DiffusingComputationProtocol(Protocol):
    """Executes a :class:`TerminationWorkload` with no detection overlay."""

    def __init__(self, workload: TerminationWorkload) -> None:
        super().__init__(workload.processes)
        self.workload = workload

    # ------------------------------------------------------------------
    # State replay
    # ------------------------------------------------------------------
    def underlying_state(
        self, process: ProcessId, history: History
    ) -> UnderlyingState:
        triggered = 1 if process == self.workload.root else 0
        completed = 0
        work_sends = 0
        for event in history:
            if isinstance(event, ReceiveEvent) and event.message.tag == WORK_TAG:
                triggered += 1
            elif isinstance(event, InternalEvent) and event.tag == IDLE_TAG:
                completed += 1
            elif isinstance(event, SendEvent) and event.message.tag == WORK_TAG:
                work_sends += 1
        consumed = sum(
            len(self.workload.activation(process, index).targets)
            for index in range(completed)
        )
        return UnderlyingState(
            triggered=triggered,
            completed=completed,
            sends_in_current=work_sends - consumed,
        )

    def underlying_step(
        self, process: ProcessId, history: History
    ) -> Event | None:
        """The next underlying event of ``process``, if it is active."""
        state = self.underlying_state(process, history)
        if not state.active:
            return None
        activation = self.workload.activation(process, state.completed)
        if state.sends_in_current < len(activation.targets):
            target = activation.targets[state.sends_in_current]
            message = self.next_message(history, process, target, WORK_TAG)
            return self.send_of(message)
        return self.next_internal(history, process, IDLE_TAG)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        step = self.underlying_step(process, history)
        if step is not None:
            yield step

    # ------------------------------------------------------------------
    # Global predicates
    # ------------------------------------------------------------------
    def is_terminated(self, configuration: Configuration) -> bool:
        """All processes passive and no work message in flight."""
        for message in configuration.in_flight_messages:
            if message.tag == WORK_TAG:
                return False
        for process in self.processes:
            if self.underlying_state(process, configuration.history(process)).active:
                return False
        return True

    def terminated_atom(self) -> Atom:
        """Underlying termination as a knowledge atom."""
        return Atom("underlying terminated", self.is_terminated)
