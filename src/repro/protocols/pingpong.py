"""Ping-pong: the smallest non-trivial knowledge-transfer workload.

Process ``left`` sends ``ping #k`` to ``right``; ``right`` answers with
``pong #k``; ``left`` must receive ``pong #k`` before sending ``ping
#(k+1)``.  With ``rounds`` bounded the computation space is finite and
complete, which makes this the work-horse universe for exhaustively
checking the paper's theorems (experiments E2, E3, E5, E6, E9).

The round trip is exactly a process chain ``<left right left>``, so every
knowledge-gain theorem has non-vacuous instances here: ``left`` learns
that ``right`` received the ping precisely when the pong arrives.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.events import Event, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.universe.protocol import History, Protocol


class PingPongProtocol(Protocol):
    """Two processes exchanging ``rounds`` ping/pong round trips."""

    def __init__(
        self, rounds: int = 1, left: ProcessId = "p", right: ProcessId = "q"
    ) -> None:
        super().__init__((left, right))
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.rounds = rounds
        self.left = left
        self.right = right

    @staticmethod
    def _count(history: History, kind: type, tag: str) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, kind) and event.message.tag == tag
        )

    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.left:
            pings_sent = self._count(history, SendEvent, "ping")
            pongs_received = self._count(history, ReceiveEvent, "pong")
            if pings_sent < self.rounds and pings_sent == pongs_received:
                message = self.next_message(history, self.left, self.right, "ping")
                yield self.send_of(message)
        else:
            pings_received = self._count(history, ReceiveEvent, "ping")
            pongs_sent = self._count(history, SendEvent, "pong")
            if pongs_sent < pings_received:
                message = self.next_message(history, self.right, self.left, "pong")
                yield self.send_of(message)

    def step_shape(self, process: ProcessId, history: History) -> object:
        """Steps are a function of the send/receive counts alone (the
        message seq is exactly the matching send count)."""
        if process == self.left:
            return (
                self._count(history, SendEvent, "ping"),
                self._count(history, ReceiveEvent, "pong"),
            )
        return (
            self._count(history, ReceiveEvent, "ping"),
            self._count(history, SendEvent, "pong"),
        )
