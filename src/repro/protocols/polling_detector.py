"""A wave-based (four-counter) polling termination detector.

A dedicated detector process repeatedly *probes* every underlying
process; each answers with a *report* carrying its work-message send
count, receive count, and passivity at reply time.  The detector
announces termination after two consecutive waves whose aggregated
reports are identical, balanced (sends == receives) and all-passive —
Mattern's four-counter condition.

The detector's overhead is ``2 * N`` messages per wave, which generally
*exceeds* the Dijkstra–Scholten overhead and illustrates the other side
of §5(c): probes must be sent even when the underlying computation has
not terminated, because the detector's view is isomorphic to one in which
it has (experiment E12's second series).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.core.process import ProcessId
from repro.protocols.termination import (
    WORK_TAG,
    DiffusingComputationProtocol,
    TerminationWorkload,
)
from repro.universe.protocol import History

PROBE_TAG = "probe"
REPORT_TAG = "report"
DETECT_TAG = "detect"


@dataclass(frozen=True)
class WaveSummary:
    """Aggregated reports of one completed wave."""

    sent: int
    received: int
    all_passive: bool


class PollingDetectorProtocol(DiffusingComputationProtocol):
    """A diffusing computation plus a polling detector process."""

    def __init__(
        self,
        workload: TerminationWorkload,
        detector: ProcessId = "detector",
        max_waves: int = 64,
    ) -> None:
        if detector in workload.processes:
            raise ValueError("the detector must not be an underlying process")
        self.detector = detector
        self.workers = tuple(workload.processes)
        self.max_waves = max_waves
        self._workload_only = workload
        # The detector participates as a process of the distributed system.
        super(DiffusingComputationProtocol, self).__init__(
            tuple(workload.processes) + (detector,)
        )
        self.workload = workload

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work_counts(self, history: History) -> tuple[int, int]:
        sent = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == WORK_TAG
        )
        received = sum(
            1
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == WORK_TAG
        )
        return sent, received

    def _unanswered_probes(self, history: History) -> list[Message]:
        probes = [
            event.message
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == PROBE_TAG
        ]
        replies = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == REPORT_TAG
        )
        return probes[replies:]

    def _worker_steps(
        self, process: ProcessId, history: History
    ) -> Iterable[Event]:
        unanswered = self._unanswered_probes(history)
        if unanswered:
            probe = unanswered[0]
            wave = probe.payload
            sent, received = self._work_counts(history)
            passive = not self.underlying_state(process, history).active
            message = self.next_message(
                history,
                sender=process,
                receiver=self.detector,
                tag=REPORT_TAG,
                payload=(wave, sent, received, passive),
            )
            yield self.send_of(message)
        step = self.underlying_step(process, history)
        if step is not None:
            yield step

    # ------------------------------------------------------------------
    # Detector side
    # ------------------------------------------------------------------
    def wave_summaries(self, history: History) -> list[WaveSummary]:
        """Summaries of every *completed* wave, in wave order."""
        reports: dict[int, list[tuple[int, int, bool]]] = {}
        for event in history:
            if isinstance(event, ReceiveEvent) and event.message.tag == REPORT_TAG:
                wave, sent, received, passive = event.message.payload
                reports.setdefault(wave, []).append((sent, received, passive))
        summaries = []
        wave = 0
        while wave in reports and len(reports[wave]) == len(self.workers):
            entries = reports[wave]
            summaries.append(
                WaveSummary(
                    sent=sum(entry[0] for entry in entries),
                    received=sum(entry[1] for entry in entries),
                    all_passive=all(entry[2] for entry in entries),
                )
            )
            wave += 1
        return summaries

    @staticmethod
    def detection_condition(summaries: list[WaveSummary]) -> bool:
        """Two consecutive identical, balanced, all-passive waves."""
        if len(summaries) < 2:
            return False
        previous, latest = summaries[-2], summaries[-1]
        return (
            previous.all_passive
            and latest.all_passive
            and previous.sent == latest.sent
            and previous.received == latest.received
            and latest.sent == latest.received
        )

    def _detector_steps(self, history: History) -> Iterable[Event]:
        if any(
            isinstance(event, InternalEvent) and event.tag == DETECT_TAG
            for event in history
        ):
            return
        probes_sent = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == PROBE_TAG
        )
        summaries = self.wave_summaries(history)
        if self.detection_condition(summaries):
            yield self.next_internal(history, self.detector, DETECT_TAG)
            return
        count = len(self.workers)
        current_wave, position = divmod(probes_sent, count)
        if position == 0 and len(summaries) < current_wave:
            return  # wait for the previous wave's reports
        if current_wave >= self.max_waves:
            return
        target = self.workers[position]
        message = self.next_message(
            history,
            sender=self.detector,
            receiver=target,
            tag=PROBE_TAG,
            payload=current_wave,
        )
        yield self.send_of(message)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.detector:
            yield from self._detector_steps(history)
        else:
            yield from self._worker_steps(process, history)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def has_detected(self, configuration: Configuration) -> bool:
        """Has the detector announced termination?"""
        return any(
            isinstance(event, InternalEvent) and event.tag == DETECT_TAG
            for event in configuration.history(self.detector)
        )

    @staticmethod
    def overhead_messages(configuration: Configuration) -> int:
        """Probe plus report messages sent."""
        return sum(
            1
            for event in configuration.events()
            if isinstance(event, SendEvent)
            and event.message.tag in (PROBE_TAG, REPORT_TAG)
        )

    def is_terminated(self, configuration: Configuration) -> bool:
        """Underlying termination (ignores detector traffic)."""
        for message in configuration.in_flight_messages:
            if message.tag == WORK_TAG:
                return False
        for process in self.workers:
            if self.underlying_state(process, configuration.history(process)).active:
                return False
        return True
