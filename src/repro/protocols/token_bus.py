"""The token bus of §4.1: nested knowledge along a line of processes.

A token bus is a linear sequence of processes among which a single token
is passed back and forth; boundary processes have one neighbour, inner
processes may send either way.  Initially the leftmost process holds the
token.  The paper's example: with five processes ``p q r s t``, whenever
``r`` holds the token,

    ``r knows ( (q knows ¬(p holds)) and (s knows ¬(t holds)) )``.

:func:`paper_example_formula` builds exactly that formula (for any bus)
and :func:`check_paper_example` verifies it over the explored universe —
experiment E7.

To keep the computation space finite the token carries a hop count and
may be forwarded at most ``max_hops`` times; the knowledge property is
independent of the bound.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import And, Atom, Formula, Implies, Knows, Not
from repro.universe.explorer import Universe
from repro.universe.protocol import History, Protocol

TOKEN_TAG = "token"


class TokenBusProtocol(Protocol):
    """A token bus over ``stations`` (left to right), bounded by
    ``max_hops`` forwardings of the token."""

    def __init__(
        self, stations: Sequence[ProcessId] = ("p", "q", "r", "s", "t"),
        max_hops: int = 4,
    ) -> None:
        if len(stations) < 2:
            raise ValueError("a token bus needs at least two stations")
        if len(set(stations)) != len(stations):
            raise ValueError("station names must be distinct")
        super().__init__(stations)
        self.stations = tuple(stations)
        self.max_hops = max_hops

    # ------------------------------------------------------------------
    # Local state from history
    # ------------------------------------------------------------------
    def _neighbours(self, process: ProcessId) -> tuple[ProcessId, ...]:
        index = self.stations.index(process)
        neighbours = []
        if index > 0:
            neighbours.append(self.stations[index - 1])
        if index < len(self.stations) - 1:
            neighbours.append(self.stations[index + 1])
        return tuple(neighbours)

    def holds_token(self, process: ProcessId, history: History) -> bool:
        """Token possession derived from the local history alone.

        The leftmost station starts with the token; thereafter a station
        holds it iff it has received the token one more time than it has
        sent it (or, for the initial holder, equally often).
        """
        received = sum(
            1
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG
        )
        sent = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == TOKEN_TAG
        )
        if process == self.stations[0]:
            return received == sent
        return received == sent + 1

    def _current_hop(self, history: History) -> int:
        """Hop count of the token currently held (payload of the last
        token receive, or 0 for the initial holder)."""
        for event in reversed(history):
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG:
                return int(event.message.payload)
        return 0

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if not self.holds_token(process, history):
            return
        hop = self._current_hop(history)
        if hop >= self.max_hops:
            return
        for neighbour in self._neighbours(process):
            message = self.next_message(
                history, process, neighbour, TOKEN_TAG, payload=hop + 1
            )
            yield self.send_of(message)

    def step_shape(self, process: ProcessId, history: History) -> object:
        """Steps depend on (holding, current hop, per-neighbour send
        counts) only — idle stations collapse to one shape."""
        received = sent = 0
        hop = 0
        sent_to: dict[ProcessId, int] = {}
        for event in history:
            if isinstance(event, ReceiveEvent):
                if event.message.tag == TOKEN_TAG:
                    received += 1
                    hop = int(event.message.payload)
            elif isinstance(event, SendEvent) and event.message.tag == TOKEN_TAG:
                sent += 1
                receiver = event.message.receiver
                sent_to[receiver] = sent_to.get(receiver, 0) + 1
        holds = received == sent if process == self.stations[0] else (
            received == sent + 1
        )
        if not holds or hop >= self.max_hops:
            return False
        return (hop, tuple(sorted(sent_to.items())))


# ----------------------------------------------------------------------
# Predicates and the paper's example
# ----------------------------------------------------------------------
def holds_token_atom(protocol: TokenBusProtocol, process: ProcessId) -> Atom:
    """``process holds the token`` as a knowledge atom."""

    def fn(configuration: Configuration) -> bool:
        return protocol.holds_token(process, configuration.history(process))

    return Atom(f"{process} holds token", fn)


def paper_example_formula(protocol: TokenBusProtocol) -> Formula:
    """The §4.1 claim, generalised to any bus of length >= 5.

    With stations ``p q r s t`` (the middle five if longer):

        ``(r holds) ⇒ r knows ((q knows ¬(p holds)) ∧ (s knows ¬(t holds)))``
    """
    if len(protocol.stations) < 5:
        raise ValueError("the paper's example needs at least five stations")
    p, q, r, s, t = protocol.stations[:5]
    r_holds = holds_token_atom(protocol, r)
    q_knows = Knows({q}, Not(holds_token_atom(protocol, p)))
    s_knows = Knows({s}, Not(holds_token_atom(protocol, t)))
    return Implies(r_holds, Knows({r}, And(q_knows, s_knows)))


def check_paper_example(
    universe: Universe, evaluator: KnowledgeEvaluator | None = None
) -> dict[str, int | bool]:
    """Verify the §4.1 example over a token-bus universe.

    Returns the verdict together with the number of configurations in
    which ``r`` actually holds the token (non-vacuity witness).
    """
    protocol = universe.protocol
    if not isinstance(protocol, TokenBusProtocol):
        raise TypeError("check_paper_example needs a token-bus universe")
    if evaluator is None:
        evaluator = KnowledgeEvaluator(universe)
    formula = paper_example_formula(protocol)
    r = protocol.stations[2]
    r_holds = holds_token_atom(protocol, r)
    return {
        "valid": evaluator.is_valid(formula),
        "r_holds_count": len(evaluator.extension(r_holds)),
        "universe_size": len(universe),
    }
