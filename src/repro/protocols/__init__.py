"""Protocol library: workloads exercising the paper's theory."""

from repro.protocols.broadcast import (
    BroadcastProtocol,
    fact_established_atom,
    fact_known_atom,
    line_topology,
    ring_topology,
    star_topology,
)
from repro.protocols.commit import TwoPhaseCommitProtocol
from repro.protocols.dijkstra_scholten import DijkstraScholtenProtocol
from repro.protocols.failure_monitor import (
    AsyncFailureMonitorProtocol,
    SyncFailureMonitorProtocol,
)
from repro.protocols.leader_election import ChangRobertsProtocol
from repro.protocols.mutex import TokenRingMutexProtocol, check_mutual_exclusion
from repro.protocols.pingpong import PingPongProtocol
from repro.protocols.polling_detector import PollingDetectorProtocol
from repro.protocols.snapshot import (
    GlobalSnapshot,
    SnapshotTokenRingProtocol,
    recorded_snapshot,
    snapshot_is_consistent,
)
from repro.protocols.termination import (
    Activation,
    DiffusingComputationProtocol,
    TerminationWorkload,
    generate_workload,
)
from repro.protocols.toggle import ToggleProtocol, bit_atom
from repro.protocols.token_bus import (
    TokenBusProtocol,
    check_paper_example,
    holds_token_atom,
    paper_example_formula,
)

__all__ = [
    "TokenRingMutexProtocol",
    "check_mutual_exclusion",
    "TwoPhaseCommitProtocol",
    "Activation",
    "AsyncFailureMonitorProtocol",
    "BroadcastProtocol",
    "ChangRobertsProtocol",
    "DiffusingComputationProtocol",
    "DijkstraScholtenProtocol",
    "GlobalSnapshot",
    "PingPongProtocol",
    "PollingDetectorProtocol",
    "SnapshotTokenRingProtocol",
    "SyncFailureMonitorProtocol",
    "TerminationWorkload",
    "ToggleProtocol",
    "TokenBusProtocol",
    "bit_atom",
    "check_paper_example",
    "fact_established_atom",
    "fact_known_atom",
    "generate_workload",
    "holds_token_atom",
    "line_topology",
    "paper_example_formula",
    "recorded_snapshot",
    "ring_topology",
    "snapshot_is_consistent",
    "star_topology",
]
