"""Dijkstra–Scholten termination detection for diffusing computations.

The classic signalling algorithm: every work message is eventually
acknowledged; a process is *engaged* from the first work message that
finds it disengaged (its *parent edge*) and acknowledges that parent only
once it is passive, has no unacknowledged work messages of its own
(deficit zero), and has answered every other work message immediately.
The root detects termination when it is passive with deficit zero.

The overhead is exactly one ``ack`` per ``work`` message — the algorithm
*meets* the paper's §5(c) lower bound (overhead >= underlying messages),
which is what experiment E12 measures.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.core.process import ProcessId
from repro.protocols.termination import (
    WORK_TAG,
    DiffusingComputationProtocol,
    TerminationWorkload,
)
from repro.universe.protocol import History

ACK_TAG = "ack"
DETECT_TAG = "detect"


@dataclass(frozen=True)
class DsState:
    """Derived Dijkstra–Scholten state of one process."""

    engaged: bool
    parent: Message | None  # the work message that engaged this process
    deficit: int  # own work messages not yet acknowledged
    pending: tuple[Message, ...]  # work messages owed an immediate ack
    detected: bool  # root only


def _acked_work_message(ack: Message) -> Message:
    """The work message an ack message acknowledges.

    Acks carry ``(work_sender, work_seq)``; together with the ack's sender
    (the work receiver) this identifies the work message uniquely.
    """
    work_sender, work_seq = ack.payload
    return Message(
        sender=work_sender,
        receiver=ack.sender,
        tag=WORK_TAG,
        seq=work_seq,
    )


class DijkstraScholtenProtocol(DiffusingComputationProtocol):
    """A diffusing computation overlaid with Dijkstra–Scholten detection."""

    def __init__(self, workload: TerminationWorkload) -> None:
        super().__init__(workload)
        self.root = workload.root

    # ------------------------------------------------------------------
    # State replay
    # ------------------------------------------------------------------
    def ds_state(self, process: ProcessId, history: History) -> DsState:
        engaged = process == self.root
        parent: Message | None = None
        deficit = 0
        pending: list[Message] = []
        detected = False
        for event in history:
            if isinstance(event, ReceiveEvent):
                if event.message.tag == WORK_TAG:
                    if engaged:
                        pending.append(event.message)
                    else:
                        engaged = True
                        parent = event.message
                elif event.message.tag == ACK_TAG:
                    deficit -= 1
            elif isinstance(event, SendEvent):
                if event.message.tag == WORK_TAG:
                    deficit += 1
                elif event.message.tag == ACK_TAG:
                    acked = _acked_work_message(event.message)
                    if parent is not None and acked == parent:
                        engaged = False
                        parent = None
                    else:
                        pending.remove(acked)
            elif isinstance(event, InternalEvent) and event.tag == DETECT_TAG:
                detected = True
        return DsState(
            engaged=engaged,
            parent=parent,
            deficit=deficit,
            pending=tuple(pending),
            detected=detected,
        )

    def _ack_for(self, history: History, work: Message) -> Event:
        message = self.next_message(
            history,
            sender=work.receiver,
            receiver=work.sender,
            tag=ACK_TAG,
            payload=(work.sender, work.seq),
        )
        return self.send_of(message)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        state = self.ds_state(process, history)
        underlying = self.underlying_state(process, history)

        if state.pending:
            yield self._ack_for(history, state.pending[0])

        step = self.underlying_step(process, history)
        if step is not None:
            yield step

        quiet = (
            not underlying.active and state.deficit == 0 and not state.pending
        )
        if quiet and process == self.root:
            if state.engaged and not state.detected:
                yield self.next_internal(history, process, DETECT_TAG)
        elif quiet and state.engaged and state.parent is not None:
            yield self._ack_for(history, state.parent)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def has_detected(self, configuration: Configuration) -> bool:
        """Has the root announced termination?"""
        return any(
            isinstance(event, InternalEvent) and event.tag == DETECT_TAG
            for event in configuration.history(self.root)
        )

    @staticmethod
    def overhead_messages(configuration: Configuration) -> int:
        """Number of ack messages sent (the algorithm's total overhead)."""
        return sum(
            1
            for event in configuration.events()
            if isinstance(event, SendEvent) and event.message.tag == ACK_TAG
        )
