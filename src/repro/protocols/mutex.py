"""Token-based mutual exclusion, with knowledge-based safety.

The token ring is the simplest protocol whose safety argument is
literally epistemic: a process enters the critical section only while
holding the token, and *because* token possession is local and unique,

    ``p in CS  ⇒  p knows ¬(q in CS)``   for every other station q

— the process doesn't merely happen to be alone; it *knows* it is.  The
checkers make that argument mechanical (experiment E14's protocol
corpus).

Behaviour: a single token circulates a ring; the holder may either
forward it, or enter the critical section (internal ``enter``), do a
critical step, and ``exit`` before forwarding.  A bounded hop count keeps
the universe finite.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.evaluator import KnowledgeEvaluator
from repro.knowledge.formula import Atom, Implies, Knows, Not
from repro.universe.explorer import Universe
from repro.universe.protocol import History, Protocol

TOKEN_TAG = "token"
ENTER_TAG = "enter"
EXIT_TAG = "exit"


class TokenRingMutexProtocol(Protocol):
    """Mutual exclusion on the ring ``stations`` with ``max_hops`` token
    forwardings and at most ``max_sessions`` critical sections per
    station."""

    def __init__(
        self,
        stations: Sequence[ProcessId] = ("p", "q", "r"),
        max_hops: int = 3,
        max_sessions: int = 1,
    ) -> None:
        if len(stations) < 2:
            raise ValueError("a ring needs at least two stations")
        super().__init__(stations)
        self.stations = tuple(stations)
        self.max_hops = max_hops
        self.max_sessions = max_sessions

    def successor(self, process: ProcessId) -> ProcessId:
        index = self.stations.index(process)
        return self.stations[(index + 1) % len(self.stations)]

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def holds_token(self, process: ProcessId, history: History) -> bool:
        received = sum(
            1
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG
        )
        sent = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == TOKEN_TAG
        )
        if process == self.stations[0]:
            return received == sent
        return received == sent + 1

    def in_critical_section(self, process: ProcessId, history: History) -> bool:
        enters = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == ENTER_TAG
        )
        exits = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == EXIT_TAG
        )
        return enters > exits

    def _sessions(self, history: History) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == ENTER_TAG
        )

    def _token_hop(self, history: History) -> int:
        for event in reversed(history):
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG:
                return int(event.message.payload)
        return 0

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if not self.holds_token(process, history):
            return
        if self.in_critical_section(process, history):
            yield self.next_internal(history, process, EXIT_TAG)
            return
        if self._sessions(history) < self.max_sessions:
            yield self.next_internal(history, process, ENTER_TAG)
        hop = self._token_hop(history)
        if hop < self.max_hops:
            message = self.next_message(
                history,
                process,
                self.successor(process),
                TOKEN_TAG,
                payload=hop + 1,
            )
            yield self.send_of(message)

    def step_shape(self, process: ProcessId, history: History) -> object:
        """Steps depend on (enter/exit counts, hop, token sends) only.

        The event seqs are exactly those counters: exit seq = exits so
        far, enter seq = enters so far, token seq = sends so far (all to
        the one ring successor).  Stations without the token collapse to
        one shape.
        """
        received = sent = enters = exits = 0
        hop = 0
        for event in history:
            if isinstance(event, ReceiveEvent):
                if event.message.tag == TOKEN_TAG:
                    received += 1
                    hop = int(event.message.payload)
            elif isinstance(event, SendEvent):
                if event.message.tag == TOKEN_TAG:
                    sent += 1
            elif event.tag == ENTER_TAG:
                enters += 1
            elif event.tag == EXIT_TAG:
                exits += 1
        holds = received == sent if process == self.stations[0] else (
            received == sent + 1
        )
        if not holds:
            return False
        return (enters, exits, hop, sent)

    # ------------------------------------------------------------------
    # Atoms and checkers
    # ------------------------------------------------------------------
    def in_cs_atom(self, process: ProcessId) -> Atom:
        """``process`` is inside its critical section."""

        def fn(configuration: Configuration) -> bool:
            return self.in_critical_section(
                process, configuration.history(process)
            )

        return Atom(f"{process} in CS", fn)


def check_mutual_exclusion(universe: Universe) -> dict[str, bool | int]:
    """Safety and its epistemic strengthening, over a complete universe.

    * ``safe``: never two stations in the critical section at once;
    * ``epistemic``: whenever a station is in its critical section, it
      *knows* no other station is in one;
    * ``sessions``: number of configurations with someone in a critical
      section (non-vacuity witness).
    """
    protocol = universe.protocol
    if not isinstance(protocol, TokenRingMutexProtocol):
        raise TypeError("check_mutual_exclusion needs a TokenRingMutexProtocol")
    evaluator = KnowledgeEvaluator(universe)

    safe = True
    sessions = 0
    for configuration in universe:
        inside = [
            station
            for station in protocol.stations
            if protocol.in_critical_section(
                station, configuration.history(station)
            )
        ]
        if inside:
            sessions += 1
        if len(inside) > 1:
            safe = False

    epistemic = True
    for station in protocol.stations:
        in_cs = protocol.in_cs_atom(station)
        for other in protocol.stations:
            if other == station:
                continue
            claim = Implies(in_cs, Knows(station, Not(protocol.in_cs_atom(other))))
            if not evaluator.is_valid(claim):
                epistemic = False
    return {"safe": safe, "epistemic": epistemic, "sessions": sessions}
