"""Failure monitoring with and without timeouts (paper, §5(b)).

The paper proves that detecting a process failure is impossible without
timeouts: failure is a predicate *local to the failed process*, and a
failed process sends no messages afterwards — so by the knowledge-gain
theorem the monitor can never become sure of it.

Two protocols make both halves executable:

* :class:`AsyncFailureMonitorProtocol` — a worker sends heartbeats and may
  crash at any moment; the monitor passively receives.  Over this
  universe the monitor is *unsure* of the crash at every configuration
  (checked by :mod:`repro.applications.failure_detection`).
* :class:`SyncFailureMonitorProtocol` — the same system under a synchrony
  assumption, modelled by a timer process whose ``tick r`` may only be
  *emitted* after the worker's round-``r`` heartbeat has been sent or the
  worker has crashed, and may only be *received* after the heartbeat has
  been received (bounded delivery delay).  Receiving ``tick r`` without
  the heartbeat therefore lets the monitor conclude the crash — a
  timeout.  This restricts the computation set globally, which is exactly
  how synchrony assumptions enter the Chandy–Misra model (the system is
  characterised by its set of computations).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.universe.protocol import History, Protocol

HEARTBEAT_TAG = "heartbeat"
TICK_TAG = "tick"
CRASH_TAG = "crash"


class AsyncFailureMonitorProtocol(Protocol):
    """Asynchronous worker/monitor pair; the worker may crash silently."""

    def __init__(
        self,
        worker: ProcessId = "w",
        monitor: ProcessId = "m",
        heartbeats: int = 2,
    ) -> None:
        super().__init__((worker, monitor))
        self.worker = worker
        self.monitor = monitor
        self.heartbeats = heartbeats

    def crashed(self, history: History) -> bool:
        """Has the worker crashed in this local history?"""
        return any(
            isinstance(event, InternalEvent) and event.tag == CRASH_TAG
            for event in history
        )

    def _heartbeats_sent(self, history: History) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == HEARTBEAT_TAG
        )

    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process != self.worker or self.crashed(history):
            return
        yield InternalEvent(process=process, tag=CRASH_TAG, seq=0)
        sent = self._heartbeats_sent(history)
        if sent < self.heartbeats:
            message = self.next_message(
                history, self.worker, self.monitor, HEARTBEAT_TAG
            )
            yield self.send_of(message)

    def can_receive(self, process, history, message) -> bool:
        if process == self.worker and self.crashed(history):
            return False
        return True

    def crashed_atom(self):
        """``the worker has crashed`` — local to the worker."""
        from repro.knowledge.formula import Atom

        def fn(configuration: Configuration) -> bool:
            return self.crashed(configuration.history(self.worker))

        return Atom(f"{self.worker} crashed", fn)


class SyncFailureMonitorProtocol(Protocol):
    """The worker/monitor pair under a synchrony (timeout) assumption.

    Round ``r`` (0-based): the worker, if alive, sends ``heartbeat r``;
    the timer may send ``tick r`` to the monitor only once the heartbeat
    of round ``r`` has been *sent or can never be sent* (worker crashed),
    and the monitor may receive ``tick r`` only after receiving
    ``heartbeat r`` — unless the worker crashed before sending it.  Thus
    ``tick r`` without ``heartbeat r`` is a sound timeout signal.
    """

    def __init__(
        self,
        worker: ProcessId = "w",
        monitor: ProcessId = "m",
        timer: ProcessId = "clock",
        rounds: int = 2,
    ) -> None:
        super().__init__((worker, monitor, timer))
        self.worker = worker
        self.monitor = monitor
        self.timer = timer
        self.rounds = rounds

    # ------------------------------------------------------------------
    # Local state helpers
    # ------------------------------------------------------------------
    def crashed(self, history: History) -> bool:
        return any(
            isinstance(event, InternalEvent) and event.tag == CRASH_TAG
            for event in history
        )

    @staticmethod
    def _sends(history: History, tag: str) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == tag
        )

    @staticmethod
    def _receives(history: History, tag: str) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == tag
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.worker:
            if self.crashed(history):
                return
            yield InternalEvent(process=process, tag=CRASH_TAG, seq=0)
            sent = self._sends(history, HEARTBEAT_TAG)
            if sent < self.rounds:
                message = self.next_message(
                    history, self.worker, self.monitor, HEARTBEAT_TAG
                )
                yield self.send_of(message)
        elif process == self.timer:
            ticks = self._sends(history, TICK_TAG)
            if ticks < self.rounds:
                message = self.next_message(
                    history, self.timer, self.monitor, TICK_TAG, payload=ticks
                )
                yield self.send_of(message)

    def filter_enabled_events(
        self, configuration: Configuration, events
    ) -> list[Event]:
        """Apply the synchrony restrictions on top of the base enabling.

        Expressed as a declarative *filter* (not an ``enabled_events``
        override) so the protocol rides the compiled step tables and the
        exploration kernel's fast path; the step-table suite
        equivalence-tests the filtered kernel against the
        ``enabled_events`` oracle.
        """
        worker_history = configuration.history(self.worker)
        heartbeats_sent = self._sends(worker_history, HEARTBEAT_TAG)
        worker_crashed = self.crashed(worker_history)
        monitor_history = configuration.history(self.monitor)
        heartbeats_received = self._receives(monitor_history, HEARTBEAT_TAG)

        filtered = []
        for event in events:
            if isinstance(event, SendEvent) and event.message.tag == TICK_TAG:
                round_index = event.message.payload
                # tick r only after heartbeat r exists or never will.
                if not (heartbeats_sent > round_index or worker_crashed):
                    continue
            if isinstance(event, ReceiveEvent) and event.message.tag == TICK_TAG:
                round_index = event.message.payload
                # bounded delay: heartbeat r beats tick r to the monitor,
                # unless it was never sent.
                if not (
                    heartbeats_received > round_index
                    or heartbeats_sent <= round_index
                ):
                    continue
            filtered.append(event)
        return filtered

    def crashed_atom(self):
        """``the worker has crashed`` — local to the worker."""
        from repro.knowledge.formula import Atom

        def fn(configuration: Configuration) -> bool:
            return self.crashed(configuration.history(self.worker))

        return Atom(f"{self.worker} crashed", fn)
