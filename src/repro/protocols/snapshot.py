"""Chandy–Lamport global snapshots: processes learning a global state.

The snapshot algorithm is the constructive counterpart of the paper's
theme — a process assembles knowledge of a *consistent* global state from
purely local observations.  We implement it over a unidirectional token
ring (the only channels are each process's edge to its successor), with
FIFO channels (wrap the protocol in
:class:`repro.simulation.network.FifoProtocol`).

* The initiator records its state spontaneously (internal ``record``
  event) and sends a ``marker`` on its outgoing channel.
* On first ``marker`` receipt a process records its state and forwards a
  marker; the state of an incoming channel is the sequence of application
  messages received after recording and before that channel's marker.

:func:`recorded_snapshot` extracts the recorded global state from a
computation, and :func:`snapshot_is_consistent` checks the algorithm's
guarantee: the recorded cut is a *valid configuration* whose in-flight
application messages are exactly the recorded channel states.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolError
from repro.core.events import (
    Event,
    InternalEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.core.process import ProcessId
from repro.core.validation import is_valid_configuration
from repro.universe.protocol import History, Protocol

TOKEN_TAG = "app-token"
MARKER_TAG = "marker"
RECORD_TAG = "record"


class SnapshotTokenRingProtocol(Protocol):
    """A token ring overlaid with the Chandy–Lamport snapshot algorithm."""

    def __init__(
        self,
        ring: Sequence[ProcessId] = ("p", "q", "r"),
        max_hops: int = 3,
        initiator: ProcessId | None = None,
    ) -> None:
        if len(ring) < 2:
            raise ProtocolError("a ring needs at least two processes")
        super().__init__(ring)
        self.ring = tuple(ring)
        self.max_hops = max_hops
        self.initiator = initiator if initiator is not None else self.ring[0]
        if self.initiator not in self.ring:
            raise ProtocolError("the initiator must be on the ring")

    def successor(self, process: ProcessId) -> ProcessId:
        index = self.ring.index(process)
        return self.ring[(index + 1) % len(self.ring)]

    # ------------------------------------------------------------------
    # Local state helpers
    # ------------------------------------------------------------------
    def holds_token(self, process: ProcessId, history: History) -> bool:
        received = sum(
            1
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG
        )
        sent = sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == TOKEN_TAG
        )
        if process == self.ring[0]:
            return received == sent
        return received == sent + 1

    def _token_hop(self, history: History) -> int:
        for event in reversed(history):
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG:
                return int(event.message.payload)
        return 0

    def has_recorded(self, history: History) -> bool:
        """Has this process recorded its snapshot state?"""
        return any(
            (isinstance(event, InternalEvent) and event.tag == RECORD_TAG)
            for event in history
        )

    def _marker_sent(self, history: History) -> bool:
        return any(
            isinstance(event, SendEvent) and event.message.tag == MARKER_TAG
            for event in history
        )

    def _marker_received(self, history: History) -> bool:
        return any(
            isinstance(event, ReceiveEvent) and event.message.tag == MARKER_TAG
            for event in history
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        recorded = self.has_recorded(history)
        # The marker must be the first message sent after recording —
        # otherwise a post-record application message could overtake it
        # (even on a FIFO channel) and land inside the receiver's cut.
        if recorded and not self._marker_sent(history):
            message = self.next_message(
                history, process, self.successor(process), MARKER_TAG
            )
            yield self.send_of(message)
            return
        # Application: forward the token around the ring.
        if self.holds_token(process, history):
            hop = self._token_hop(history)
            if hop < self.max_hops:
                message = self.next_message(
                    history,
                    process,
                    self.successor(process),
                    TOKEN_TAG,
                    payload=hop + 1,
                )
                yield self.send_of(message)
        # Snapshot: spontaneous recording at the initiator, and recording
        # forced by a received marker at everyone.
        if not recorded and (
            process == self.initiator or self._marker_received(history)
        ):
            yield self.next_internal(history, process, RECORD_TAG)

    def can_receive(self, process: ProcessId, history: History, message) -> bool:
        # Recording is atomic with the marker receipt in Chandy–Lamport:
        # once a marker has arrived, nothing else may be received until the
        # state is recorded, or a message sent outside the sender's cut
        # could slip into this process's recorded prefix.
        if self._marker_received(history) and not self.has_recorded(history):
            return False
        return True

    def snapshot_complete(self, configuration: Configuration) -> bool:
        """All processes recorded and all markers delivered."""
        for process in self.ring:
            history = configuration.history(process)
            if not self.has_recorded(history):
                return False
            if not self._marker_received(history):
                return False
        return True


@dataclass(frozen=True)
class GlobalSnapshot:
    """The recorded global state: per-process history prefixes and
    per-channel message sequences."""

    states: dict[ProcessId, tuple[Event, ...]]
    channels: dict[tuple[ProcessId, ProcessId], tuple[Message, ...]]

    def cut(self) -> Configuration:
        """The recorded cut as a configuration."""
        return Configuration(self.states)

    def channel_messages(self) -> frozenset[Message]:
        return frozenset(
            message
            for messages in self.channels.values()
            for message in messages
        )


def recorded_snapshot(
    protocol: SnapshotTokenRingProtocol, configuration: Configuration
) -> GlobalSnapshot:
    """Extract the algorithm's recorded snapshot from a computation.

    Requires a completed snapshot (:meth:`SnapshotTokenRingProtocol.
    snapshot_complete`).
    """
    if not protocol.snapshot_complete(configuration):
        raise ProtocolError("snapshot has not completed in this computation")
    states: dict[ProcessId, tuple[Event, ...]] = {}
    channels: dict[tuple[ProcessId, ProcessId], tuple[Message, ...]] = {}
    for process in protocol.ring:
        history = configuration.history(process)
        record_index = next(
            index
            for index, event in enumerate(history)
            if isinstance(event, InternalEvent) and event.tag == RECORD_TAG
        )
        # The recorded state is the *application* prefix: marker traffic
        # and the record event itself are snapshot machinery, not part of
        # the state being photographed.
        states[process] = tuple(
            event
            for event in history[:record_index]
            if (isinstance(event, (SendEvent, ReceiveEvent)))
            and event.message.tag == TOKEN_TAG
        )
        # Incoming channel state: app messages received after recording
        # and before the channel's marker.  When the marker itself caused
        # the recording (marker receive precedes the record event) the
        # channel state is empty.
        predecessor = protocol.ring[
            (protocol.ring.index(process) - 1) % len(protocol.ring)
        ]
        marker_index = next(
            index
            for index, event in enumerate(history)
            if isinstance(event, ReceiveEvent)
            and event.message.tag == MARKER_TAG
        )
        collected = tuple(
            event.message
            for event in history[record_index:marker_index]
            if isinstance(event, ReceiveEvent) and event.message.tag == TOKEN_TAG
        )
        channels[(predecessor, process)] = collected
    return GlobalSnapshot(states=states, channels=channels)


def snapshot_is_consistent(
    protocol: SnapshotTokenRingProtocol, configuration: Configuration
) -> bool:
    """The Chandy–Lamport guarantee, checked mechanically.

    The recorded per-process states must form a *valid* configuration
    (a consistent cut: every message received in the cut was sent in it),
    and the recorded channel states must be exactly the application
    messages in flight across that cut.
    """
    snapshot = recorded_snapshot(protocol, configuration)
    cut = snapshot.cut()
    if not is_valid_configuration(cut):
        return False
    in_flight_app = frozenset(
        message
        for message in cut.in_flight_messages
        if message.tag == TOKEN_TAG
    )
    return in_flight_app == snapshot.channel_messages()
