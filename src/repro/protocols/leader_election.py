"""Chang–Roberts leader election on a unidirectional ring.

A classic chain-building workload for the simulator benchmarks: every
process injects its identifier; identifiers travel clockwise; a process
forwards only identifiers greater than its own; the process that sees its
own identifier return is the leader and announces itself.

The announcement is a textbook knowledge-gain event — the winner *knows*
it has the maximum id precisely because a process chain visited every
station (its candidature circulated the whole ring), making this protocol
a natural workload for the knowledge-flow measurements (experiment E9 at
scale) and for simulator throughput benchmarks (E13).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.universe.protocol import History, Protocol

CANDIDATE_TAG = "candidate"
LEADER_TAG = "leader"


class ChangRobertsProtocol(Protocol):
    """Leader election on the ring ``ring`` with identities ``rank``.

    Ranks default to each process's position in ``ring`` — pass an
    explicit mapping to control the winner and message complexity (the
    worst case, ids in descending ring order, costs O(n^2) messages).
    """

    def __init__(
        self,
        ring: Sequence[ProcessId],
        ranks: dict[ProcessId, int] | None = None,
    ) -> None:
        if len(ring) < 2:
            raise ValueError("a ring needs at least two processes")
        super().__init__(ring)
        self.ring = tuple(ring)
        if ranks is None:
            ranks = {process: index for index, process in enumerate(self.ring)}
        if set(ranks) != set(self.ring):
            raise ValueError("ranks must cover exactly the ring's processes")
        if len(set(ranks.values())) != len(self.ring):
            raise ValueError("ranks must be distinct")
        self.ranks = dict(ranks)

    def successor(self, process: ProcessId) -> ProcessId:
        index = self.ring.index(process)
        return self.ring[(index + 1) % len(self.ring)]

    # ------------------------------------------------------------------
    # Local state helpers
    # ------------------------------------------------------------------
    def _sent_payloads(self, history: History) -> set[int]:
        return {
            event.message.payload
            for event in history
            if isinstance(event, SendEvent)
            and event.message.tag == CANDIDATE_TAG
        }

    def _pending_forwards(self, history: History) -> list[int]:
        """Received candidate ranks that still must be forwarded."""
        forwards: list[int] = []
        sent = self._sent_payloads(history)
        for event in history:
            if (
                isinstance(event, ReceiveEvent)
                and event.message.tag == CANDIDATE_TAG
            ):
                rank = event.message.payload
                if rank > self.ranks[event.process] and rank not in sent:
                    forwards.append(rank)
        return forwards

    def is_leader(self, process: ProcessId, history: History) -> bool:
        """Has this process seen its own identifier come back around?"""
        return any(
            isinstance(event, ReceiveEvent)
            and event.message.tag == CANDIDATE_TAG
            and event.message.payload == self.ranks[process]
            for event in history
        )

    def has_announced(self, history: History) -> bool:
        return any(
            isinstance(event, InternalEvent) and event.tag == LEADER_TAG
            for event in history
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        sent = self._sent_payloads(history)
        own_rank = self.ranks[process]
        if own_rank not in sent and not self.is_leader(process, history):
            message = self.next_message(
                history,
                process,
                self.successor(process),
                CANDIDATE_TAG,
                payload=own_rank,
            )
            yield self.send_of(message)
        for rank in self._pending_forwards(history):
            message = self.next_message(
                history,
                process,
                self.successor(process),
                CANDIDATE_TAG,
                payload=rank,
            )
            yield self.send_of(message)
            break  # forward one at a time, in arrival order
        if self.is_leader(process, history) and not self.has_announced(history):
            yield self.next_internal(history, process, LEADER_TAG)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def elected_leader(self, configuration: Configuration) -> ProcessId | None:
        """The announced leader, if the election has finished."""
        for process in self.ring:
            if self.has_announced(configuration.history(process)):
                return process
        return None

    @staticmethod
    def message_count(configuration: Configuration) -> int:
        """Candidate messages sent (the protocol's complexity measure)."""
        return sum(
            1
            for event in configuration.events()
            if isinstance(event, SendEvent)
            and event.message.tag == CANDIDATE_TAG
        )
