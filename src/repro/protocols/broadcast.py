"""Flooding broadcast: knowledge dissemination along a topology.

A ``root`` process performs an internal ``learn`` event (establishing a
fact local to the root) and then floods a ``fact`` message through an
arbitrary topology; every process forwards the message to every
neighbour it has not already sent to, once it has learnt the fact.

This is the canonical *knowledge gain* workload: process ``v`` knows the
fact exactly when a process chain ``<root … v>`` has carried it there, so
Theorems 1 and 5 have dense non-vacuous instances (experiments E3, E9).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.formula import Atom
from repro.universe.protocol import History, Protocol

FACT_TAG = "fact"
LEARN_TAG = "learn"


def line_topology(names: Sequence[ProcessId]) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A line ``n0 - n1 - … - nk`` as an adjacency map."""
    adjacency: dict[ProcessId, tuple[ProcessId, ...]] = {}
    for index, name in enumerate(names):
        neighbours = []
        if index > 0:
            neighbours.append(names[index - 1])
        if index < len(names) - 1:
            neighbours.append(names[index + 1])
        adjacency[name] = tuple(neighbours)
    return adjacency


def star_topology(
    centre: ProcessId, leaves: Sequence[ProcessId]
) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A star with ``centre`` connected to every leaf."""
    adjacency: dict[ProcessId, tuple[ProcessId, ...]] = {
        centre: tuple(leaves)
    }
    for leaf in leaves:
        adjacency[leaf] = (centre,)
    return adjacency


def ring_topology(names: Sequence[ProcessId]) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A ring over the given names."""
    count = len(names)
    return {
        name: (names[(index - 1) % count], names[(index + 1) % count])
        for index, name in enumerate(names)
    }


def tree_topology(
    names: Sequence[ProcessId], branching: int = 2
) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A complete ``branching``-ary tree over ``names`` in level order.

    Node ``i``'s children are nodes ``branching*i + 1 … branching*i +
    branching`` (the heap layout); ``names[0]`` is the root.  The depth
    scale targets of the exploration benchmarks are built from this.
    """
    if branching < 1:
        raise ValueError("branching must be at least 1")
    adjacency: dict[ProcessId, tuple[ProcessId, ...]] = {}
    count = len(names)
    for index, name in enumerate(names):
        neighbours = []
        if index > 0:
            neighbours.append(names[(index - 1) // branching])
        first_child = branching * index + 1
        for child in range(first_child, min(first_child + branching, count)):
            neighbours.append(names[child])
        adjacency[name] = tuple(neighbours)
    return adjacency


class BroadcastProtocol(Protocol):
    """Flooding of one fact from ``root`` over ``topology``."""

    def __init__(
        self,
        topology: Mapping[ProcessId, Sequence[ProcessId]],
        root: ProcessId,
    ) -> None:
        super().__init__(topology.keys())
        if root not in topology:
            raise ValueError(f"root {root!r} is not in the topology")
        self.topology = {
            process: tuple(neighbours) for process, neighbours in topology.items()
        }
        self.root = root

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def knows_fact(self, process: ProcessId, history: History) -> bool:
        """Has this process learnt the fact (locally or by message)?"""
        for event in history:
            if isinstance(event, InternalEvent) and event.tag == LEARN_TAG:
                return True
            if isinstance(event, ReceiveEvent) and event.message.tag == FACT_TAG:
                return True
        return False

    def _already_sent_to(self, history: History) -> frozenset[ProcessId]:
        return frozenset(
            event.message.receiver
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == FACT_TAG
        )

    def _heard_from(self, history: History) -> frozenset[ProcessId]:
        """Neighbours this process has already received the fact from —
        no need to echo it back to them."""
        return frozenset(
            event.message.sender
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == FACT_TAG
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.root and not self.knows_fact(process, history):
            yield self.next_internal(history, process, LEARN_TAG)
            return
        if not self.knows_fact(process, history):
            return
        skip = self._already_sent_to(history) | self._heard_from(history)
        for neighbour in self.topology[process]:
            if neighbour not in skip:
                message = self.next_message(history, process, neighbour, FACT_TAG)
                yield self.send_of(message)

    def step_shape(self, process: ProcessId, history: History) -> object:
        """Flooding steps depend only on (knows fact, blocked neighbours).

        Every FACT message carries seq 0 (a neighbour is flooded at most
        once) and the learn event carries seq 0 (it only fires before the
        fact is known), so histories with equal shapes yield equal event
        tuples — one history scan instead of the three in ``local_steps``
        plus event construction.
        """
        knows = False
        blocked: list[ProcessId] = []
        for event in history:
            if isinstance(event, ReceiveEvent):
                if event.message.tag == FACT_TAG:
                    knows = True
                    blocked.append(event.message.sender)
            elif isinstance(event, SendEvent):
                if event.message.tag == FACT_TAG:
                    blocked.append(event.message.receiver)
            elif event.tag == LEARN_TAG:
                knows = True
        return (knows, frozenset(blocked))


def fact_known_atom(protocol: BroadcastProtocol, process: ProcessId) -> Atom:
    """``process has learnt the fact`` as a knowledge atom (local to the
    process)."""

    def fn(configuration: Configuration) -> bool:
        return protocol.knows_fact(process, configuration.history(process))

    return Atom(f"{process} knows fact", fn)


def fact_established_atom(protocol: BroadcastProtocol) -> Atom:
    """``the root has performed its learn event`` — local to the root."""
    return fact_known_atom(protocol, protocol.root)
