"""Flooding broadcast: knowledge dissemination along a topology.

A ``root`` process performs an internal ``learn`` event (establishing a
fact local to the root) and then floods a ``fact`` message through an
arbitrary topology; every process forwards the message to every
neighbour it has not already sent to, once it has learnt the fact.

This is the canonical *knowledge gain* workload: process ``v`` knows the
fact exactly when a process chain ``<root … v>`` has carried it there, so
Theorems 1 and 5 have dense non-vacuous instances (experiments E3, E9).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.formula import Atom
from repro.universe.protocol import History, Protocol

FACT_TAG = "fact"
LEARN_TAG = "learn"


def line_topology(names: Sequence[ProcessId]) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A line ``n0 - n1 - … - nk`` as an adjacency map."""
    adjacency: dict[ProcessId, tuple[ProcessId, ...]] = {}
    for index, name in enumerate(names):
        neighbours = []
        if index > 0:
            neighbours.append(names[index - 1])
        if index < len(names) - 1:
            neighbours.append(names[index + 1])
        adjacency[name] = tuple(neighbours)
    return adjacency


def star_topology(
    centre: ProcessId, leaves: Sequence[ProcessId]
) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A star with ``centre`` connected to every leaf."""
    adjacency: dict[ProcessId, tuple[ProcessId, ...]] = {
        centre: tuple(leaves)
    }
    for leaf in leaves:
        adjacency[leaf] = (centre,)
    return adjacency


def ring_topology(names: Sequence[ProcessId]) -> dict[ProcessId, tuple[ProcessId, ...]]:
    """A ring over the given names."""
    count = len(names)
    return {
        name: (names[(index - 1) % count], names[(index + 1) % count])
        for index, name in enumerate(names)
    }


class BroadcastProtocol(Protocol):
    """Flooding of one fact from ``root`` over ``topology``."""

    def __init__(
        self,
        topology: Mapping[ProcessId, Sequence[ProcessId]],
        root: ProcessId,
    ) -> None:
        super().__init__(topology.keys())
        if root not in topology:
            raise ValueError(f"root {root!r} is not in the topology")
        self.topology = {
            process: tuple(neighbours) for process, neighbours in topology.items()
        }
        self.root = root

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def knows_fact(self, process: ProcessId, history: History) -> bool:
        """Has this process learnt the fact (locally or by message)?"""
        for event in history:
            if isinstance(event, InternalEvent) and event.tag == LEARN_TAG:
                return True
            if isinstance(event, ReceiveEvent) and event.message.tag == FACT_TAG:
                return True
        return False

    def _already_sent_to(self, history: History) -> frozenset[ProcessId]:
        return frozenset(
            event.message.receiver
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == FACT_TAG
        )

    def _heard_from(self, history: History) -> frozenset[ProcessId]:
        """Neighbours this process has already received the fact from —
        no need to echo it back to them."""
        return frozenset(
            event.message.sender
            for event in history
            if isinstance(event, ReceiveEvent) and event.message.tag == FACT_TAG
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.root and not self.knows_fact(process, history):
            yield self.next_internal(history, process, LEARN_TAG)
            return
        if not self.knows_fact(process, history):
            return
        skip = self._already_sent_to(history) | self._heard_from(history)
        for neighbour in self.topology[process]:
            if neighbour not in skip:
                message = self.next_message(history, process, neighbour, FACT_TAG)
                yield self.send_of(message)


def fact_known_atom(protocol: BroadcastProtocol, process: ProcessId) -> Atom:
    """``process has learnt the fact`` as a knowledge atom (local to the
    process)."""

    def fn(configuration: Configuration) -> bool:
        return protocol.knows_fact(process, configuration.history(process))

    return Atom(f"{process} knows fact", fn)


def fact_established_atom(protocol: BroadcastProtocol) -> Atom:
    """``the root has performed its learn event`` — local to the root."""
    return fact_known_atom(protocol, protocol.root)
