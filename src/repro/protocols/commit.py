"""Two-phase commit, analysed through knowledge preconditions.

A classic illustration of the paper's programme: *actions require
knowledge*.  A participant may commit only when it knows every
participant voted yes; the coordinator's decision message is precisely
the communication that creates that knowledge (via a process chain
``<participant … coordinator … participant>``), and — by the
common-knowledge corollary — the outcome never becomes common knowledge,
which is the knowledge-theoretic root of the protocol's blocking
behaviour.

Protocol: every participant nondeterministically votes yes or no
(an internal event) and reports its vote to the coordinator; once all
votes are in, the coordinator broadcasts ``commit`` (all yes) or
``abort`` (otherwise); participants apply the decision with an internal
event.  The computation space is finite and completely explorable for a
handful of participants.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, ReceiveEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.formula import Atom, Formula
from repro.universe.protocol import History, Protocol

VOTE_TAG = "vote"
DECISION_TAG = "decision"
VOTE_EVENT_TAG = "cast"
APPLY_TAG = "apply"


class TwoPhaseCommitProtocol(Protocol):
    """One coordinator, ``participants`` voters, nondeterministic votes."""

    def __init__(
        self,
        participants: Sequence[ProcessId] = ("p1", "p2"),
        coordinator: ProcessId = "coord",
    ) -> None:
        if coordinator in participants:
            raise ValueError("the coordinator cannot also be a participant")
        if len(participants) < 1:
            raise ValueError("at least one participant is required")
        super().__init__(tuple(participants) + (coordinator,))
        self.participants = tuple(participants)
        self.coordinator = coordinator

    # ------------------------------------------------------------------
    # Local state helpers
    # ------------------------------------------------------------------
    @staticmethod
    def vote_of(history: History) -> bool | None:
        """The participant's cast vote, or ``None`` if not yet cast."""
        for event in history:
            if isinstance(event, InternalEvent) and event.tag == VOTE_EVENT_TAG:
                return bool(event.payload)
        return None

    @staticmethod
    def _vote_sent(history: History) -> bool:
        return any(
            isinstance(event, SendEvent) and event.message.tag == VOTE_TAG
            for event in history
        )

    @staticmethod
    def decision_received(history: History) -> bool | None:
        """The decision this participant received (True = commit)."""
        for event in history:
            if isinstance(event, ReceiveEvent) and event.message.tag == DECISION_TAG:
                return bool(event.message.payload)
        return None

    @staticmethod
    def applied(history: History) -> bool | None:
        """The decision this participant applied, or ``None``."""
        for event in history:
            if isinstance(event, InternalEvent) and event.tag == APPLY_TAG:
                return bool(event.payload)
        return None

    def votes_received(self, history: History) -> dict[ProcessId, bool]:
        """Coordinator view: votes collected so far."""
        votes: dict[ProcessId, bool] = {}
        for event in history:
            if isinstance(event, ReceiveEvent) and event.message.tag == VOTE_TAG:
                votes[event.message.sender] = bool(event.message.payload)
        return votes

    def _decisions_sent(self, history: History) -> frozenset[ProcessId]:
        return frozenset(
            event.message.receiver
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == DECISION_TAG
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process == self.coordinator:
            yield from self._coordinator_steps(history)
        else:
            yield from self._participant_steps(process, history)

    def _participant_steps(
        self, process: ProcessId, history: History
    ) -> Iterable[Event]:
        vote = self.vote_of(history)
        if vote is None:
            # Nondeterministic choice: both votes are enabled.
            yield InternalEvent(process=process, tag=VOTE_EVENT_TAG, payload=True)
            yield InternalEvent(process=process, tag=VOTE_EVENT_TAG, payload=False)
            return
        if not self._vote_sent(history):
            message = self.next_message(
                history, process, self.coordinator, VOTE_TAG, payload=vote
            )
            yield self.send_of(message)
            return
        decision = self.decision_received(history)
        if decision is not None and self.applied(history) is None:
            yield InternalEvent(process=process, tag=APPLY_TAG, payload=decision)

    def _coordinator_steps(self, history: History) -> Iterable[Event]:
        votes = self.votes_received(history)
        if len(votes) < len(self.participants):
            return
        decision = all(votes.values())
        already = self._decisions_sent(history)
        for participant in self.participants:
            if participant not in already:
                message = self.next_message(
                    history,
                    self.coordinator,
                    participant,
                    DECISION_TAG,
                    payload=decision,
                )
                yield self.send_of(message)
                return  # one decision message at a time

    # ------------------------------------------------------------------
    # Knowledge atoms
    # ------------------------------------------------------------------
    def all_voted_yes(self) -> Atom:
        """Every participant has cast a *yes* vote."""

        def fn(configuration: Configuration) -> bool:
            return all(
                self.vote_of(configuration.history(participant)) is True
                for participant in self.participants
            )

        return Atom("all voted yes", fn)

    def voted_atom(self, participant: ProcessId, value: bool) -> Atom:
        """``participant`` has cast the given vote."""

        def fn(configuration: Configuration) -> bool:
            return self.vote_of(configuration.history(participant)) is value

        return Atom(f"{participant} voted {'yes' if value else 'no'}", fn)

    def committed_atom(self, participant: ProcessId) -> Atom:
        """``participant`` has applied a commit decision."""

        def fn(configuration: Configuration) -> bool:
            return self.applied(configuration.history(participant)) is True

        return Atom(f"{participant} committed", fn)

    def any_committed(self) -> Formula:
        """Some participant has applied a commit."""
        result: Formula | None = None
        for participant in self.participants:
            clause = self.committed_atom(participant)
            result = clause if result is None else result | clause
        assert result is not None
        return result
