"""A toggling local bit with a remote observer (for §5(a), experiment E10).

Process ``owner`` owns a boolean ``bit`` (a predicate local to the owner)
which it flips with internal events, up to ``max_flips`` times; after each
flip it may — but need not — report the new value to ``observer``.

The paper's §5(a) claims:

* the observer cannot track the bit exactly at all times — it must be
  *unsure* of the value while the bit is undergoing change;
* a necessary condition for the owner flipping the bit is that the owner
  knows the observer is unsure of it at the point of change.

Both are checked in :mod:`repro.applications.tracking` over this
protocol's universe.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event, InternalEvent, SendEvent
from repro.core.process import ProcessId
from repro.knowledge.formula import Atom
from repro.universe.protocol import History, Protocol

FLIP_TAG = "flip"
REPORT_TAG = "report"


class ToggleProtocol(Protocol):
    """One owner flipping a bit, one observer receiving optional reports."""

    def __init__(
        self,
        owner: ProcessId = "p",
        observer: ProcessId = "q",
        max_flips: int = 2,
        report: bool = True,
    ) -> None:
        super().__init__((owner, observer))
        self.owner = owner
        self.observer = observer
        self.max_flips = max_flips
        self.report = report

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def bit_value(self, history: History) -> bool:
        """The owner's bit: false initially, flipped by each flip event."""
        flips = sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == FLIP_TAG
        )
        return flips % 2 == 1

    def _flips(self, history: History) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, InternalEvent) and event.tag == FLIP_TAG
        )

    def _reports(self, history: History) -> int:
        return sum(
            1
            for event in history
            if isinstance(event, SendEvent) and event.message.tag == REPORT_TAG
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def local_steps(self, process: ProcessId, history: History) -> Iterable[Event]:
        if process != self.owner:
            return
        flips = self._flips(history)
        if flips < self.max_flips:
            yield self.next_internal(history, process, FLIP_TAG)
        if self.report and self._reports(history) < flips:
            message = self.next_message(
                history,
                self.owner,
                self.observer,
                REPORT_TAG,
                payload=self.bit_value(history),
            )
            yield self.send_of(message)


def bit_atom(protocol: ToggleProtocol) -> Atom:
    """The owner's bit as a knowledge atom (local to the owner)."""

    def fn(configuration: Configuration) -> bool:
        return protocol.bit_value(configuration.history(protocol.owner))

    return Atom(f"bit({protocol.owner})", fn)
