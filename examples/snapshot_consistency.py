#!/usr/bin/env python3
"""Learning a global state: Chandy–Lamport snapshots over a token ring.

The constructive counterpart of the paper's theme: the snapshot algorithm
assembles, from purely local recordings, a *consistent cut* — a global
state some computation isomorphic to the real one actually passes
through.  This example runs many schedules and verifies the recorded cut
is consistent in all of them, then shows one snapshot that caught the
token in flight.

Run:  python examples/snapshot_consistency.py
"""

from repro.protocols.snapshot import (
    SnapshotTokenRingProtocol,
    recorded_snapshot,
    snapshot_is_consistent,
)
from repro.simulation import FifoProtocol, RandomScheduler, simulate
from repro.viz import space_time_diagram


def main() -> None:
    ring = ("p", "q", "r")
    consistent = 0
    interesting = None
    for seed in range(30):
        protocol = SnapshotTokenRingProtocol(ring, max_hops=5)
        trace = simulate(FifoProtocol(protocol), RandomScheduler(seed))
        final = trace.final_configuration
        assert protocol.snapshot_complete(final)
        if snapshot_is_consistent(protocol, final):
            consistent += 1
        snapshot = recorded_snapshot(protocol, final)
        if snapshot.channel_messages() and interesting is None:
            interesting = (seed, protocol, trace, snapshot)
    print(f"30 random schedules: {consistent}/30 recorded cuts consistent\n")

    assert interesting is not None
    seed, protocol, trace, snapshot = interesting
    print(f"Seed {seed} caught the token in a channel:")
    for (sender, receiver), messages in sorted(snapshot.channels.items()):
        inner = ", ".join(str(message) for message in messages) or "(empty)"
        print(f"  channel {sender} -> {receiver}: {inner}")
    print()
    print("Recorded per-process states (application events before recording):")
    for process in ring:
        events = " ".join(str(event) for event in snapshot.states[process])
        print(f"  {process}: {events or '(initial state)'}")
    print()
    print("The run it was taken from:")
    print(space_time_diagram(trace.computation, max_columns=60))


if __name__ == "__main__":
    main()
