#!/usr/bin/env python3
"""Knowledge preconditions for action: two-phase commit, analysed.

The paper's programme says actions require knowledge.  2PC is the
canonical case: a participant may apply *commit* only when it knows every
participant voted yes, and the coordinator's decision message is exactly
the communication that creates that knowledge.  This example explores the
complete computation space of a two-participant 2PC and verifies:

1. the knowledge precondition (commit ⇒ knows unanimity);
2. the nesting (commit ⇒ knows the coordinator knew);
3. the isolation of votes (no participant learns a peer's vote except
   through the coordinator);
4. the famous negative: the outcome never becomes common knowledge —
   the epistemic root of 2PC's blocking window.

Run:  python examples/commit_knowledge.py
"""

from repro import CommonKnowledge, Knows, KnowledgeEvaluator, Universe
from repro.knowledge.formula import Implies, Sure
from repro.knowledge.hierarchy import hierarchy_profile
from repro.protocols.commit import TwoPhaseCommitProtocol


def main() -> None:
    protocol = TwoPhaseCommitProtocol(("p1", "p2"))
    universe = Universe(protocol)
    evaluator = KnowledgeEvaluator(universe)
    print(
        f"2PC with participants {protocol.participants} and coordinator "
        f"{protocol.coordinator!r}: {len(universe)} computations\n"
    )

    unanimous = protocol.all_voted_yes()
    committed = protocol.committed_atom("p1")

    # 1. The knowledge precondition.
    precondition = Implies(committed, Knows("p1", unanimous))
    print(f"commit ⇒ K_p1(all voted yes):            "
          f"{evaluator.is_valid(precondition)}")

    # 2. Nested knowledge through the coordinator.
    nested = Implies(
        committed, Knows("p1", Knows(protocol.coordinator, unanimous))
    )
    print(f"commit ⇒ K_p1 K_coord(all voted yes):    "
          f"{evaluator.is_valid(nested)}")

    # 3. Vote isolation before the decision.
    p2_yes = protocol.voted_atom("p2", True)
    sure = evaluator.extension(Sure("p1", p2_yes))
    leaky = [
        configuration
        for configuration in sure
        if protocol.decision_received(configuration.history("p1")) is None
    ]
    print(f"p1 sure of p2's vote before any decision: {len(leaky)} configs")

    # 4. Common knowledge is never attained.
    ck = CommonKnowledge(set(protocol.participants), unanimous)
    print(f"'all voted yes' is common knowledge at:   "
          f"{len(evaluator.extension(ck))} configs")

    profile = hierarchy_profile(
        evaluator, set(protocol.participants), unanimous, max_depth=5
    )
    print(f"\n|E^k(all voted yes)| hierarchy profile:  {profile}")
    print(
        "The extension shrinks with every 'everybody knows' level and"
        " hits the empty fixed point — each participant can know, and"
        " know that the other knows, but the tower never completes."
        " That is the knowledge-theoretic reason 2PC has a blocking"
        " window: no amount of messaging makes the outcome common"
        " knowledge (the paper's §4.2 corollary)."
    )


if __name__ == "__main__":
    main()
